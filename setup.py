"""Setup shim for environments without the `wheel` package (PEP 660
editable installs need it); `python setup.py develop` and legacy
`pip install -e .` both work through this file."""

from setuptools import setup

setup()
