"""One conformance suite, every LogShipper transport.

The :class:`~repro.storage.replication.LogShipper` contract is what lets
:class:`~repro.storage.replication.StandbyReplica` not care whether its
segments come from a shared directory or across a socket.  This module
pins that contract as a shared test suite — ``ShipperContract`` — run
against **both** built-in transports:

* :class:`~repro.storage.replication.LocalDirShipper` (shared filesystem),
* :class:`~repro.net.shipper.SocketShipper` (TCP, via a live
  :class:`~repro.net.server.SegmentServer`).

A future transport gets its conformance run by adding one subclass with
one ``shipper_for`` override.
"""

import contextlib

import pytest

from repro.net import SegmentServer, SocketShipper
from repro.storage.journal import Archive, decode_group
from repro.storage.replication import LocalDirShipper

PAGE_SIZE = 512


def append_segment(archive, sequence):
    """One commit group whose page image encodes its sequence."""
    archive.append(sequence, {sequence: bytes([sequence % 256]) * PAGE_SIZE})


class ShipperContract:
    """The behavior every LogShipper transport must exhibit.

    Subclasses provide :meth:`shipper_for` — a context manager yielding
    a connected shipper over the given archive.
    """

    def shipper_for(self, archive):
        raise NotImplementedError

    @pytest.fixture
    def archive(self, tmp_path):
        return Archive(str(tmp_path / "conformance.archive"), PAGE_SIZE)

    def test_empty_stream_has_no_head(self, archive):
        with self.shipper_for(archive) as shipper:
            assert shipper.latest_sequence() is None

    def test_latest_sequence_is_monotonic_and_tracks_the_head(self,
                                                              archive):
        with self.shipper_for(archive) as shipper:
            seen = 0
            for sequence in (1, 2, 3, 4):
                append_segment(archive, sequence)
                head = shipper.latest_sequence()
                assert head == sequence
                assert head >= seen    # never goes backward
                seen = head

    def test_fetch_is_idempotent(self, archive):
        append_segment(archive, 1)
        append_segment(archive, 2)
        with self.shipper_for(archive) as shipper:
            first = shipper.fetch(2)
            second = shipper.fetch(2)
            assert first == second    # identical bytes, not just equal len
            sequence, records = decode_group(first, PAGE_SIZE)
            assert sequence == 2      # and they decode to the right group

    def test_fetch_past_head_returns_none(self, archive):
        append_segment(archive, 1)
        with self.shipper_for(archive) as shipper:
            assert shipper.fetch(99) is None
            # Asking for a missing segment must not poison the session.
            assert shipper.fetch(1) is not None

    def test_fetch_on_empty_stream_returns_none(self, archive):
        with self.shipper_for(archive) as shipper:
            assert shipper.fetch(1) is None

    def test_empty_stream_has_no_retention_floor(self, archive):
        with self.shipper_for(archive) as shipper:
            assert shipper.oldest_sequence() is None

    def test_oldest_sequence_tracks_the_retention_floor(self, archive):
        for sequence in (1, 2, 3, 4):
            append_segment(archive, sequence)
        with self.shipper_for(archive) as shipper:
            assert shipper.oldest_sequence() == 1
            archive.prune_upto(2)
            assert shipper.oldest_sequence() == 3

    def test_segment_pruned_at_source_is_distinguishable(self, archive):
        """The pruned-vs-lost discrimination the re-seed path rests on:
        a fetch below the retention floor returns None AND the floor is
        above the requested sequence — so the standby knows the segment
        is *gone by policy*, not lost in transport."""
        for sequence in (1, 2, 3):
            append_segment(archive, sequence)
        archive.prune_upto(2)
        with self.shipper_for(archive) as shipper:
            assert shipper.fetch(1) is None
            assert shipper.fetch(2) is None
            oldest = shipper.oldest_sequence()
            assert oldest == 3
            assert oldest > 2          # pruned: floor above the request
            assert shipper.fetch(3) is not None   # retained still serves
            assert shipper.latest_sequence() == 3

    def test_fully_pruned_stream_reports_no_floor(self, archive):
        append_segment(archive, 1)
        append_segment(archive, 2)
        archive.prune_upto(2)
        with self.shipper_for(archive) as shipper:
            assert shipper.oldest_sequence() is None
            assert shipper.fetch(1) is None

    def test_context_manager_connects_and_close_is_idempotent(self,
                                                              archive):
        append_segment(archive, 1)
        with self.shipper_for(archive) as shipper:
            with shipper as connected:
                assert connected.latest_sequence() == 1
            shipper.close()
            shipper.close()   # double close must be safe


class TestLocalDirShipperContract(ShipperContract):
    @contextlib.contextmanager
    def shipper_for(self, archive):
        yield LocalDirShipper(archive.directory, PAGE_SIZE).connect()


class TestSocketShipperContract(ShipperContract):
    @contextlib.contextmanager
    def shipper_for(self, archive):
        server = SegmentServer(archive.directory, PAGE_SIZE).start()
        shipper = SocketShipper(server.address, page_size=PAGE_SIZE)
        try:
            yield shipper.connect()
        finally:
            shipper.close()
            server.stop()

    def test_close_then_reuse_reconnects_transparently(self, archive):
        """Socket-specific sharpening of the contract: a closed shipper
        is not dead, the next call reconnects — which is what makes any
        fault safe to handle by tearing the connection down."""
        append_segment(archive, 1)
        with self.shipper_for(archive) as shipper:
            assert shipper.latest_sequence() == 1
            shipper.close()
            assert not shipper.connected
            assert shipper.latest_sequence() == 1
            assert shipper.stats.reconnects == 1
