"""Tests for page codecs and ElementEntry (repro.storage.pages)."""

import pytest

from repro.storage.errors import ChecksumError, PageDecodeError
from repro.storage.pages import (
    PAGE_HEADER_SIZE,
    ElementEntry,
    Page,
    RawPage,
    page_codec,
    seal_image,
)
from tests.conftest import entry


class TestRawPageCodec:
    def test_roundtrip(self):
        page = RawPage(b"payload bytes")
        data = page.encode(256)
        decoded = Page.decode(data, 256)
        assert isinstance(decoded, RawPage)
        assert decoded.payload == b"payload bytes"

    def test_empty_payload(self):
        decoded = Page.decode(RawPage(b"").encode(128), 128)
        assert decoded.payload == b""

    def test_decode_with_trailing_padding(self):
        data = RawPage(b"abc").encode(64) + b"\x00" * 32
        assert Page.decode(data, 64).payload == b"abc"

    def test_oversized_payload_rejected(self):
        with pytest.raises(PageDecodeError):
            RawPage(b"x" * 300).encode(256)

    def test_unknown_type_byte_rejected(self):
        with pytest.raises(PageDecodeError):
            Page.decode(bytes([250]) + b"junk", 64)

    def test_empty_image_rejected(self):
        with pytest.raises(PageDecodeError):
            Page.decode(b"", 64)

    def test_codec_registry_lookup(self):
        assert page_codec(RawPage.TYPE_ID) is RawPage


class TestChecksums:
    def test_encode_seals_a_valid_checksum(self):
        image = RawPage(b"abc").encode(64)
        assert len(image) == 64
        assert image == seal_image(image)

    def test_any_flipped_bit_is_detected(self):
        image = RawPage(b"checksummed payload").encode(64)
        for byte_index in (0, 3, PAGE_HEADER_SIZE, 40, 63):
            corrupt = bytearray(image)
            corrupt[byte_index] ^= 0x10
            with pytest.raises(ChecksumError):
                Page.decode(bytes(corrupt), 64)

    def test_reseal_makes_an_edited_image_decodable(self):
        image = bytearray(RawPage(b"abc").encode(64))
        # First payload byte sits after the page header and RawPage's own
        # 4-byte length field.
        image[PAGE_HEADER_SIZE + 4] = ord("z")
        with pytest.raises(ChecksumError):
            Page.decode(bytes(image), 64)
        assert Page.decode(seal_image(image), 64).payload == b"zbc"

    def test_verification_can_be_skipped(self):
        image = bytearray(RawPage(b"abc").encode(64))
        image[-1] ^= 0xFF
        decoded = Page.decode(bytes(image), 64, verify=False)
        assert decoded.payload.startswith(b"abc")

    def test_truncated_image_rejected(self):
        image = RawPage(b"abc").encode(64)
        with pytest.raises(PageDecodeError):
            Page.decode(image[:PAGE_HEADER_SIZE - 1], 64)


class TestElementEntryCodec:
    def test_pack_unpack_roundtrip(self):
        original = ElementEntry(3, 17, 90, 4, True, 1234567890123)
        packed = original.pack()
        assert len(packed) == ElementEntry.SIZE
        restored = ElementEntry.unpack_from(packed, 0)
        assert restored == original
        assert restored.in_stab_list is True
        assert restored.ptr == 1234567890123

    def test_unpack_at_offset(self):
        a = entry(1, 10)
        b = entry(2, 5)
        blob = a.pack() + b.pack()
        assert ElementEntry.unpack_from(blob, ElementEntry.SIZE) == b

    def test_negative_doc_id_roundtrips(self):
        original = ElementEntry(-1, 5, 9, 0)
        assert ElementEntry.unpack_from(original.pack(), 0) == original


class TestElementEntryPredicates:
    def test_contains_strict_nesting(self):
        outer, inner = entry(1, 100), entry(5, 50)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_requires_same_document(self):
        assert not entry(1, 100, doc=1).contains(entry(5, 50, doc=2))

    def test_element_does_not_contain_itself(self):
        e = entry(3, 9)
        assert not e.contains(e)

    def test_disjoint_regions_do_not_contain(self):
        assert not entry(1, 4).contains(entry(5, 9))

    def test_is_parent_of_checks_level(self):
        parent = entry(1, 100, level=2)
        child = entry(5, 50, level=3)
        grandchild = entry(10, 20, level=4)
        assert parent.is_parent_of(child)
        assert not parent.is_parent_of(grandchild)

    def test_stabbed_by_boundaries_inclusive(self):
        e = entry(10, 20)
        assert e.stabbed_by(10)
        assert e.stabbed_by(20)
        assert e.stabbed_by(15)
        assert not e.stabbed_by(9)
        assert not e.stabbed_by(21)

    def test_with_flag_copies(self):
        e = entry(1, 2, flag=False, ptr=42)
        flagged = e.with_flag(True)
        assert flagged.in_stab_list is True
        assert flagged.ptr == 42
        assert e.in_stab_list is False

    def test_flag_and_ptr_excluded_from_equality(self):
        assert entry(1, 9, flag=False, ptr=0) == entry(1, 9, flag=True, ptr=7)
        assert hash(entry(1, 9, flag=False)) == hash(entry(1, 9, flag=True))

    def test_region_and_sort_key(self):
        e = entry(4, 8, doc=2)
        assert e.region == (4, 8)
        assert e.sort_key() == (2, 4)
