"""Behavioural tests for XR-tree operations (Algorithms 1-5) against
brute-force oracles on generated documents."""

import random

import pytest

from repro.indexes.xrtree import XRTree, check_xrtree
from repro.joins.base import JoinStats
from tests.conftest import entry


@pytest.fixture(scope="module")
def emp_tree_and_entries():
    from repro.workloads.datasets import department_dataset
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import InMemoryDisk

    data = department_dataset(2500, seed=13)
    entries = sorted(data.ancestors + data.descendants,
                     key=lambda e: e.start)
    pool = BufferPool(InMemoryDisk(512), capacity=64)
    tree = XRTree(pool)
    tree.bulk_load(entries)
    return tree, entries


def oracle_ancestors(entries, point):
    return [e for e in entries if e.start < point < e.end]


def oracle_descendants(entries, start, end):
    return [e for e in entries if start < e.start < end]


class TestFindAncestors:
    def test_matches_oracle_at_element_starts(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        rng = random.Random(1)
        for probe in rng.sample(entries, 150):
            got = tree.find_ancestors(probe.start)
            expected = oracle_ancestors(entries, probe.start)
            assert [a.start for a in got] == [a.start for a in expected]

    def test_matches_oracle_at_arbitrary_points(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        rng = random.Random(2)
        top = max(e.end for e in entries)
        for _ in range(150):
            point = rng.randint(1, top + 5)
            got = [a.start for a in tree.find_ancestors(point)]
            expected = [a.start for a in oracle_ancestors(entries, point)]
            assert got == expected

    def test_results_sorted_outermost_first(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        for probe in entries[::37]:
            got = tree.find_ancestors(probe.start)
            starts = [a.start for a in got]
            assert starts == sorted(starts)
            for outer, inner in zip(got, got[1:]):
                assert outer.contains(inner)

    def test_after_start_filters(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        for probe in entries[::53]:
            full = tree.find_ancestors(probe.start)
            if len(full) < 2:
                continue
            cutoff = full[0].start
            tail = tree.find_ancestors(probe.start, after_start=cutoff)
            assert [a.start for a in tail] == \
                [a.start for a in full if a.start > cutoff]

    def test_required_level_selects_parent(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        for probe in entries[::41]:
            full = tree.find_ancestors(probe.start)
            parents = tree.find_ancestors(probe.start,
                                          required_level=probe.level - 1)
            assert [a.start for a in parents] == \
                [a.start for a in full if a.level == probe.level - 1]
            assert len(parents) <= 1  # an element has at most one parent

    def test_counter_counts_productive_touches(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        deep = max(entries, key=lambda e: len(oracle_ancestors(
            entries, e.start)))
        stats = JoinStats()
        got = tree.find_ancestors(deep.start, counter=stats)
        assert stats.elements_scanned >= len(got)

    def test_empty_tree(self, pool):
        assert XRTree(pool).find_ancestors(5) == []

    def test_point_before_and_after_data(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        top = max(e.end for e in entries)
        assert tree.find_ancestors(0) == []
        assert tree.find_ancestors(top + 100) == []


class TestFindDescendants:
    def test_matches_oracle(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        rng = random.Random(3)
        for probe in rng.sample(entries, 100):
            got = tree.find_descendants(probe.start, probe.end)
            expected = oracle_descendants(entries, probe.start, probe.end)
            assert [d.start for d in got] == [d.start for d in expected]

    def test_required_level_selects_children(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        for probe in entries[::47]:
            got = tree.find_descendants(probe.start, probe.end,
                                        required_level=probe.level + 1)
            expected = [d for d in oracle_descendants(
                entries, probe.start, probe.end)
                if d.level == probe.level + 1]
            assert [d.start for d in got] == [d.start for d in expected]

    def test_counter_counts_scanned(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        wide = max(entries, key=lambda e: e.end - e.start)
        stats = JoinStats()
        got = tree.find_descendants(wide.start, wide.end, counter=stats)
        # The range scan examines each output plus the terminating entry.
        assert len(got) <= stats.elements_scanned <= len(entries) + 1

    def test_empty_range(self, emp_tree_and_entries):
        tree, _ = emp_tree_and_entries
        assert tree.find_descendants(0, 1) == []


class TestCursors:
    def test_seek_and_seek_after(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        middle = entries[len(entries) // 2]
        assert tree.seek(middle.start).current.start == middle.start
        after = tree.seek_after(middle.start).current.start
        assert after == entries[len(entries) // 2 + 1].start

    def test_first_and_items(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        assert tree.first().current.start == entries[0].start
        assert [e.start for e in tree.items()] == \
            [e.start for e in entries]

    def test_search(self, emp_tree_and_entries):
        tree, entries = emp_tree_and_entries
        probe = entries[7]
        assert tree.search(probe.start).end == probe.end
        assert tree.search(probe.start + 100000) is None


class TestDynamicUpdates:
    def test_insert_then_query(self, pool):
        tree = XRTree(pool, leaf_capacity=4, internal_capacity=3)
        regions = [(1, 100), (2, 40), (3, 10), (12, 30), (13, 20),
                   (45, 90), (50, 80), (55, 70), (60, 65), (95, 99)]
        for s, e in regions:
            tree.insert(entry(s, e))
        check_xrtree(tree)
        assert [a.start for a in tree.find_ancestors(60)] == [1, 45, 50, 55]
        assert [d.start for d in tree.find_descendants(45, 90)] == \
            [50, 55, 60]

    def test_delete_unflags_or_removes_stab(self, pool):
        tree = XRTree(pool, leaf_capacity=4, internal_capacity=3)
        regions = [(i * 10 + 1, i * 10 + 5) for i in range(20)]
        regions.append((2, 195))  # one giant region stabbed by many keys
        for s, e in sorted(regions):
            tree.insert(entry(s, e))
        check_xrtree(tree)
        assert tree.delete(2) is not None   # remove the giant region
        check_xrtree(tree)
        assert tree.find_ancestors(100) == []

    def test_delete_missing_returns_none(self, pool):
        tree = XRTree(pool)
        tree.insert(entry(1, 5))
        assert tree.delete(99) is None
        assert tree.size == 1

    def test_delete_from_empty(self, pool):
        assert XRTree(pool).delete(1) is None

    def test_insert_delete_reinsert(self, pool):
        tree = XRTree(pool, leaf_capacity=4, internal_capacity=3)
        for s, e in [(1, 50), (2, 20), (3, 10), (25, 45), (30, 40)]:
            tree.insert(entry(s, e))
        tree.delete(2)
        check_xrtree(tree)
        tree.insert(entry(2, 20))
        check_xrtree(tree)
        assert [a.start for a in tree.find_ancestors(3)] == [1, 2]

    def test_mass_delete_to_empty_releases_all_pages(self, pool, disk):
        tree = XRTree(pool, leaf_capacity=4, internal_capacity=3)
        regions = [(i, 2000 - i) for i in range(1, 300)]  # fully nested
        for s, e in regions:
            tree.insert(entry(s, e))
        check_xrtree(tree)
        for s, _ in regions:
            assert tree.delete(s) is not None
        check_xrtree(tree)
        pool.flush_all()
        assert disk.allocated_page_count == 0

    def test_fully_nested_chain_queries(self, pool):
        # Worst case for stab lists: every element nests in every earlier
        # one, so almost everything is stabbed.
        tree = XRTree(pool, leaf_capacity=4, internal_capacity=3)
        n = 150
        for i in range(1, n + 1):
            tree.insert(entry(i, 4000 - i))
        check_xrtree(tree)
        got = [a.start for a in tree.find_ancestors(n + 50)]
        assert got == list(range(1, n + 1))
        got = [d.start for d in tree.find_descendants(1, 4000 - 1)]
        assert got == list(range(2, n + 1))
