"""Property-based tests for the XR-tree.

Strategies generate random *valid* XML-style region sets (strictly nested or
disjoint) from random tree shapes; a stateful machine interleaves inserts and
deletes, validating Definition 4's invariants and query answers after every
step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.indexes.xrtree import XRTree, check_xrtree
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.xmldata.model import Document, Element, annotate_regions
from tests.conftest import entry


def tree_shape_to_entries(shape, max_children=3):
    """Turn a child-count sequence into a region-encoded element list."""
    root = Element("r")
    frontier = [root]
    for value in shape:
        node = frontier.pop(0)
        for _ in range(value % (max_children + 1)):
            frontier.append(node.add_child(Element("c")))
        if not frontier:
            break
    annotate_regions(root)
    document = Document(root)
    return [entry(n.start, n.end, n.level) for n in document]


shapes = st.lists(st.integers(min_value=0, max_value=3),
                  min_size=1, max_size=120)


def fresh_tree(leaf=4, internal=3):
    pool = BufferPool(InMemoryDisk(512), capacity=48)
    return XRTree(pool, leaf_capacity=leaf, internal_capacity=internal)


class TestBulkLoadProperties:
    @given(shapes)
    @settings(max_examples=40, deadline=None)
    def test_bulk_load_invariants(self, shape):
        entries = tree_shape_to_entries(shape)
        tree = fresh_tree()
        tree.bulk_load(entries)
        check_xrtree(tree)
        assert [e.start for e in tree.items()] == [e.start for e in entries]

    @given(shapes, st.integers(min_value=0, max_value=600))
    @settings(max_examples=60, deadline=None)
    def test_find_ancestors_matches_oracle(self, shape, point):
        entries = tree_shape_to_entries(shape)
        tree = fresh_tree()
        tree.bulk_load(entries)
        got = [a.start for a in tree.find_ancestors(point)]
        expected = [e.start for e in entries if e.start < point < e.end]
        assert got == expected

    @given(shapes, st.integers(min_value=0, max_value=300),
           st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_find_descendants_matches_oracle(self, shape, a, b):
        low, high = min(a, b), max(a, b)
        entries = tree_shape_to_entries(shape)
        tree = fresh_tree()
        tree.bulk_load(entries)
        got = [d.start for d in tree.find_descendants(low, high)]
        expected = [e.start for e in entries if low < e.start < high]
        assert got == expected

    @given(shapes)
    @settings(max_examples=30, deadline=None)
    def test_dynamic_build_equals_bulk_build(self, shape):
        entries = tree_shape_to_entries(shape)
        bulk = fresh_tree()
        bulk.bulk_load(entries)
        dynamic = fresh_tree()
        for e in entries:
            dynamic.insert(e)
        check_xrtree(dynamic)
        assert list(bulk.items()) == list(dynamic.items())
        # Flags may differ (different key sets) but every query agrees.
        for probe in entries[:: max(1, len(entries) // 10)]:
            assert [a.start for a in bulk.find_ancestors(probe.start)] == \
                [a.start for a in dynamic.find_ancestors(probe.start)]


class TestInsertionOrderIndependence:
    @given(shapes, st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_shuffled_insertions_preserve_invariants(self, shape, rng):
        entries = tree_shape_to_entries(shape)
        rng.shuffle(entries)
        tree = fresh_tree()
        for e in entries:
            tree.insert(e)
        check_xrtree(tree)
        assert tree.size == len(entries)


class XRTreeMachine(RuleBasedStateMachine):
    """Random insert/delete interleavings with full invariant checking.

    The element universe is a fixed nested-region family plus disjoint
    singletons, so any subset is a valid strictly-nested set.
    """

    UNIVERSE = (
        # A deep nested chain.
        [(i, 1000 - i) for i in range(1, 60)]
        # Disjoint mid-size regions inside the chain.
        + [(100 + 10 * i, 100 + 10 * i + 7) for i in range(30)]
        # Tiny regions nested inside the mid-size ones.
        + [(100 + 10 * i + 2, 100 + 10 * i + 4) for i in range(30)]
        # Far-away disjoint singletons.
        + [(2000 + 3 * i, 2000 + 3 * i + 1) for i in range(30)]
    )

    def __init__(self):
        super().__init__()
        self.pool = BufferPool(InMemoryDisk(512), capacity=48)
        self.tree = XRTree(self.pool, leaf_capacity=4, internal_capacity=3)
        self.live = {}

    @rule(index=st.integers(min_value=0, max_value=len(UNIVERSE) - 1))
    def insert(self, index):
        start, end = self.UNIVERSE[index]
        if start in self.live:
            return
        self.tree.insert(entry(start, end))
        self.live[start] = end

    @rule(index=st.integers(min_value=0, max_value=len(UNIVERSE) - 1))
    def delete(self, index):
        start, _ = self.UNIVERSE[index]
        removed = self.tree.delete(start)
        if start in self.live:
            assert removed is not None and removed.start == start
            del self.live[start]
        else:
            assert removed is None

    @rule(point=st.integers(min_value=0, max_value=2200))
    def query_ancestors(self, point):
        got = [a.start for a in self.tree.find_ancestors(point)]
        expected = sorted(s for s, e in self.live.items() if s < point < e)
        assert got == expected

    @rule(low=st.integers(min_value=0, max_value=2200),
          span=st.integers(min_value=1, max_value=500))
    def query_descendants(self, low, span):
        got = [d.start for d in self.tree.find_descendants(low, low + span)]
        expected = sorted(s for s in self.live if low < s < low + span)
        assert got == expected

    @invariant()
    def tree_is_valid(self):
        check_xrtree(self.tree)
        assert self.tree.size == len(self.live)
        assert self.pool.pinned_count == 0


TestXRTreeStateMachine = XRTreeMachine.TestCase
TestXRTreeStateMachine.settings = settings(
    max_examples=20, stateful_step_count=50, deadline=None
)
