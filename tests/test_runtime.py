"""Query-runtime guardrails: deadlines, cancellation, quotas, admission.

The contract under test:

* guardrail trips raise their typed errors at *pin-free* checkpoints, so a
  cancelled or timed-out query never leaks a pinned buffer frame and the
  pool stays fully reusable;
* an unbounded descendant-heavy join over a 30k-element corpus is stopped
  within 2x its configured deadline;
* a query that exhausts its page quota completes on the degraded streaming
  plan with results identical to the oracle join;
* the admission controller bounds concurrency, queues up to its limit and
  sheds load beyond it.

The cancellation sweep is seeded: set ``CHAOS_SEED`` to reproduce.
"""

import os
import random
import threading
import time

import pytest

from repro.core.api import StorageContext, build_xr_tree, oracle_join, \
    structural_join
from repro.core.database import XmlDatabase
from repro.query.admission import AdmissionController, QueryRejected
from repro.query.runtime import (
    CancellationToken,
    DeadlineExceeded,
    PageQuotaExceeded,
    QueryCancelled,
    QueryContext,
    RowCapExceeded,
)
from repro.workloads import department_dataset

SEED = int(os.environ.get("CHAOS_SEED", "20030307"))


class TripAfter(CancellationToken):
    """A token that reports cancelled after ``fuse`` observations."""

    __slots__ = ("_fuse",)

    def __init__(self, fuse):
        super().__init__()
        self._fuse = fuse

    @property
    def cancelled(self):
        if self._fuse <= 0:
            return True
        self._fuse -= 1
        return False


# -- QueryContext unit behaviour -----------------------------------------------


def test_context_validation():
    with pytest.raises(ValueError):
        QueryContext(deadline=0)
    with pytest.raises(ValueError):
        QueryContext(page_budget=0)
    with pytest.raises(ValueError):
        QueryContext(row_cap=-1)
    with pytest.raises(ValueError):
        QueryContext(check_every=0)


def test_token_cancels_at_next_tick():
    token = CancellationToken()
    ctx = QueryContext(token=token).start()
    ctx.tick()
    token.cancel("client went away")
    with pytest.raises(QueryCancelled, match="client went away"):
        ctx.tick()


def test_deadline_checked_every_n_ticks():
    ctx = QueryContext(deadline=0.005, check_every=4).start()
    time.sleep(0.01)
    ctx.tick()  # ticks 1-3 skip the clock
    ctx.tick()
    ctx.tick()
    with pytest.raises(DeadlineExceeded):
        ctx.tick()


def test_check_forces_the_clock():
    ctx = QueryContext(deadline=0.005, check_every=1000).start()
    time.sleep(0.01)
    with pytest.raises(DeadlineExceeded):
        ctx.check()


def test_row_cap_counts_emitted_pairs():
    ctx = QueryContext(row_cap=2).start()
    ctx.note_pair()
    ctx.note_pair()
    with pytest.raises(RowCapExceeded):
        ctx.note_pair()


def test_page_budget_counts_logical_requests():
    context = StorageContext()
    tree = build_xr_tree(department_dataset(300, seed=SEED).ancestors,
                         context.pool)
    ctx = QueryContext(page_budget=3, check_every=1).start(context.pool)
    with pytest.raises(PageQuotaExceeded):
        for _ in range(100):
            list(tree.items())
            ctx.tick()
    assert ctx.pages_used > 3


def test_idle_context_never_trips():
    ctx = QueryContext().start()
    for _ in range(10000):
        ctx.tick()
    assert ctx.ticks == 10000
    assert "unlimited" in ctx.describe()


# -- deadline and cancellation through real joins ------------------------------


def test_deadline_stops_30k_join_within_twice_the_budget():
    """Acceptance: an unbounded descendant-heavy join over a 30k-element
    corpus is cancelled within 2x the configured deadline, leaking no
    pinned pages, and the pool remains usable."""
    data = department_dataset(target_elements=30000, seed=SEED)
    context = StorageContext()
    atree = build_xr_tree(data.ancestors, context.pool)
    dtree = build_xr_tree(data.descendants, context.pool)
    deadline = 0.05
    runtime = QueryContext(deadline=deadline, check_every=16)
    started = time.perf_counter()
    with pytest.raises(DeadlineExceeded):
        structural_join(atree, dtree, context=context, runtime=runtime)
    elapsed = time.perf_counter() - started
    assert elapsed <= 2 * deadline, (
        "join outlived its deadline: %.3fs > 2 * %.3fs" % (elapsed, deadline)
    )
    assert context.pool.pinned_count == 0, "cancelled join leaked pins"
    # The pool is still fully usable for the next query.
    small = department_dataset(400, seed=SEED + 1)
    outcome = structural_join(small.ancestors, small.descendants,
                              context=context)
    assert outcome.pairs == oracle_join(small.ancestors, small.descendants)


def test_cancellation_sweep_releases_all_pins():
    """Property sweep: whatever checkpoint a cancellation lands on, the
    join raises QueryCancelled with zero pinned frames left behind, and an
    immediate un-cancelled rerun returns the oracle answer."""
    rng = random.Random(SEED)
    data = department_dataset(800, seed=SEED)
    expected = oracle_join(data.ancestors, data.descendants)
    for algorithm in ("xr-stack", "stack-tree", "b+"):
        context = StorageContext()
        for trial in range(4):
            fuse = rng.randrange(0, 200)
            runtime = QueryContext(token=TripAfter(fuse), check_every=1)
            try:
                outcome = structural_join(data.ancestors, data.descendants,
                                          algorithm=algorithm,
                                          context=context, runtime=runtime)
            except QueryCancelled:
                pass
            else:
                assert outcome.pairs == expected
            assert context.pool.pinned_count == 0, (
                "%s leaked pins at fuse %d (trial %d)"
                % (algorithm, fuse, trial)
            )
        rerun = structural_join(data.ancestors, data.descendants,
                                algorithm=algorithm, context=context)
        assert rerun.pairs == expected


def test_row_cap_trips_through_join_sink():
    data = department_dataset(800, seed=SEED)
    full = structural_join(data.ancestors, data.descendants)
    assert full.pair_count > 5
    with pytest.raises(RowCapExceeded):
        structural_join(data.ancestors, data.descendants,
                        runtime=QueryContext(row_cap=5))


# -- degradation ladder in the query engine ------------------------------------


def _nested_db():
    xml = ("<lib>"
           + "".join("<shelf>" + "<book><title/></book>" * 6 + "</shelf>"
                     for _ in range(8))
           + "</lib>")
    db = XmlDatabase.create()
    db.add_document(xml)
    return db


def test_page_quota_degrades_to_streaming_plan_with_oracle_results():
    """Acceptance: exhausting the page quota mid-join completes the query
    on the stack-tree plan, flags the result, and the answer matches the
    oracle join exactly."""
    db = _nested_db()
    shelves = db.entries_for_tag("shelf")
    titles = db.entries_for_tag("title")
    expected = sorted({d.start for _a, d in oracle_join(shelves, titles)})
    baseline = db.query("//shelf//title")
    assert baseline.starts() == expected and not baseline.degraded
    # Steady-state cost of the xr-stack plan (caches warm after two runs).
    probe = QueryContext(page_budget=10 ** 9, check_every=1)
    db.query("//shelf//title", runtime=probe)
    steady = probe.pages_used
    assert steady > 1
    runtime = QueryContext(page_budget=steady - 1, check_every=1)
    result = db.query("//shelf//title", runtime=runtime)
    assert result.degraded
    assert result.degrade_reason == "page-quota"
    assert runtime.degraded and runtime.degrade_reason == "page-quota"
    assert result.starts() == expected
    # A later un-budgeted query is back on the primary plan.
    again = db.query("//shelf//title")
    assert not again.degraded and again.starts() == expected


def test_degradation_can_be_disabled():
    db = _nested_db()
    probe = QueryContext(page_budget=10 ** 9, check_every=1)
    db.query("//shelf//title", runtime=probe)  # warm the caches
    db.query("//shelf//title", runtime=probe)  # steady-state cost
    runtime = QueryContext(page_budget=probe.pages_used - 1, check_every=1,
                           allow_degraded=False)
    with pytest.raises(PageQuotaExceeded):
        db.query("//shelf//title", runtime=runtime)


# -- admission control ---------------------------------------------------------


def test_admission_rejects_when_saturated():
    controller = AdmissionController(max_active=1, max_waiting=0)
    slot = controller.acquire()
    with pytest.raises(QueryRejected):
        controller.acquire()
    slot.release()
    with controller.slot():
        pass
    assert controller.stats.admitted == 2
    assert controller.stats.rejected == 1
    assert controller.stats.completed == 2


def test_admission_wait_timeout_rejects():
    controller = AdmissionController(max_active=1, max_waiting=2)
    slot = controller.acquire()
    with pytest.raises(QueryRejected):
        controller.acquire(timeout=0.02)
    assert controller.stats.queued == 1
    assert controller.waiting == 0
    slot.release()


def test_admission_queue_drains_under_threads():
    controller = AdmissionController(max_active=2, max_waiting=8)
    running = []
    lock = threading.Lock()

    def work():
        with controller.slot():
            with lock:
                running.append(1)
                assert len(running) <= 2
            time.sleep(0.005)
            with lock:
                running.pop()

    threads = [threading.Thread(target=work) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert controller.stats.admitted == 6
    assert controller.stats.completed == 6
    assert controller.stats.peak_active <= 2
    assert controller.active == 0


def test_admission_stamps_per_query_runtime():
    controller = AdmissionController(page_quota=500, deadline=1.5, row_cap=9)
    with controller.slot() as runtime:
        assert runtime.page_budget == 500
        assert runtime.deadline == 1.5
        assert runtime.row_cap == 9
    assert AdmissionController().runtime_for() is None


def test_database_routes_queries_through_admission():
    db = _nested_db()
    controller = db.attach_admission(
        AdmissionController(max_active=1, max_waiting=0, page_quota=10 ** 9)
    )
    result = db.query("//shelf//title")
    assert result.runtime is not None  # controller-stamped context
    held = controller.acquire()
    with pytest.raises(QueryRejected):
        db.query("//shelf//title")
    held.release()
    assert controller.stats.completed == 2  # query slot + manual slot
    assert db.query("//book//title").starts() == result.starts()


def test_max_pinned_high_water_mark_surfaces():
    db = _nested_db()
    db.query("//shelf//title")
    stats = db.index_stats
    assert stats.max_pinned >= 1
    snapshot = stats.snapshot()
    assert snapshot.max_pinned == stats.max_pinned
