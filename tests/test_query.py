"""Tests for the path-expression engine (repro.query)."""

import pytest

from repro.query import PathQueryEngine, parse_path
from repro.query.engine import QueryError
from repro.query.path import Axis, PathSyntaxError
from repro.xmldata.parser import parse_document


class TestParsePath:
    def test_descendant_steps(self):
        path = parse_path("//a//b")
        assert [(s.axis, s.tag) for s in path.steps] == [
            (Axis.DESCENDANT, "a"), (Axis.DESCENDANT, "b"),
        ]

    def test_child_steps(self):
        path = parse_path("/a/b")
        assert all(s.axis is Axis.CHILD for s in path.steps)

    def test_mixed(self):
        path = parse_path("//a/b//c")
        assert [s.axis for s in path.steps] == [
            Axis.DESCENDANT, Axis.CHILD, Axis.DESCENDANT,
        ]

    def test_leading_bare_tag_means_descendant(self):
        # The paper writes "paragraph//section".
        path = parse_path("paragraph//section")
        assert str(path) == "//paragraph//section"

    def test_wildcard(self):
        assert parse_path("//*").steps[0].tag == "*"

    def test_str_roundtrip(self):
        for text in ("//a//b", "/a/b", "//a/b//c"):
            assert str(parse_path(text)) == text

    @pytest.mark.parametrize("bad", ["", "//", "a//", "///a", "a b", "//a b"])
    def test_malformed_paths_rejected(self, bad):
        with pytest.raises(PathSyntaxError):
            parse_path(bad)


@pytest.fixture(scope="module")
def engine():
    source = """
    <lib>
      <shelf>
        <book><title>t1</title><chapter><title>c1</title></chapter></book>
        <book><chapter><section><title>s1</title></section></chapter></book>
      </shelf>
      <shelf>
        <box><book><title>t3</title></book></box>
      </shelf>
      <title>lobby sign</title>
    </lib>
    """
    return PathQueryEngine(parse_document(source))


class TestEvaluate:
    def test_single_step(self, engine):
        assert len(engine.evaluate("//book")) == 3

    def test_descendant_chain(self, engine):
        # titles under books: t1, c1, s1, t3 but not the lobby sign.
        assert len(engine.evaluate("//book//title")) == 4

    def test_child_step(self, engine):
        # titles that are direct children of books: t1, t3.
        assert len(engine.evaluate("//book/title")) == 2

    def test_multi_step_mixed(self, engine):
        assert len(engine.evaluate("//book/chapter//title")) == 2  # c1, s1
        assert len(engine.evaluate("//shelf//section/title")) == 1

    def test_absolute_root_step(self, engine):
        assert len(engine.evaluate("/lib")) == 1
        assert len(engine.evaluate("/book")) == 0  # book is not the root

    def test_no_matches(self, engine):
        assert len(engine.evaluate("//missing//title")) == 0
        assert engine.evaluate("//missing//title").matches == []

    def test_wildcard_step(self, engine):
        # every element below a box
        assert len(engine.evaluate("//box//*")) == 2  # book, title

    def test_matches_in_document_order(self, engine):
        result = engine.evaluate("//book//title")
        assert result.starts() == sorted(result.starts())

    def test_distinct_matches(self, engine):
        # s1's title has two book... no — exactly one book ancestor chain,
        # but c1 is under both a chapter and a book; matches must be
        # reported once each.
        result = engine.evaluate("//shelf//title")
        assert len(result.starts()) == len(set(result.starts()))

    def test_result_metadata(self, engine):
        result = engine.evaluate("//book//title")
        assert result.joins_run == 1
        assert result.path == "//book//title"
        assert result.stats.elements_scanned > 0

    def test_parsed_expression_accepted(self, engine):
        expression = parse_path("//book/title")
        assert len(engine.evaluate(expression)) == 2


class TestStrategies:
    def test_strategies_agree(self):
        from repro.workloads import department_dataset

        document = department_dataset(1500, seed=21).document
        fast = PathQueryEngine(document)
        slow = PathQueryEngine(document, strategy="stack-tree")
        for query in ("//department//employee//name",
                      "//employee/employee",
                      "//department/employee/name",
                      "//employee//email"):
            assert fast.evaluate(query).starts() == \
                slow.evaluate(query).starts()

    def test_unknown_strategy_rejected(self, engine):
        with pytest.raises(QueryError):
            PathQueryEngine(engine.document, strategy="psychic")

    def test_index_cache_reused(self, engine):
        first = engine.index_for("book")
        second = engine.index_for("book")
        assert first is second
