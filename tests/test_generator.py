"""Tests for the synthetic data generator (repro.xmldata.generator)."""

import pytest

from repro.xmldata.dtd import CONFERENCE_DTD, DEPARTMENT_DTD, parse_dtd
from repro.xmldata.generator import GeneratorConfig, XmlGenerator


class TestDeterminism:
    def test_same_seed_same_document(self):
        a = XmlGenerator(DEPARTMENT_DTD, seed=3).generate(500)
        b = XmlGenerator(DEPARTMENT_DTD, seed=3).generate(500)
        assert [(n.tag, n.start, n.end) for n in a] == \
            [(n.tag, n.start, n.end) for n in b]

    def test_different_seed_different_document(self):
        a = XmlGenerator(DEPARTMENT_DTD, seed=3).generate(500)
        b = XmlGenerator(DEPARTMENT_DTD, seed=4).generate(500)
        assert [(n.tag, n.start) for n in a] != [(n.tag, n.start) for n in b]


class TestValidity:
    @pytest.mark.parametrize("dtd", [DEPARTMENT_DTD, CONFERENCE_DTD])
    def test_generated_documents_validate(self, dtd):
        document = XmlGenerator(dtd, seed=1).generate(800)
        assert document.validate()

    def test_root_tag_matches_dtd(self):
        document = XmlGenerator(CONFERENCE_DTD, seed=1).generate(100)
        assert document.root.tag == "conferences"

    def test_only_declared_tags_appear(self):
        document = XmlGenerator(DEPARTMENT_DTD, seed=2).generate(500)
        assert document.tags() <= set(DEPARTMENT_DTD.tags()) | {"departments"}

    def test_doc_id_assignment(self):
        document = XmlGenerator(DEPARTMENT_DTD, seed=2).generate(100, doc_id=9)
        assert document.doc_id == 9

    def test_corpus_consecutive_ids(self):
        docs = XmlGenerator(DEPARTMENT_DTD, seed=2).generate_corpus(
            3, 100, first_doc_id=5
        )
        assert [d.doc_id for d in docs] == [5, 6, 7]


class TestSizeControl:
    def test_reaches_target(self):
        document = XmlGenerator(DEPARTMENT_DTD, seed=1).generate(2000)
        assert document.element_count() >= 2000

    def test_does_not_wildly_overshoot(self):
        document = XmlGenerator(DEPARTMENT_DTD, seed=1).generate(2000)
        assert document.element_count() < 2000 * 3

    def test_small_target(self):
        document = XmlGenerator(CONFERENCE_DTD, seed=1).generate(1)
        assert document.element_count() >= 1


class TestNestingControl:
    def test_max_depth_caps_tree_height(self):
        config = GeneratorConfig(max_depth=5, recursion_decay=0.99)
        document = XmlGenerator(DEPARTMENT_DTD, config, seed=1).generate(1000)
        assert document.max_nesting() <= 5

    def test_recursive_dtd_nests_deeper_than_flat(self):
        dept = XmlGenerator(
            DEPARTMENT_DTD,
            GeneratorConfig(mean_repeat=2.0, recursion_decay=0.8),
            seed=1,
        ).generate(2000)
        conf = XmlGenerator(CONFERENCE_DTD, seed=1).generate(2000)
        assert dept.max_nesting("employee") >= 3
        assert conf.max_nesting("paper") == 1

    def test_decay_reduces_nesting(self):
        deep = XmlGenerator(
            DEPARTMENT_DTD,
            GeneratorConfig(mean_repeat=2.0, recursion_decay=0.9,
                            max_depth=40),
            seed=6,
        ).generate(3000)
        shallow = XmlGenerator(
            DEPARTMENT_DTD,
            GeneratorConfig(mean_repeat=2.0, recursion_decay=0.3,
                            max_depth=40),
            seed=6,
        ).generate(3000)
        assert deep.max_nesting("employee") > shallow.max_nesting("employee")


class TestConfigValidation:
    def test_bad_mean_repeat(self):
        with pytest.raises(ValueError):
            GeneratorConfig(mean_repeat=0)

    def test_bad_optional_probability(self):
        with pytest.raises(ValueError):
            GeneratorConfig(optional_probability=1.5)

    def test_bad_decay(self):
        with pytest.raises(ValueError):
            GeneratorConfig(recursion_decay=0.0)

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            GeneratorConfig(max_depth=0)


class TestNonRepeatableRoot:
    def test_degenerate_dtd_without_growth_unit(self):
        dtd = parse_dtd("""
            <!ELEMENT root (only?)>
            <!ELEMENT only (#PCDATA)>
        """)
        document = XmlGenerator(dtd, seed=1).generate(50)
        assert document.element_count() >= 1
        assert document.validate()
