"""Tests for paged element lists and cursors (repro.storage.pagedlist)."""

import pytest

from repro.storage.pagedlist import ElementListPage, PagedElementList
from tests.conftest import entry


def sample_entries(n, stride=10):
    return [entry(i * stride + 1, i * stride + 5) for i in range(n)]


class TestBuild:
    def test_empty_list(self, pool):
        lst = PagedElementList.build(pool, [])
        assert len(lst) == 0
        assert list(lst) == []
        assert lst.page_count == 0

    def test_single_page(self, pool):
        entries = sample_entries(3)
        lst = PagedElementList.build(pool, entries)
        assert list(lst) == entries
        assert lst.page_count == 1

    def test_multi_page_chain(self, pool):
        capacity = ElementListPage.capacity(pool.page_size)
        entries = sample_entries(capacity * 3 + 2)
        lst = PagedElementList.build(pool, entries)
        assert list(lst) == entries
        assert lst.page_count == 4

    def test_fill_factor_spreads_pages(self, pool):
        capacity = ElementListPage.capacity(pool.page_size)
        entries = sample_entries(capacity * 2)
        full = PagedElementList.build(pool, entries, fill_factor=1.0)
        half = PagedElementList.build(pool, entries, fill_factor=0.5)
        assert half.page_count > full.page_count
        assert list(half) == entries

    def test_bad_fill_factor(self, pool):
        with pytest.raises(ValueError):
            PagedElementList.build(pool, [], fill_factor=0.0)

    def test_pages_iterator_matches_page_count(self, pool):
        capacity = ElementListPage.capacity(pool.page_size)
        lst = PagedElementList.build(pool, sample_entries(capacity + 1))
        assert len(list(lst.pages())) == lst.page_count

    def test_no_pins_left_after_build_and_iterate(self, pool):
        lst = PagedElementList.build(pool, sample_entries(100))
        list(lst)
        assert pool.pinned_count == 0


class TestCursor:
    def test_forward_iteration(self, pool):
        entries = sample_entries(25)
        cursor = PagedElementList.build(pool, entries).cursor()
        seen = []
        while not cursor.at_end:
            seen.append(cursor.current)
            cursor.advance()
        assert seen == entries

    def test_empty_cursor(self, pool):
        cursor = PagedElementList.build(pool, []).cursor()
        assert cursor.at_end
        assert cursor.advance() is False
        with pytest.raises(StopIteration):
            cursor.current

    def test_advance_returns_false_at_end(self, pool):
        cursor = PagedElementList.build(pool, sample_entries(1)).cursor()
        assert cursor.advance() is False
        assert cursor.at_end

    def test_clone_is_independent(self, pool):
        entries = sample_entries(40)
        cursor = PagedElementList.build(pool, entries).cursor()
        for _ in range(5):
            cursor.advance()
        copy = cursor.clone()
        assert copy.current == cursor.current
        cursor.advance()
        assert copy.current == entries[5]
        assert cursor.current == entries[6]

    def test_clone_at_end(self, pool):
        cursor = PagedElementList.build(pool, sample_entries(2)).cursor()
        cursor.advance()
        cursor.advance()
        assert cursor.clone().at_end

    def test_cursor_charges_page_reads(self, pool):
        capacity = ElementListPage.capacity(pool.page_size)
        lst = PagedElementList.build(pool, sample_entries(capacity * 3))
        pool.flush_all()
        pool.clear()
        pool.reset_stats()
        cursor = lst.cursor()
        while not cursor.at_end:
            cursor.advance()
        assert pool.stats.misses == 3


class TestPageCodec:
    def test_roundtrip_through_bytes(self, pool):
        entries = sample_entries(4)
        page = ElementListPage(entries, next_id=77)
        data = page.encode(pool.page_size)
        from repro.storage.pages import Page

        decoded = Page.decode(data, pool.page_size)
        assert decoded.records == entries
        assert decoded.next_id == 77

    def test_capacity_positive_for_default_page(self):
        assert ElementListPage.capacity(4096) > 100
