"""Unit tests for the disk-based B+-tree (repro.indexes.bptree)."""

import pytest

from repro.indexes.bptree import BPlusTree, BPlusTreeError
from tests.conftest import entry


def make_tree(pool, keys, bulk=True, fill=1.0):
    tree = BPlusTree(pool)
    entries = [entry(k, k + 100000) for k in sorted(keys)]
    if bulk:
        tree.bulk_load(entries, fill)
    else:
        for e in entries:
            tree.insert(e)
    return tree


class TestBulkLoad:
    def test_empty(self, pool):
        tree = BPlusTree(pool)
        tree.bulk_load([])
        assert tree.size == 0
        assert list(tree.items()) == []

    def test_single_leaf(self, pool):
        tree = make_tree(pool, range(1, 6))
        assert tree.height == 1
        assert [e.start for e in tree.items()] == [1, 2, 3, 4, 5]
        tree.check()

    def test_multi_level(self, pool):
        tree = make_tree(pool, range(1, 2001))
        assert tree.height >= 3
        assert tree.size == 2000
        tree.check()

    def test_fill_factor_grows_page_count(self, pool):
        full = make_tree(pool, range(1, 501), fill=1.0)
        loose = make_tree(pool, range(1000001, 1000501), fill=0.5)
        assert loose.page_count() > full.page_count()

    def test_unsorted_input_rejected(self, pool):
        tree = BPlusTree(pool)
        with pytest.raises(BPlusTreeError):
            tree.bulk_load([entry(5, 10), entry(1, 2)])

    def test_duplicate_input_rejected(self, pool):
        tree = BPlusTree(pool)
        with pytest.raises(BPlusTreeError):
            tree.bulk_load([entry(5, 10), entry(5, 11)])

    def test_bulk_load_twice_rejected(self, pool):
        tree = make_tree(pool, [1, 2, 3])
        with pytest.raises(BPlusTreeError):
            tree.bulk_load([entry(9, 10)])


class TestSearch:
    def test_search_present(self, pool):
        tree = make_tree(pool, range(10, 1000, 10))
        found = tree.search(500)
        assert found is not None and found.start == 500

    def test_search_absent(self, pool):
        tree = make_tree(pool, range(10, 1000, 10))
        assert tree.search(505) is None

    def test_search_empty_tree(self, pool):
        assert BPlusTree(pool).search(1) is None

    def test_seek_lands_on_geq(self, pool):
        tree = make_tree(pool, [10, 20, 30])
        assert tree.seek(15).current.start == 20
        assert tree.seek(20).current.start == 20
        assert tree.seek(31).at_end

    def test_seek_after_strictly_greater(self, pool):
        tree = make_tree(pool, [10, 20, 30])
        assert tree.seek_after(20).current.start == 30
        assert tree.seek_after(9).current.start == 10
        assert tree.seek_after(30).at_end

    def test_first_cursor(self, pool):
        tree = make_tree(pool, [7, 3, 9])
        assert tree.first().current.start == 3
        assert BPlusTree(pool).first().at_end

    def test_range_scan(self, pool):
        tree = make_tree(pool, range(1, 101))
        assert [e.start for e in tree.range_scan(20, 29)] == list(range(20, 30))

    def test_range_scan_crosses_leaves(self, pool):
        tree = make_tree(pool, range(1, 501))
        got = [e.start for e in tree.range_scan(100, 400)]
        assert got == list(range(100, 401))

    def test_cursor_walks_whole_tree(self, pool):
        keys = list(range(1, 301))
        tree = make_tree(pool, keys)
        cursor = tree.first()
        seen = []
        while not cursor.at_end:
            seen.append(cursor.current.start)
            cursor.advance()
        assert seen == keys


class TestInsert:
    def test_insert_into_empty(self, pool):
        tree = BPlusTree(pool)
        tree.insert(entry(5, 9))
        assert tree.size == 1
        assert tree.search(5).end == 9

    def test_inserts_stay_sorted(self, pool):
        tree = BPlusTree(pool)
        for k in [50, 10, 90, 30, 70, 20, 80, 40, 60, 100]:
            tree.insert(entry(k, k + 1))
        assert [e.start for e in tree.items()] == sorted(
            [50, 10, 90, 30, 70, 20, 80, 40, 60, 100]
        )
        tree.check()

    def test_splits_propagate(self, pool):
        tree = make_tree(pool, range(1, 1201), bulk=False)
        assert tree.height >= 3
        tree.check()

    def test_duplicate_insert_rejected(self, pool):
        tree = BPlusTree(pool)
        tree.insert(entry(5, 9))
        with pytest.raises(BPlusTreeError):
            tree.insert(entry(5, 99))

    def test_descending_insert_order(self, pool):
        tree = BPlusTree(pool)
        for k in range(500, 0, -1):
            tree.insert(entry(k, k + 1000))
        tree.check()
        assert tree.size == 500


class TestDelete:
    def test_delete_returns_entry(self, pool):
        tree = make_tree(pool, [1, 2, 3])
        removed = tree.delete(2)
        assert removed.start == 2
        assert tree.search(2) is None
        assert tree.size == 2

    def test_delete_absent_returns_none(self, pool):
        tree = make_tree(pool, [1, 2, 3])
        assert tree.delete(99) is None
        assert tree.size == 3

    def test_delete_from_empty(self, pool):
        assert BPlusTree(pool).delete(1) is None

    def test_delete_everything_frees_pages(self, pool, disk):
        tree = make_tree(pool, range(1, 301), bulk=False)
        for k in range(1, 301):
            assert tree.delete(k) is not None
        assert tree.size == 0
        assert tree.root_id == 0
        pool.flush_all()
        assert disk.allocated_page_count == 0

    def test_delete_rebalances(self, pool):
        tree = make_tree(pool, range(1, 801), bulk=False)
        for k in range(1, 801, 2):
            tree.delete(k)
        tree.check()
        assert [e.start for e in tree.items()] == list(range(2, 801, 2))

    def test_interleaved_insert_delete(self, pool):
        tree = BPlusTree(pool)
        live = set()
        for k in range(1, 401):
            tree.insert(entry(k, k + 1000))
            live.add(k)
            if k % 3 == 0:
                victim = k // 3
                tree.delete(victim)
                live.discard(victim)
        tree.check()
        assert sorted(e.start for e in tree.items()) == sorted(live)


class TestStructure:
    def test_no_pin_leaks(self, pool):
        tree = make_tree(pool, range(1, 501), bulk=False)
        tree.search(100)
        list(tree.range_scan(5, 400))
        tree.delete(250)
        tree.insert(entry(9999, 10000))
        assert pool.pinned_count == 0

    def test_survives_buffer_pressure(self):
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import InMemoryDisk

        pool = BufferPool(InMemoryDisk(256), capacity=8)
        tree = BPlusTree(pool)
        for k in range(1, 1001):
            tree.insert(entry(k, k + 5000))
        tree.check()
        assert tree.size == 1000

    def test_tiny_explicit_capacity_rejected(self, pool):
        with pytest.raises(BPlusTreeError):
            BPlusTree(pool, leaf_capacity=1)
        with pytest.raises(BPlusTreeError):
            BPlusTree(pool, internal_capacity=1)

    def test_minimal_page_size_still_works(self):
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import InMemoryDisk

        pool = BufferPool(InMemoryDisk(64), capacity=8)
        tree = BPlusTree(pool)
        for k in range(1, 60):
            tree.insert(entry(k, k + 100))
        tree.check()
        assert tree.size == 59
