"""Shared fixtures for the test suite."""

import pytest

from repro.core.api import StorageContext
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.pages import ElementEntry
from repro.workloads.datasets import conference_dataset, department_dataset


@pytest.fixture
def disk():
    return InMemoryDisk(page_size=512)


@pytest.fixture
def pool(disk):
    return BufferPool(disk, capacity=32)


@pytest.fixture
def big_pool():
    return BufferPool(InMemoryDisk(page_size=4096), capacity=256)


@pytest.fixture
def context():
    """A storage context with small pages to force multi-level trees."""
    return StorageContext(page_size=512, buffer_pages=64)


@pytest.fixture(scope="session")
def dept_data():
    return department_dataset(3000, seed=7)


@pytest.fixture(scope="session")
def conf_data():
    return conference_dataset(3000, seed=11)


def entry(start, end, level=1, doc=1, flag=False, ptr=0):
    """Shorthand ElementEntry constructor used across the suite."""
    return ElementEntry(doc, start, end, level, flag, ptr)


def nested_entries(spec):
    """Build entries from a compact '(start,end)' spec list."""
    return [entry(s, e, level) for s, e, level in spec]


@pytest.fixture
def make_entry():
    return entry
