"""Property-based tests for the holistic executors on multi-tag documents."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.path import Axis
from repro.query.pathstack import path_stack
from repro.query.twigjoin import twig_from_path, twig_join, twig_stack_join
from repro.xmldata.model import Document, Element, annotate_regions

TAGS = ("a", "b", "c")


def multi_tag_document(shape):
    """A random document whose tags cycle with depth (a > b > c > a ...)."""
    root = Element("a")
    frontier = [root]
    for value in shape:
        node = frontier.pop(0)
        tag = TAGS[(TAGS.index(node.tag) + 1) % len(TAGS)]
        for _ in range(value % 4):
            frontier.append(node.add_child(Element(tag)))
        if not frontier:
            break
    annotate_regions(root)
    return Document(root)


def oracle_matches(document, path_text):
    root, _ = twig_from_path(path_text)
    nodes = root.preorder()
    candidates = [document.elements_by_tag(node.tag) for node in nodes]
    out = set()
    for combo in itertools.product(*candidates):
        ok = True
        for position, node in enumerate(nodes):
            if node.parent is None:
                continue
            parent_element = combo[node.parent.index]
            element = combo[position]
            if not (parent_element.start < element.start
                    and element.end < parent_element.end):
                ok = False
                break
            if node.axis is Axis.CHILD and \
                    parent_element.level != element.level - 1:
                ok = False
                break
        if ok:
            out.add(tuple(e.start for e in combo))
    return sorted(out)


shapes = st.lists(st.integers(min_value=0, max_value=3),
                  min_size=2, max_size=50)

TWIGS = ("//a//b", "//a/b", "//a[b]//b", "//a[b/c]", "//b[c]",
         "//a//b//c", "//a//b/c", "//a[b][b/c]")


@given(shapes, st.sampled_from(TWIGS))
@settings(max_examples=80, deadline=None)
def test_twig_join_matches_oracle(shape, twig):
    document = multi_tag_document(shape)
    root, _ = twig_from_path(twig)
    result = twig_join(document.entries_for_tag, root)
    got = sorted({tuple(e.start for e in match)
                  for match in result.matches})
    assert got == oracle_matches(document, twig)


@given(shapes, st.sampled_from(TWIGS))
@settings(max_examples=80, deadline=None)
def test_twig_stack_matches_oracle(shape, twig):
    document = multi_tag_document(shape)
    root, _ = twig_from_path(twig)
    result = twig_stack_join(document.entries_for_tag, root)
    got = sorted({tuple(e.start for e in match)
                  for match in result.matches})
    assert got == oracle_matches(document, twig)


@given(shapes, st.sampled_from(("//a//b", "//a/b", "//a//b//c",
                                "//a//b/c", "//b//c")))
@settings(max_examples=60, deadline=None)
def test_pathstack_matches_oracle(shape, path):
    document = multi_tag_document(shape)
    from repro.query.pathstack import evaluate_path_stack

    result = evaluate_path_stack(document, path)
    got = sorted({tuple(e.start for e in solution)
                  for solution in result.solutions})
    assert got == oracle_matches(document, path)


@given(shapes)
@settings(max_examples=40, deadline=None)
def test_optimized_and_plain_twig_agree(shape):
    document = multi_tag_document(shape)
    for twig in TWIGS:
        root1, _ = twig_from_path(twig)
        plain = twig_join(document.entries_for_tag, root1)
        root2, _ = twig_from_path(twig)
        optimized = twig_stack_join(document.entries_for_tag, root2)
        key = lambda m: tuple(e.start for e in m)
        assert sorted(plain.matches, key=key) == \
            sorted(optimized.matches, key=key), twig
        # getNext never scans more than the exhaustive pass.
        assert optimized.stats.elements_scanned <= \
            plain.stats.elements_scanned + 1
