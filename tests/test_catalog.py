"""Tests for on-disk persistence via the catalog (repro.storage.catalog)."""

import pytest

from repro.indexes.bptree import BPlusTree
from repro.indexes.xrtree import XRTree, check_xrtree
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog, CatalogError, CatalogPage
from repro.storage.disk import FileDisk, InMemoryDisk
from repro.storage.pagedlist import PagedElementList
from tests.conftest import entry


@pytest.fixture
def cat_pool():
    return BufferPool(InMemoryDisk(512), capacity=32)


@pytest.fixture
def catalog(cat_pool):
    return Catalog.create(cat_pool)


def sample_entries(n):
    return [entry(i * 3 + 1, i * 3 + 2) for i in range(n)]


class TestCatalogBasics:
    def test_create_uses_first_page(self, catalog):
        assert catalog.page_id == 1

    def test_open_existing(self, cat_pool, catalog):
        again = Catalog.open(cat_pool)
        assert again.page_id == catalog.page_id

    def test_open_wrong_page_type_rejected(self, cat_pool):
        from repro.storage.pages import RawPage

        page = cat_pool.new_page(RawPage(b"not a catalog"))
        page_id = page.page_id
        cat_pool.unpin(page, dirty=True)
        with pytest.raises(CatalogError):
            Catalog.open(cat_pool, page_id)

    def test_names_empty(self, catalog):
        assert catalog.names() == {}

    def test_load_missing_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.load_bptree("ghost")

    def test_remove_missing_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.remove("ghost")

    def test_long_name_rejected(self, cat_pool, catalog):
        tree = BPlusTree(cat_pool)
        catalog.save_bptree("x" * 40, tree)
        with pytest.raises(CatalogError):
            cat_pool.flush_all()


class TestSaveLoadRoundtrips:
    def test_bptree_roundtrip(self, cat_pool, catalog):
        tree = BPlusTree(cat_pool)
        tree.bulk_load(sample_entries(200))
        catalog.save_bptree("keys", tree)
        loaded = catalog.load_bptree("keys")
        assert loaded.size == 200
        assert [e.start for e in loaded.items()] == \
            [e.start for e in tree.items()]
        loaded.check()

    def test_xrtree_roundtrip(self, cat_pool, catalog):
        tree = XRTree(cat_pool, leaf_capacity=4, internal_capacity=3)
        for e in [entry(1, 50), entry(2, 20), entry(3, 10), entry(25, 45)]:
            tree.insert(e)
        catalog.save_xrtree("emps", tree)
        loaded = catalog.load_xrtree("emps")
        assert loaded.leaf_capacity == 4
        check_xrtree(loaded)
        assert [a.start for a in loaded.find_ancestors(5)] == [1, 2, 3]

    def test_element_list_roundtrip(self, cat_pool, catalog):
        lst = PagedElementList.build(cat_pool, sample_entries(100))
        catalog.save_element_list("raw", lst)
        loaded = catalog.load_element_list("raw")
        assert list(loaded) == list(lst)
        assert loaded.page_count == lst.page_count

    def test_kind_mismatch_rejected(self, cat_pool, catalog):
        tree = BPlusTree(cat_pool)
        tree.bulk_load(sample_entries(5))
        catalog.save_bptree("thing", tree)
        with pytest.raises(CatalogError):
            catalog.load_xrtree("thing")

    def test_resave_updates_in_place(self, cat_pool, catalog):
        tree = BPlusTree(cat_pool)
        tree.bulk_load(sample_entries(10))
        catalog.save_bptree("t", tree)
        tree.insert(entry(100000, 100001))
        catalog.save_bptree("t", tree)
        assert catalog.load_bptree("t").size == 11
        assert len(catalog.names()) == 1

    def test_names_and_remove(self, cat_pool, catalog):
        tree = BPlusTree(cat_pool)
        catalog.save_bptree("a", tree)
        catalog.save_xrtree("b", XRTree(cat_pool))
        assert catalog.names() == {"a": "b+tree", "b": "xr-tree"}
        catalog.remove("a")
        assert catalog.names() == {"b": "xr-tree"}

    def test_overflow_to_second_catalog_page(self, cat_pool, catalog):
        capacity = CatalogPage.capacity(cat_pool.page_size)
        tree = BPlusTree(cat_pool)
        for index in range(capacity + 3):
            catalog.save_bptree("t%03d" % index, tree)
        assert len(catalog.names()) == capacity + 3
        assert catalog.load_bptree("t%03d" % (capacity + 2)) is not None


class TestFileBackedReopen:
    def test_full_database_reopen(self, tmp_path):
        path = str(tmp_path / "db.pages")
        entries = sample_entries(300)
        with FileDisk(path, page_size=512) as disk:
            pool = BufferPool(disk, capacity=32)
            catalog = Catalog.create(pool)
            xr = XRTree(pool)
            for e in entries:
                xr.insert(e)
            bp = BPlusTree(pool)
            bp.bulk_load(entries)
            lst = PagedElementList.build(pool, entries)
            catalog.save_xrtree("xr", xr)
            catalog.save_bptree("bp", bp)
            catalog.save_element_list("lst", lst)
            pool.flush_all()

        # Reopen the file in a fresh disk object, as a new process would.
        with FileDisk(path, page_size=512) as disk:
            pool = BufferPool(disk, capacity=32)
            catalog = Catalog.open(pool)
            assert set(catalog.names()) == {"xr", "bp", "lst"}
            xr = catalog.load_xrtree("xr")
            check_xrtree(xr)
            assert xr.size == 300
            bp = catalog.load_bptree("bp")
            assert bp.search(entries[5].start) is not None
            lst = catalog.load_element_list("lst")
            assert len(list(lst)) == 300
