"""Tests for Stack-Tree-Anc (repro.joins.stack_tree_anc)."""

import pytest

from repro.core.api import StorageContext, build_element_list
from repro.joins import nested_loop_join, stack_tree_join
from repro.joins.base import sort_pairs
from repro.joins.stack_tree_anc import stack_tree_anc_join
from tests.conftest import entry
from tests.test_xrtree_property import tree_shape_to_entries


def run(ancestors, descendants, parent_child=False, collect=True):
    context = StorageContext(page_size=512, buffer_pages=64)
    a_list = build_element_list(ancestors, context.pool)
    d_list = build_element_list(descendants, context.pool)
    return stack_tree_anc_join(a_list, d_list, parent_child=parent_child,
                               collect=collect)


def anc_order(pairs):
    return [(a.start, d.start) for a, d in pairs]


class TestCorrectness:
    def test_department_matches_oracle(self, dept_data):
        pairs, _ = run(dept_data.ancestors, dept_data.descendants)
        assert sort_pairs(pairs) == nested_loop_join(
            dept_data.ancestors, dept_data.descendants
        )

    def test_conference_matches_oracle(self, conf_data):
        pairs, _ = run(conf_data.ancestors, conf_data.descendants)
        assert sort_pairs(pairs) == nested_loop_join(
            conf_data.ancestors, conf_data.descendants
        )

    def test_parent_child(self, dept_data):
        pairs, _ = run(dept_data.ancestors, dept_data.descendants,
                       parent_child=True)
        assert sort_pairs(pairs) == nested_loop_join(
            dept_data.ancestors, dept_data.descendants, parent_child=True
        )

    def test_self_join(self, dept_data):
        emps = dept_data.ancestors
        pairs, _ = run(emps, emps)
        assert sort_pairs(pairs) == nested_loop_join(emps, emps)

    def test_random_shapes(self):
        for shape in ([1, 2, 3], [3, 3, 3, 3], [2, 0, 1, 2, 1],
                      [1] * 15):
            entries = tree_shape_to_entries(shape)
            ancestors, descendants = entries[::2], entries[1::2]
            pairs, _ = run(ancestors, descendants)
            assert sort_pairs(pairs) == nested_loop_join(ancestors,
                                                         descendants)

    def test_empty_inputs(self):
        assert run([], [entry(1, 2)])[0] == []
        assert run([entry(1, 9)], [])[0] == []

    def test_count_only(self, dept_data):
        pairs, stats = run(dept_data.ancestors, dept_data.descendants,
                           collect=False)
        assert pairs is None
        assert stats.pairs == len(nested_loop_join(
            dept_data.ancestors, dept_data.descendants))


class TestOutputOrder:
    def test_pairs_emerge_ancestor_sorted(self, dept_data):
        pairs, _ = run(dept_data.ancestors, dept_data.descendants)
        order = anc_order(pairs)
        assert order == sorted(order)

    def test_desc_variant_emerges_descendant_sorted(self, dept_data):
        context = StorageContext(page_size=512, buffer_pages=64)
        a_list = build_element_list(dept_data.ancestors, context.pool)
        d_list = build_element_list(dept_data.descendants, context.pool)
        pairs, _ = stack_tree_join(a_list, d_list)
        order = [(d.start, a.start) for a, d in pairs]
        assert order == sorted(order)

    def test_nested_chain_order(self):
        # Deep nesting is the hard case for ancestor ordering: the
        # outermost ancestor's pairs must all precede the inner ones'.
        ancestors = [entry(i, 200 - i) for i in range(1, 30)]
        descendants = [entry(50 + i * 2, 50 + i * 2 + 1)
                       for i in range(20)]
        pairs, _ = run(ancestors, descendants)
        order = anc_order(pairs)
        assert order == sorted(order)
        assert len(pairs) == 29 * 20

    def test_scan_counts_match_desc_variant(self, dept_data):
        _, anc_stats = run(dept_data.ancestors, dept_data.descendants,
                           collect=False)
        context = StorageContext(page_size=512, buffer_pages=64)
        a_list = build_element_list(dept_data.ancestors, context.pool)
        d_list = build_element_list(dept_data.descendants, context.pool)
        _, desc_stats = stack_tree_join(a_list, d_list, collect=False)
        # Same single merge pass over both lists.
        assert anc_stats.elements_scanned == desc_stats.elements_scanned
