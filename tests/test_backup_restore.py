"""Hot backup, archive segments and point-in-time recovery."""

import pytest

from repro.core.database import XmlDatabase
from repro.storage.backup import (
    BackupManifest,
    hot_backup,
    main as backup_cli,
    restore,
)
from repro.storage.errors import BackupError, RecoveryError
from repro.storage.journal import Archive, segment_name

PAGE_SIZE = 512
BUFFER_PAGES = 32

XML_A = "<dept><team><name>db</name><member><name>ada</name></member></team></dept>"
XML_B = "<dept><team><name>ir</name><member><name>bob</name></member></team></dept>"
XML_C = "<dept><note>restructure</note></dept>"


def make_primary(tmp_path, docs=("a", "b", "c")):
    """An archive-mode primary with one commit per document."""
    path = str(tmp_path / "primary.db")
    db = XmlDatabase.create(path, page_size=PAGE_SIZE,
                            buffer_pages=BUFFER_PAGES, durability="archive")
    sources = {"a": XML_A, "b": XML_B, "c": XML_C}
    sequences = {}
    for name in docs:
        db.add_document(sources[name], name=name)
        db.flush()
        sequences[name] = db._context.disk.commit_sequence
    return path, db, sequences


def doc_names(path, **options):
    db = XmlDatabase.open(path, page_size=PAGE_SIZE,
                          buffer_pages=BUFFER_PAGES, **options)
    try:
        return [name for _id, name in db.documents()]
    finally:
        db.close()


class TestHotBackup:
    def test_backup_captures_committed_state_only(self, tmp_path):
        path, db, _sequences = make_primary(tmp_path, docs=("a",))
        # Staged but uncommitted: must NOT appear in the backup.
        db.add_document(XML_B, name="staged")
        manifest = db.hot_backup(str(tmp_path / "bk"))
        db.close()

        restored = restore(str(tmp_path / "bk"), str(tmp_path / "r.db"))
        assert restored.base_sequence == manifest.sequence
        assert doc_names(str(tmp_path / "r.db")) == ["a"]

    def test_backup_manifest_round_trips(self, tmp_path):
        path, db, _sequences = make_primary(tmp_path, docs=("a",))
        manifest = db.hot_backup(str(tmp_path / "bk"))
        db.close()
        loaded = BackupManifest.load(str(tmp_path / "bk"))
        assert loaded == manifest
        assert loaded.page_size == PAGE_SIZE
        assert loaded.data_bytes > 0

    def test_backup_of_missing_file_raises(self, tmp_path):
        with pytest.raises(BackupError):
            hot_backup(str(tmp_path / "nope.db"), str(tmp_path / "bk"))

    def test_restore_detects_backup_bit_rot(self, tmp_path):
        path, db, _sequences = make_primary(tmp_path, docs=("a",))
        db.hot_backup(str(tmp_path / "bk"))
        db.close()
        data = str(tmp_path / "bk" / "data.db")
        blob = bytearray(open(data, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(data, "wb").write(bytes(blob))
        with pytest.raises(BackupError, match="CRC"):
            restore(str(tmp_path / "bk"), str(tmp_path / "r.db"))


class TestPointInTimeRecovery:
    def test_restore_to_each_commit_boundary(self, tmp_path):
        early = str(tmp_path / "early")
        archive = str(tmp_path / "fresh.archive")
        base = XmlDatabase.create(str(tmp_path / "fresh.db"),
                                  page_size=PAGE_SIZE,
                                  buffer_pages=BUFFER_PAGES,
                                  durability="archive",
                                  archive_dir=archive)
        base.add_document(XML_A, name="a")
        base.flush()
        seq_a = base._context.disk.commit_sequence
        base.hot_backup(early)
        base.add_document(XML_B, name="b")
        base.flush()
        seq_b = base._context.disk.commit_sequence
        base.add_document(XML_C, name="c")
        base.flush()
        base.close()

        for upto, expected in ((seq_a, ["a"]),
                               (seq_b, ["a", "b"]),
                               (None, ["a", "b", "c"])):
            dest = str(tmp_path / ("pitr-%s.db" % (upto or "head")))
            result = restore(early, dest, archive_dir=archive,
                             upto_sequence=upto)
            assert doc_names(dest) == expected, (upto, expected)
            if upto is not None:
                assert result.sequence == upto

    def test_sequence_gap_refuses_replay(self, tmp_path):
        path, db, sequences = make_primary(tmp_path)
        backup = str(tmp_path / "bk")
        db.close()
        # Take a base backup by restoring the raw first state: simplest is
        # a backup of the live file before pruning; here prune an interior
        # segment and check the gap is refused from a fresh base.
        early_db = XmlDatabase.create(str(tmp_path / "e.db"),
                                      page_size=PAGE_SIZE,
                                      buffer_pages=BUFFER_PAGES,
                                      durability="archive")
        early_db.add_document(XML_A, name="a")
        early_db.flush()
        early_db.hot_backup(backup)
        early_db.add_document(XML_B, name="b")
        early_db.flush()
        early_db.add_document(XML_C, name="c")
        early_db.flush()
        early_db.close()
        archive_dir = str(tmp_path / "e.db.archive")
        archive = Archive(archive_dir, PAGE_SIZE)
        middle = archive.sequences()[-2]
        archive.remove(middle)
        with pytest.raises(BackupError, match="gap"):
            restore(backup, str(tmp_path / "g.db"),
                    archive_dir=archive_dir)

    def test_torn_head_segment_is_skipped(self, tmp_path):
        path, db, sequences = make_primary(tmp_path, docs=("a", "b"))
        backup = str(tmp_path / "bk")
        db.close()
        early = XmlDatabase.create(str(tmp_path / "t.db"),
                                   page_size=PAGE_SIZE,
                                   buffer_pages=BUFFER_PAGES,
                                   durability="archive")
        early.add_document(XML_A, name="a")
        early.flush()
        early.hot_backup(backup)
        early.add_document(XML_B, name="b")
        early.flush()
        early.close()
        archive_dir = str(tmp_path / "t.db.archive")
        archive = Archive(archive_dir, PAGE_SIZE)
        head = archive.sequences()[-1]
        seg = archive.segment_path(head)
        blob = open(seg, "rb").read()
        open(seg, "wb").write(blob[: len(blob) // 2])  # tear it
        result = restore(backup, str(tmp_path / "th.db"),
                         archive_dir=archive_dir)
        assert result.torn_segments_skipped == 1
        assert doc_names(str(tmp_path / "th.db")) == ["a"]

    def test_corrupt_interior_segment_refuses_replay(self, tmp_path):
        backup = str(tmp_path / "bk")
        db = XmlDatabase.create(str(tmp_path / "ci.db"),
                                page_size=PAGE_SIZE,
                                buffer_pages=BUFFER_PAGES,
                                durability="archive")
        db.add_document(XML_A, name="a")
        db.flush()
        db.hot_backup(backup)
        db.add_document(XML_B, name="b")
        db.flush()
        db.add_document(XML_C, name="c")
        db.flush()
        db.close()
        archive_dir = str(tmp_path / "ci.db.archive")
        archive = Archive(archive_dir, PAGE_SIZE)
        middle = archive.sequences()[-2]
        seg = archive.segment_path(middle)
        blob = bytearray(open(seg, "rb").read())
        blob[20] ^= 0xFF
        open(seg, "wb").write(bytes(blob))
        with pytest.raises(BackupError, match="corrupt"):
            restore(backup, str(tmp_path / "cr.db"),
                    archive_dir=archive_dir)


class TestArchiveMode:
    def test_archive_accumulates_one_segment_per_commit(self, tmp_path):
        path, db, sequences = make_primary(tmp_path)
        archive = db.archive
        assert archive is not None
        assert archive.sequences() == sorted(sequences.values())
        db.close()

    def test_reopen_keeps_history_and_state(self, tmp_path):
        path, db, sequences = make_primary(tmp_path)
        db.close()
        assert doc_names(path, durability="archive") == ["a", "b", "c"]
        archive = Archive(path + ".archive", PAGE_SIZE)
        assert archive.sequences()  # history survives a clean reopen

    def test_archive_open_refuses_pending_journal(self, tmp_path):
        path = str(tmp_path / "j.db")
        db = XmlDatabase.create(path, page_size=PAGE_SIZE,
                                buffer_pages=BUFFER_PAGES)
        db.add_document(XML_A, name="a")
        db.close()
        # Fake a pending journal group next to the data file.
        open(path + ".journal", "wb").write(b"XRJLgarbage")
        with pytest.raises(RecoveryError, match="pending journal"):
            XmlDatabase.open(path, page_size=PAGE_SIZE,
                             buffer_pages=BUFFER_PAGES,
                             durability="archive")

    def test_prune_respects_retention_boundary(self, tmp_path):
        path, db, sequences = make_primary(tmp_path)
        archive = db.archive
        removed = archive.prune_upto(sequences["b"])
        assert removed == 2
        assert archive.sequences() == [sequences["c"]]
        db.close()


class TestBackupCLI:
    def test_backup_info_segments_restore_round_trip(self, tmp_path, capsys):
        path, db, sequences = make_primary(tmp_path, docs=("a", "b"))
        db.close()
        backup = str(tmp_path / "cli-bk")
        assert backup_cli(["backup", path, backup]) == 0
        assert backup_cli(["info", backup]) == 0
        out = capsys.readouterr().out
        assert "sequence" in out

        archive_dir = path + ".archive"
        assert backup_cli(["segments", archive_dir,
                           "--page-size", str(PAGE_SIZE)]) == 0
        out = capsys.readouterr().out
        assert segment_name(sequences["a"]) in out
        assert "CORRUPT" not in out

        dest = str(tmp_path / "cli-restored.db")
        assert backup_cli(["restore", backup, dest,
                           "--archive", archive_dir]) == 0
        assert doc_names(dest) == ["a", "b"]

    def test_cli_reports_errors_with_exit_code(self, tmp_path, capsys):
        assert backup_cli(["info", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().out
