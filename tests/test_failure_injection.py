"""Failure-injection and robustness tests across the stack."""

import pytest

from repro.indexes.bptree import BPlusTree
from repro.indexes.xrtree import XRTree, check_xrtree
from repro.storage.buffer import BufferPool
from repro.storage.disk import FileDisk, InMemoryDisk
from repro.storage.errors import (
    BufferPoolError,
    ChecksumError,
    PageDecodeError,
    TransientIOError,
)
from repro.storage.faults import FaultInjectingDisk
from repro.storage.pages import PAGE_HEADER_SIZE, seal_image
from tests.conftest import entry


class TestCorruptPages:
    def test_corrupt_type_byte_detected_on_fetch(self):
        disk = InMemoryDisk(512)
        pool = BufferPool(disk, capacity=4)
        tree = BPlusTree(pool)
        tree.bulk_load([entry(k, k + 100) for k in range(1, 50)])
        pool.flush_all()
        pool.clear()
        # Smash the root page's type byte on disk; re-seal the checksum so
        # the unknown-type rejection (not the CRC) is what fires.
        raw = bytearray(disk.peek(tree.root_id))
        raw[0] = 250
        disk.poke(tree.root_id, seal_image(raw))
        with pytest.raises(PageDecodeError):
            tree.search(10)

    def test_corrupt_type_byte_fails_checksum_without_reseal(self):
        disk = InMemoryDisk(512)
        pool = BufferPool(disk, capacity=4)
        tree = BPlusTree(pool)
        tree.bulk_load([entry(k, k + 100) for k in range(1, 50)])
        pool.flush_all()
        pool.clear()
        raw = bytearray(disk.peek(tree.root_id))
        raw[0] = 250
        disk.poke(tree.root_id, bytes(raw))  # stale CRC
        with pytest.raises(ChecksumError) as excinfo:
            tree.search(10)
        assert excinfo.value.page_id == tree.root_id

    def test_truncated_page_payload_detected(self):
        disk = InMemoryDisk(512)
        pool = BufferPool(disk, capacity=4)
        tree = XRTree(pool)
        for k in range(1, 40):
            tree.insert(entry(k, k + 1000))
        pool.flush_all()
        pool.clear()
        # A record count larger than the page's actual payload, sealed so
        # the CRC is valid and the decoder's bounds guard is exercised.
        raw = bytearray(disk.peek(tree.root_id))
        raw[PAGE_HEADER_SIZE] = 0xFF
        raw[PAGE_HEADER_SIZE + 1] = 0xFF
        disk.poke(tree.root_id, seal_image(raw))
        with pytest.raises(PageDecodeError):
            list(tree.items())


class TestBufferPressure:
    def test_xrtree_works_with_minimal_frames(self):
        # The tallest pin chain of any operation must fit the pool.
        pool = BufferPool(InMemoryDisk(512), capacity=6)
        tree = XRTree(pool, leaf_capacity=4, internal_capacity=3)
        entries = [entry(i, 4000 - i) for i in range(1, 200)]
        for e in entries:
            tree.insert(e)
        check_xrtree(tree)
        assert [a.start for a in tree.find_ancestors(500)] == \
            list(range(1, 200))
        for e in entries[::2]:
            assert tree.delete(e.start) is not None
        check_xrtree(tree)

    def test_eviction_storm_preserves_data(self):
        disk = InMemoryDisk(512)
        pool = BufferPool(disk, capacity=3)
        tree = BPlusTree(pool)
        keys = list(range(1, 800))
        for k in keys:
            tree.insert(entry(k, k + 10000))
        assert pool.stats.evictions > 10
        assert [e.start for e in tree.items()] == keys

    def test_join_under_pressure_matches_oracle(self, dept_data):
        from repro.core.api import StorageContext, structural_join, \
            oracle_join
        from repro.joins.base import sort_pairs

        context = StorageContext(page_size=512, buffer_pages=12)
        outcome = structural_join(dept_data.ancestors,
                                  dept_data.descendants,
                                  algorithm="xr-stack", context=context)
        assert sort_pairs(outcome.pairs) == oracle_join(
            dept_data.ancestors, dept_data.descendants
        )


class TestApiMisuse:
    def test_double_unpin_raises(self):
        pool = BufferPool(InMemoryDisk(512), capacity=4)
        from repro.storage.pages import RawPage

        page = pool.new_page(RawPage(b"x"))
        pool.unpin(page)
        with pytest.raises(BufferPoolError):
            pool.unpin(page)

    def test_xrtree_rejects_inverted_region(self):
        # A region with end <= start violates the model; the checker flags
        # it even though insert itself is geometry-agnostic.
        pool = BufferPool(InMemoryDisk(512), capacity=8)
        tree = XRTree(pool)
        tree.insert(entry(10, 5))
        with pytest.raises(Exception):
            check_xrtree(tree)

    def test_operations_leave_no_pins_after_errors(self):
        pool = BufferPool(InMemoryDisk(512), capacity=8)
        tree = XRTree(pool, leaf_capacity=4, internal_capacity=3)
        for k in range(1, 30):
            tree.insert(entry(k, k + 1000))
        from repro.indexes.xrtree import XRTreeError

        with pytest.raises(XRTreeError):
            tree.insert(entry(5, 99999))  # duplicate
        assert pool.pinned_count == 0

    def test_generator_stats_survive_reset_mid_run(self):
        disk = InMemoryDisk(512)
        pool = BufferPool(disk, capacity=8)
        tree = BPlusTree(pool)
        for k in range(1, 100):
            tree.insert(entry(k, k + 100))
        disk.stats.reset()
        pool.reset_stats()
        assert tree.search(50) is not None  # still fully functional


class TestTransientFaults:
    def test_fail_next_raises_exactly_n_times(self, tmp_path):
        disk = FaultInjectingDisk(
            FileDisk(str(tmp_path / "t.db"), page_size=256))
        page = disk.allocate()
        disk.write(page, b"v1")
        disk.sync()
        disk.fail_next(2, "read")
        for _ in range(2):
            with pytest.raises(TransientIOError):
                disk.read(page)
        # The third attempt succeeds: transient means transient.
        assert disk.read(page).startswith(b"v1")
        assert disk.transient_injected == 2
        disk.close()

    def test_fail_next_zero_disarms(self, tmp_path):
        disk = FaultInjectingDisk(
            FileDisk(str(tmp_path / "t.db"), page_size=256))
        page = disk.allocate()
        disk.fail_next(3, "write")
        disk.fail_next(0, "write")
        disk.write(page, b"ok")  # no fault fires
        disk.close()

    def test_fail_next_rejects_unknown_op(self, tmp_path):
        disk = FaultInjectingDisk(
            FileDisk(str(tmp_path / "t.db"), page_size=256))
        with pytest.raises(ValueError):
            disk.fail_next(1, "format-disk")
        disk.close()

    def test_transient_fault_does_not_kill_the_wrapper(self, tmp_path):
        disk = FaultInjectingDisk(
            FileDisk(str(tmp_path / "t.db"), page_size=256))
        page = disk.allocate()
        disk.write(page, b"v1")
        disk.fail_next(1, "physical-write")
        with pytest.raises(TransientIOError):
            disk.sync()
        assert not disk.dead
        disk.sync()  # retried commit succeeds
        assert disk.read(page).startswith(b"v1")
        disk.close()

    def test_retried_archive_commit_reuses_its_sequence(self, tmp_path):
        # A TransientIOError fires before any byte of the group is written,
        # so the retry must reuse the sequence number — otherwise the
        # archive grows a gap no standby could ever cross.
        inner = FileDisk(str(tmp_path / "a.db"), page_size=256,
                         durability="archive")
        disk = FaultInjectingDisk(inner)
        page = disk.allocate()
        disk.write(page, b"v1")
        disk.sync()
        before = inner.commit_sequence
        disk.write(page, b"v2")
        disk.fail_next(1, "physical-write")
        with pytest.raises(TransientIOError):
            disk.sync()
        assert inner.commit_sequence == before  # rolled back
        disk.sync()
        assert inner.commit_sequence == before + 1
        assert inner.archive.sequences()[-1] == before + 1
        disk.close()
