"""Tests for query plan explanation (PathQueryEngine.explain)."""

import pytest

from repro.query import PathQueryEngine
from repro.xmldata.parser import parse_document

SOURCE = """
<dept>
  <emp id="e1"><name>w</name><email/>
    <emp id="e2"><name>x</name></emp>
  </emp>
</dept>
"""


@pytest.fixture(scope="module")
def engine():
    return PathQueryEngine(parse_document(SOURCE))


class TestExplain:
    def test_single_step(self, engine):
        plan = engine.explain("//emp")
        assert "scan emp" in plan
        assert "-> 2 elements" in plan

    def test_join_lines(self, engine):
        plan = engine.explain("//dept//emp/name")
        assert "descendant-join dept (1) with emp (2)" in plan
        assert "child-join emp (2) with name (2)" in plan

    def test_structural_predicate_line(self, engine):
        plan = engine.explain("//emp[email]/name")
        assert "semi-join filter [email]" in plan

    def test_value_predicate_line(self, engine):
        plan = engine.explain('//emp[@id="e1"]')
        assert 'filter [@id="e1"] (value lookup per match)' in plan

    def test_estimates_present(self, engine):
        plan = engine.explain("//dept//emp")
        assert "~" in plan and "pairs" in plan

    def test_explain_does_not_execute_joins(self, engine):
        # explain() must not run semi-joins: a path over a huge synthetic
        # set explains instantly and leaves no join statistics behind.
        plan = engine.explain("//dept//emp//name")
        assert plan.startswith("plan for //dept//emp//name")

    def test_strategy_shown(self):
        engine = PathQueryEngine(parse_document(SOURCE),
                                 strategy="stack-tree")
        assert "strategy=stack-tree" in engine.explain("//emp")

    def test_plan_matches_execution(self, engine):
        # Sanity: the sizes explain() prints are the sizes evaluate() uses.
        plan = engine.explain("//emp/name")
        result = engine.evaluate("//emp/name")
        assert "emp (2)" in plan
        assert len(result) == 2
