"""Tests for the benchmark harness and studies (repro.bench)."""

import pytest

from repro.bench.harness import (
    SELECTIVITY_STEPS,
    ExperimentConfig,
    run_selectivity_sweep,
)
from repro.bench.paper_numbers import PAPER_TABLES
from repro.bench.report import (
    format_elapsed_table,
    format_scanned_table,
    format_series,
    shape_checks,
)
from repro.bench.studies import (
    ablation_buffer_sizes,
    ablation_split_keys,
    stab_list_study,
    update_cost_study,
)

SMALL = ExperimentConfig(target_elements=1500, steps=(0.7, 0.1))


@pytest.fixture(scope="module")
def small_sweep():
    return run_selectivity_sweep("employee_name", "ancestors", SMALL)


class TestHarness:
    def test_sweep_has_all_cells(self, small_sweep):
        assert len(small_sweep.cells) == len(SMALL.steps) * 3

    def test_cell_lookup(self, small_sweep):
        cell = small_sweep.cell(0.7, "xr-stack")
        assert cell.elements_scanned > 0
        assert cell.page_misses > 0
        with pytest.raises(KeyError):
            small_sweep.cell(0.33, "xr-stack")

    def test_series_extraction(self, small_sweep):
        series = small_sweep.series("stack-tree", "elements_scanned")
        assert [x for x, _ in series] == list(SMALL.steps)
        assert all(y > 0 for _, y in series)

    def test_pair_counts_agree_across_algorithms(self, small_sweep):
        for step in SMALL.steps:
            counts = {small_sweep.cell(step, a).pairs
                      for a in SMALL.algorithms}
            assert len(counts) == 1

    def test_workload_metadata_recorded(self, small_sweep):
        cell = small_sweep.cell(0.1, "xr-stack")
        assert abs(cell.join_a - 0.1) < 0.08
        assert cell.list_sizes[0] > 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_selectivity_sweep("employee_name", "sideways", SMALL)

    def test_descendant_protocol_runs(self):
        result = run_selectivity_sweep("paper_author", "descendants",
                                       SMALL)
        assert len(result.cells) == len(SMALL.steps) * 3

    def test_both_protocol_keeps_sizes(self):
        result = run_selectivity_sweep("employee_name", "both", SMALL)
        sizes = {cell.list_sizes for cell in result.cells}
        assert len(sizes) == 1  # constant across the sweep (Section 6.4)


class TestReport:
    def test_scanned_table_renders(self, small_sweep):
        text = format_scanned_table(small_sweep)
        assert "NIDX" in text and "XR" in text
        assert text.count("\n") == len(SMALL.steps)

    def test_scanned_table_with_paper_columns(self, small_sweep):
        text = format_scanned_table(small_sweep, "table2a")
        assert "paper:NIDX" in text

    def test_elapsed_table_renders(self, small_sweep):
        text = format_elapsed_table(small_sweep)
        assert "misses:XR" in text

    def test_series_renders(self, small_sweep):
        text = format_series(small_sweep)
        assert "XR:" in text and "(70%" in text

    def test_shape_checks_hold_on_real_sweep(self, small_sweep):
        checks = shape_checks(small_sweep)
        assert checks["xr_scans_least"]
        assert checks["gap_grows"]


class TestPaperNumbers:
    @pytest.mark.parametrize("key", ["table2a", "table2b", "table3a",
                                     "table3b"])
    def test_tables_cover_all_steps(self, key):
        table = PAPER_TABLES[key]
        assert set(table) == set(SELECTIVITY_STEPS)
        for row in table.values():
            assert set(row) == {"NIDX", "B+", "XR"}

    def test_paper_shape_2a_xr_below_bplus_below_nidx(self):
        for row in PAPER_TABLES["table2a"].values():
            assert row["XR"] <= row["B+"] <= row["NIDX"]

    def test_paper_shape_2b_bplus_equals_nidx(self):
        for row in PAPER_TABLES["table2b"].values():
            assert row["B+"] == row["NIDX"]
            assert row["XR"] <= row["B+"]


class TestStudies:
    def test_stab_list_study_shapes(self):
        reports = stab_list_study(target_elements=1200,
                                  nesting_levels=(4, 10), seed=2,
                                  page_size=1024)
        assert len(reports) == 2
        shallow, deep = reports
        assert deep.nesting > shallow.nesting
        for report in reports:
            assert report.stabbed_elements <= report.elements
            # Section 3.3: total stab size much smaller than the leaf level.
            assert report.stab_to_leaf_ratio < 0.5

    def test_update_cost_study(self):
        reports = update_cost_study(target_elements=600, page_size=512,
                                    buffer_pages=16)
        by_key = {(r.structure, r.operation): r for r in reports}
        assert set(by_key) == {("b+tree", "insert"), ("b+tree", "delete"),
                               ("xr-tree", "insert"), ("xr-tree", "delete")}
        # Theorem 1: XR insert cost is B+-tree-like plus a small constant.
        assert by_key[("xr-tree", "insert")].misses_per_op <= \
            by_key[("b+tree", "insert")].misses_per_op + 5.0

    def test_split_key_ablation(self):
        cells = ablation_split_keys(target_elements=1200, page_size=512)
        optimized = [c for c in cells if "True" in c.setting][0]
        plain = [c for c in cells if "False" in c.setting][0]
        assert optimized.stabbed_elements <= plain.stabbed_elements

    def test_buffer_size_ablation(self):
        cells = ablation_buffer_sizes(target_elements=1500,
                                      buffer_sizes=(25, 200))
        # Section 6.1: performance is not essentially affected by buffer
        # size (ordered probes), so scans are identical and misses close.
        assert cells[0].elements_scanned == cells[1].elements_scanned
        small, large = cells[0].page_misses, cells[1].page_misses
        assert small <= large * 3 + 10
