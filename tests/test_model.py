"""Tests for the document model and region annotation (repro.xmldata.model)."""

import pytest

from repro.xmldata.model import Document, Element, XmlModelError, annotate_regions


def small_tree():
    """dept > (emp > name, emp > emp), office — Figure 1 in miniature."""
    root = Element("dept")
    emp1 = root.add_child(Element("emp"))
    emp1.add_child(Element("name", text="a"))
    emp2 = root.add_child(Element("emp"))
    emp2.add_child(Element("emp"))
    root.add_child(Element("office"))
    annotate_regions(root)
    return Document(root)


class TestAnnotation:
    def test_regions_strictly_nest(self):
        doc = small_tree()
        assert doc.validate()

    def test_root_spans_document(self):
        doc = small_tree()
        for node in doc:
            assert doc.root.start <= node.start and node.end <= doc.root.end

    def test_levels_increase_by_one(self):
        doc = small_tree()
        for node in doc:
            for child in node.children:
                assert child.level == node.level + 1

    def test_document_order_starts_increase(self):
        doc = small_tree()
        starts = [node.start for node in doc]
        assert starts == sorted(starts)

    def test_text_reserves_a_number(self):
        with_text = Element("a")
        with_text.add_child(Element("b", text="hello"))
        annotate_regions(with_text, text_numbers=True)
        without = Element("a")
        without.add_child(Element("b", text="hello"))
        annotate_regions(without, text_numbers=False)
        assert with_text.end == without.end + 1

    def test_annotation_returns_next_counter(self):
        root = Element("a")
        root.add_child(Element("b"))
        next_number = annotate_regions(root)
        assert next_number == root.end + 1

    def test_deeply_nested_does_not_recurse(self):
        # 5000 levels would blow the default recursion limit if the
        # annotator recursed.
        root = Element("n0")
        node = root
        for i in range(5000):
            node = node.add_child(Element("n%d" % (i + 1)))
        annotate_regions(root)
        assert root.end == 2 * 5001


class TestElementPredicates:
    def test_is_ancestor_of(self):
        doc = small_tree()
        emp1 = doc.root.children[0]
        name = emp1.children[0]
        assert doc.root.is_ancestor_of(name)
        assert emp1.is_ancestor_of(name)
        assert not name.is_ancestor_of(emp1)

    def test_is_parent_of(self):
        doc = small_tree()
        emp2 = doc.root.children[1]
        inner = emp2.children[0]
        assert emp2.is_parent_of(inner)
        assert not doc.root.is_parent_of(inner)

    def test_iter_subtree_document_order(self):
        doc = small_tree()
        tags = [node.tag for node in doc.root.iter_subtree()]
        assert tags == ["dept", "emp", "name", "emp", "emp", "office"]

    def test_depth_below(self):
        doc = small_tree()
        assert doc.root.depth_below() == 2
        assert doc.root.children[2].depth_below() == 0


class TestDocumentQueries:
    def test_element_count(self):
        assert small_tree().element_count() == 6

    def test_elements_by_tag(self):
        doc = small_tree()
        assert len(doc.elements_by_tag("emp")) == 3
        assert len(doc.elements_by_tag("missing")) == 0

    def test_tags(self):
        assert small_tree().tags() == {"dept", "emp", "name", "office"}

    def test_entries_for_tag_sorted_with_levels(self):
        doc = small_tree()
        entries = doc.entries_for_tag("emp")
        assert [e.start for e in entries] == sorted(e.start for e in entries)
        assert {e.level for e in entries} == {1, 2}
        assert all(e.doc_id == doc.doc_id for e in entries)

    def test_entries_ptr_is_document_ordinal(self):
        doc = small_tree()
        ordinals = {node.start: i for i, node in enumerate(doc)}
        for entry in doc.entries_for_tag("emp"):
            assert entry.ptr == ordinals[entry.start]

    def test_max_nesting_by_tag(self):
        doc = small_tree()
        assert doc.max_nesting("emp") == 2
        assert doc.max_nesting("name") == 1
        assert doc.max_nesting() == 3  # dept > emp > emp


class TestValidation:
    def test_bad_level_detected(self):
        doc = small_tree()
        doc.root.children[0].level = 5
        with pytest.raises(XmlModelError):
            doc.validate()

    def test_degenerate_region_detected(self):
        doc = small_tree()
        doc.root.children[0].end = doc.root.children[0].start
        with pytest.raises(XmlModelError):
            doc.validate()

    def test_overlapping_siblings_detected(self):
        doc = small_tree()
        doc.root.children[1].start = doc.root.children[0].end - 1
        with pytest.raises(XmlModelError):
            doc.validate()

    def test_child_escaping_parent_detected(self):
        doc = small_tree()
        doc.root.children[0].children[0].end = doc.root.end + 5
        with pytest.raises(XmlModelError):
            doc.validate()

    def test_nonzero_root_level_detected(self):
        doc = small_tree()
        doc.root.level = 1
        with pytest.raises(XmlModelError):
            doc.validate()
