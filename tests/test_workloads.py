"""Tests for datasets and selectivity derivations (repro.workloads)."""

import pytest

from repro.joins.base import contains
from repro.workloads.datasets import conference_dataset, department_dataset
from repro.workloads.selectivity import (
    DummyFactory,
    ancestor_chains,
    region_gaps,
    vary_ancestor_selectivity,
    vary_both_selectivity,
    vary_descendant_selectivity,
)
from tests.conftest import entry


def realized_join_a(workload):
    matched = set()
    chains = ancestor_chains(workload.ancestors, workload.descendants)
    for chain in chains:
        matched.update(chain)
    return len(matched) / len(workload.ancestors)


def realized_join_d(workload):
    chains = ancestor_chains(workload.ancestors, workload.descendants)
    matched = sum(1 for chain in chains if chain)
    return matched / len(workload.descendants)


class TestDatasets:
    def test_department_base_properties(self, dept_data):
        assert dept_data.name == "employee_name"
        assert dept_data.ancestor_count > 100
        assert dept_data.descendant_count > 100
        starts = [e.start for e in dept_data.ancestors]
        assert starts == sorted(starts)

    def test_department_is_nested(self, dept_data):
        levels = {e.level for e in dept_data.ancestors}
        assert len(levels) > 1  # employees at multiple depths

    def test_conference_is_flat(self, conf_data):
        levels = {e.level for e in conf_data.ancestors}
        assert len(levels) == 1  # papers never nest

    def test_conference_every_author_matches(self, conf_data):
        chains = ancestor_chains(conf_data.ancestors, conf_data.descendants)
        assert all(chain for chain in chains)

    def test_max_end(self, dept_data):
        assert dept_data.max_end() >= max(e.end for e in dept_data.ancestors)

    def test_datasets_are_seeded(self):
        a = department_dataset(800, seed=3)
        b = department_dataset(800, seed=3)
        assert [e.start for e in a.ancestors] == [e.start for e in b.ancestors]


class TestAncestorChains:
    def test_chains_match_brute_force(self, dept_data):
        chains = ancestor_chains(dept_data.ancestors, dept_data.descendants)
        for index in range(0, len(dept_data.descendants), 37):
            descendant = dept_data.descendants[index]
            expected = [i for i, a in enumerate(dept_data.ancestors)
                        if contains(a, descendant)]
            assert sorted(chains[index]) == expected

    def test_unmatched_descendant_has_empty_chain(self):
        ancestors = [entry(10, 20)]
        descendants = [entry(30, 31)]
        assert ancestor_chains(ancestors, descendants) == [()]


class TestRegionGaps:
    def test_gaps_avoid_ancestor_regions(self):
        ancestors = [entry(10, 20), entry(12, 15), entry(40, 50)]
        gaps = region_gaps(ancestors, 60)
        for low, high in gaps[:-1]:
            for ancestor in ancestors:
                # No gap point may fall inside an ancestor region.
                assert high < ancestor.start or low > ancestor.end

    def test_tail_gap_is_unbounded(self):
        gaps = region_gaps([entry(1, 5)], 5)
        assert gaps[-1][1] is None
        assert gaps[-1][0] > 5

    def test_dummy_factory_produces_disjoint_unmatched(self):
        ancestors = [entry(10, 30), entry(50, 60)]
        factory = DummyFactory(region_gaps(ancestors, 70), doc_id=1)
        dummies = factory.make_many(200)
        seen = set()
        for dummy in dummies:
            assert dummy.end == dummy.start + 1
            assert dummy.start not in seen
            seen.add(dummy.start)
            for ancestor in ancestors:
                assert not contains(ancestor, dummy)


class TestVaryAncestorSelectivity:
    @pytest.mark.parametrize("target", [0.9, 0.5, 0.1])
    def test_realized_join_a_close_to_target(self, dept_data, target):
        workload = vary_ancestor_selectivity(dept_data, target)
        realized = realized_join_a(workload)
        assert abs(realized - target) < 0.08
        assert workload.join_a == pytest.approx(realized, abs=0.02)

    def test_descendant_match_rate_near_99(self, dept_data):
        workload = vary_ancestor_selectivity(dept_data, 0.5)
        assert 0.95 <= realized_join_d(workload) <= 1.0

    def test_ancestor_list_unchanged(self, dept_data):
        workload = vary_ancestor_selectivity(dept_data, 0.3)
        assert workload.ancestors == dept_data.ancestors

    def test_descendants_sorted(self, dept_data):
        workload = vary_ancestor_selectivity(dept_data, 0.3)
        starts = [e.start for e in workload.descendants]
        assert starts == sorted(starts)

    def test_lower_selectivity_shrinks_descendants(self, dept_data):
        high = vary_ancestor_selectivity(dept_data, 0.9)
        low = vary_ancestor_selectivity(dept_data, 0.1)
        assert len(low.descendants) < len(high.descendants)

    def test_deterministic_for_seed(self, dept_data):
        a = vary_ancestor_selectivity(dept_data, 0.4, seed=5)
        b = vary_ancestor_selectivity(dept_data, 0.4, seed=5)
        assert [e.start for e in a.descendants] == \
            [e.start for e in b.descendants]


class TestVaryDescendantSelectivity:
    @pytest.mark.parametrize("target", [0.9, 0.5, 0.1])
    def test_realized_join_d_close_to_target(self, dept_data, target):
        workload = vary_descendant_selectivity(dept_data, target)
        assert abs(realized_join_d(workload) - target) < 0.08

    def test_sizes_unchanged(self, dept_data):
        workload = vary_descendant_selectivity(dept_data, 0.25)
        assert len(workload.descendants) == dept_data.descendant_count
        assert len(workload.ancestors) == dept_data.ancestor_count

    def test_high_budget_keeps_coverage_high(self, dept_data):
        workload = vary_descendant_selectivity(dept_data, 0.9)
        assert realized_join_a(workload) > 0.8

    def test_coverage_degrades_gracefully_at_tiny_budget(self, dept_data):
        # At 1 % matched descendants full 99 % ancestor coverage is
        # infeasible; the derivation reports what it achieved.
        workload = vary_descendant_selectivity(dept_data, 0.01)
        assert workload.join_a <= 1.0
        assert realized_join_d(workload) <= 0.05


class TestVaryBothSelectivity:
    @pytest.mark.parametrize("target", [0.9, 0.4, 0.05])
    def test_sizes_constant(self, dept_data, target):
        workload = vary_both_selectivity(dept_data, target)
        assert len(workload.ancestors) == dept_data.ancestor_count
        assert len(workload.descendants) == dept_data.descendant_count

    @pytest.mark.parametrize("target", [0.9, 0.4])
    def test_both_selectivities_near_target(self, dept_data, target):
        workload = vary_both_selectivity(dept_data, target)
        assert abs(realized_join_a(workload) - target) < 0.12
        assert abs(realized_join_d(workload) - target) < 0.12

    def test_reported_values_match_measured(self, dept_data):
        workload = vary_both_selectivity(dept_data, 0.4)
        assert workload.join_a == pytest.approx(realized_join_a(workload),
                                                abs=0.02)
        assert workload.join_d == pytest.approx(realized_join_d(workload),
                                                abs=0.02)

    def test_works_on_flat_dataset(self, conf_data):
        workload = vary_both_selectivity(conf_data, 0.3)
        assert abs(realized_join_d(workload) - 0.3) < 0.1
