"""Tests for the XR-tree dump utilities (repro.indexes.xrtree.dump)."""

import pytest

from repro.indexes.xrtree import XRTree
from repro.indexes.xrtree.dump import dump_xrtree, stab_summary
from tests.conftest import entry
from tests.test_xrtree_structure import figure1_entries


@pytest.fixture
def figure1_tree(pool):
    tree = XRTree(pool, leaf_capacity=4, internal_capacity=3)
    tree.bulk_load(figure1_entries())
    return tree


class TestDump:
    def test_empty_tree(self, pool):
        assert dump_xrtree(XRTree(pool)) == "<empty XR-tree>"

    def test_header_line(self, figure1_tree):
        text = dump_xrtree(figure1_tree)
        assert text.startswith("XR-tree: 12 elements, height")

    def test_shows_keys_with_pspe(self, figure1_tree):
        text = dump_xrtree(figure1_tree)
        assert "(k=" in text
        assert "ps=" in text and "pe=" in text

    def test_shows_stab_lists_and_flags(self, figure1_tree):
        text = dump_xrtree(figure1_tree)
        assert "stab list (" in text
        assert ",S)" in text  # some leaf entry is flagged

    def test_figure1_regions_present(self, figure1_tree):
        text = dump_xrtree(figure1_tree)
        assert "(2,15" in text
        assert "(20,75" in text

    def test_truncation(self, pool):
        tree = XRTree(pool)
        tree.bulk_load([entry(i * 3, i * 3 + 1) for i in range(1, 60)])
        text = dump_xrtree(tree, max_leaf_entries=2)
        assert "more" in text

    def test_dump_leaves_no_pins(self, figure1_tree, pool):
        dump_xrtree(figure1_tree)
        assert pool.pinned_count == 0


class TestStabSummary:
    def test_empty(self, pool):
        assert stab_summary(XRTree(pool)) == []

    def test_rows_cover_internal_nodes(self, figure1_tree):
        rows = stab_summary(figure1_tree)
        assert rows
        assert rows[0]["depth"] == 0
        total_stabbed = sum(row["stab_count"] for row in rows)
        flagged = sum(1 for e in figure1_tree.items() if e.in_stab_list)
        assert total_stabbed == flagged

    def test_directory_flag(self, pool):
        tree = XRTree(pool, leaf_capacity=4, internal_capacity=3)
        for i in range(1, 120):
            tree.insert(entry(i, 4000 - i))
        rows = stab_summary(tree)
        assert any(row["has_directory"] for row in rows)
        assert any(row["stab_pages"] > 1 for row in rows)
