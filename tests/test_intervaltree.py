"""Tests for the in-memory interval tree (repro.indexes.intervaltree)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.intervaltree import IntervalTree
from tests.conftest import entry
from tests.test_xrtree_property import tree_shape_to_entries


def brute_stabbing(entries, point):
    return sorted((e for e in entries if e.start < point < e.end),
                  key=lambda e: e.start)


class TestBasics:
    def test_empty(self):
        tree = IntervalTree([])
        assert len(tree) == 0
        assert tree.stabbing(5) == []
        assert tree.items() == []

    def test_single_interval(self):
        tree = IntervalTree([entry(2, 9)])
        assert [e.start for e in tree.stabbing(5)] == [2]
        assert tree.stabbing(2) == []   # strict: the start is not inside
        assert tree.stabbing(9) == []
        assert tree.stabbing(1) == []
        assert tree.stabbing(10) == []

    def test_nested_chain(self):
        entries = [entry(i, 100 - i) for i in range(1, 20)]
        tree = IntervalTree(entries)
        assert len(tree) == 19
        assert [e.start for e in tree.stabbing(50)] == list(range(1, 20))
        assert [e.start for e in tree.stabbing(19)] == list(range(1, 19))

    def test_disjoint_intervals(self):
        entries = [entry(i * 10, i * 10 + 5) for i in range(1, 10)]
        tree = IntervalTree(entries)
        assert [e.start for e in tree.stabbing(32)] == [30]
        assert tree.stabbing(37) == []

    def test_items_roundtrip(self):
        entries = tree_shape_to_entries([2, 2, 1, 3])
        tree = IntervalTree(entries)
        assert tree.items() == sorted(entries, key=lambda e: e.start)
        assert len(tree) == len(entries)

    def test_enclosing_excludes_self(self):
        entries = [entry(1, 10), entry(2, 5)]
        tree = IntervalTree(entries)
        ancestors = tree.enclosing(entries[1])
        assert [e.start for e in ancestors] == [1]


class TestAgainstBruteForce:
    @given(st.lists(st.integers(min_value=0, max_value=3),
                    min_size=1, max_size=80),
           st.integers(min_value=0, max_value=400))
    @settings(max_examples=80, deadline=None)
    def test_stabbing_matches_oracle(self, shape, point):
        entries = tree_shape_to_entries(shape)
        tree = IntervalTree(entries)
        assert tree.stabbing(point) == brute_stabbing(entries, point)

    def test_arbitrary_intervals_not_just_nested(self):
        # The interval tree handles arbitrary (even partially overlapping)
        # intervals — the generality XR-trees trade away (Section 1).
        rng = random.Random(8)
        entries = []
        for _ in range(300):
            a, b = sorted(rng.sample(range(1, 1000), 2))
            entries.append(entry(a, b))
        tree = IntervalTree(entries)
        for _ in range(100):
            point = rng.randrange(0, 1001)
            # Random intervals may duplicate (start, end); compare as
            # multisets of regions rather than ordered entry lists.
            got = sorted((e.start, e.end) for e in tree.stabbing(point))
            expected = sorted((e.start, e.end)
                              for e in brute_stabbing(entries, point))
            assert got == expected


class TestAgainstXRTree:
    def test_agrees_with_find_ancestors(self, dept_data):
        from repro.core.api import StorageContext, build_xr_tree

        entries = sorted(dept_data.ancestors + dept_data.descendants,
                         key=lambda e: e.start)
        memory_tree = IntervalTree(entries)
        context = StorageContext(page_size=512, buffer_pages=64)
        disk_tree = build_xr_tree(entries, context.pool)
        rng = random.Random(11)
        top = max(e.end for e in entries)
        for _ in range(120):
            point = rng.randrange(1, top + 3)
            assert [e.start for e in memory_tree.stabbing(point)] == \
                [e.start for e in disk_tree.find_ancestors(point)]
