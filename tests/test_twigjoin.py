"""Tests for the holistic twig join (repro.query.twigjoin)."""

import itertools

import pytest

from repro.query import PathQueryEngine, parse_path
from repro.query.path import Axis
from repro.query.twigjoin import (
    evaluate_twig,
    twig_from_path,
    twig_join,
)
from repro.xmldata.parser import parse_document

SOURCE = """
<dept>
  <emp><name>w</name><email/>
    <emp><name>x</name>
      <emp><name>y</name><email/></emp>
    </emp>
  </emp>
  <emp><name>z</name></emp>
  <office><name>sign</name><email/></office>
</dept>
"""


def oracle_twig_matches(document, path_text):
    """Brute-force all full twig embeddings."""
    root, _output = twig_from_path(path_text)
    nodes = root.preorder()
    candidates = [document.elements_by_tag(node.tag) for node in nodes]
    out = []
    for combo in itertools.product(*candidates):
        ok = True
        for position, node in enumerate(nodes):
            if node.parent is None:
                continue
            parent_element = combo[node.parent.index]
            element = combo[position]
            if not (parent_element.start < element.start
                    and element.end < parent_element.end):
                ok = False
                break
            if node.axis is Axis.CHILD and \
                    parent_element.level != element.level - 1:
                ok = False
                break
        if ok:
            out.append(tuple((e.start, e.end) for e in combo))
    return sorted(out)


def run_twig(document, path_text):
    solutions, _output = evaluate_twig(document, path_text)
    return sorted(
        tuple((e.start, e.end) for e in match)
        for match in solutions.matches
    )


@pytest.fixture(scope="module")
def document():
    return parse_document(SOURCE)


class TestTwigConstruction:
    def test_linear_path(self):
        root, output = twig_from_path("//a//b/c")
        assert root.tag == "a"
        assert output.tag == "c"
        assert [n.tag for n in root.preorder()] == ["a", "b", "c"]

    def test_predicate_branches(self):
        root, output = twig_from_path("//emp[email]/name")
        assert root.tag == "emp"
        assert {child.tag for child in root.children} == {"email", "name"}
        assert output.tag == "name"

    def test_nested_predicates(self):
        root, _ = twig_from_path("//a[b[c]]/d")
        b = [c for c in root.children if c.tag == "b"][0]
        assert b.children[0].tag == "c"

    def test_preorder_indexes_are_dense(self):
        root, _ = twig_from_path("//a[b][c/d]//e")
        indexes = [node.index for node in root.preorder()]
        assert indexes == list(range(len(indexes)))


class TestAgainstOracle:
    @pytest.mark.parametrize("path", [
        "//emp[email]//name",
        "//emp[email]/name",
        "//emp[name]/email",
        "//dept[office]//emp//name",
        "//emp[emp[email]]/name",
        "//emp[name][email]",
        "//emp//emp[name]",
        "//dept//name",
    ])
    def test_small_document(self, document, path):
        assert run_twig(document, path) == \
            oracle_twig_matches(document, path)

    def test_generated_document(self):
        from repro.workloads import department_dataset

        doc = department_dataset(500, seed=61).document
        for path in ("//employee[email]/name",
                     "//department[name]//employee",
                     "//employee[employee]/name"):
            assert run_twig(doc, path) == oracle_twig_matches(doc, path)


class TestAgainstPipelineEngine:
    def test_output_bindings_match_engine(self):
        from repro.workloads import department_dataset

        doc = department_dataset(1000, seed=62).document
        engine = PathQueryEngine(doc)
        for path in ("//employee[email]/name",
                     "//department//employee[employee]",
                     "//employee[email][employee]",
                     "//department[employee[email]]/name"):
            solutions, output_index = evaluate_twig(doc, path)
            holistic = [e.start for e in solutions.bindings_of(output_index)]
            pipeline = engine.evaluate(path).starts()
            assert holistic == pipeline, path


class TestApi:
    def test_count_only(self, document):
        collected, _ = evaluate_twig(document, "//emp[email]//name")
        counted, _ = evaluate_twig(document, "//emp[email]//name",
                                   collect=False)
        assert counted.count == collected.count
        assert counted.matches == []

    def test_empty_stream(self, document):
        solutions, _ = evaluate_twig(document, "//emp[ghost]/name")
        assert solutions.count == 0

    def test_stats_counted(self, document):
        solutions, _ = evaluate_twig(document, "//emp[email]/name")
        assert solutions.stats.elements_scanned > 0

    def test_twig_str_renders(self):
        root, _ = twig_from_path("//emp[email]/name")
        text = str(root)
        assert "emp" in text and "email" in text and "name" in text
