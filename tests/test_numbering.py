"""Tests for the three numbering schemes (repro.xmldata.numbering).

The key property (Section 2.1): all three schemes answer the
ancestor-descendant question identically on any document.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmldata.generator import GeneratorConfig, XmlGenerator
from repro.xmldata.dtd import DEPARTMENT_DTD
from repro.xmldata.model import Document, Element, annotate_regions
from repro.xmldata.numbering import (
    annotate_dietz,
    annotate_durable,
    is_ancestor_dietz,
    is_ancestor_durable,
    is_ancestor_region,
    is_parent_region,
)


def random_tree(shape, max_children=3):
    """Deterministic tree from a sequence of child-count choices."""
    root = Element("r")
    frontier = [root]
    for value in shape:
        node = frontier.pop(0)
        for i in range(value % (max_children + 1)):
            frontier.append(node.add_child(Element("c")))
        if not frontier:
            break
    annotate_regions(root)
    return Document(root)


def truth_pairs(document):
    """(ancestor, descendant) identity pairs via parent pointers."""
    pairs = set()
    for node in document:
        walker = node.parent
        while walker is not None:
            pairs.add((id(walker), id(node)))
            walker = walker.parent
    return pairs


class TestSchemeAgreement:
    @given(st.lists(st.integers(min_value=0, max_value=3),
                    min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_all_schemes_agree_with_parent_pointers(self, shape):
        document = random_tree(shape)
        durable = annotate_durable(document)
        dietz = annotate_dietz(document)
        truth = truth_pairs(document)
        nodes = list(document)
        for u in nodes:
            for v in nodes:
                if u is v:
                    continue
                expected = (id(u), id(v)) in truth
                assert is_ancestor_region(u, v) == expected
                assert is_ancestor_durable(durable[id(u)],
                                           durable[id(v)]) == expected
                assert is_ancestor_dietz(dietz[id(u)],
                                         dietz[id(v)]) == expected

    def test_generated_document_agreement(self):
        generator = XmlGenerator(
            DEPARTMENT_DTD, GeneratorConfig(max_depth=10), seed=5
        )
        document = generator.generate(300)
        durable = annotate_durable(document)
        dietz = annotate_dietz(document)
        nodes = list(document)[:80]
        for u in nodes:
            for v in nodes:
                if u is v:
                    continue
                r = is_ancestor_region(u, v)
                assert r == is_ancestor_durable(durable[id(u)], durable[id(v)])
                assert r == is_ancestor_dietz(dietz[id(u)], dietz[id(v)])


class TestDurableProperties:
    def test_orders_are_preorder_ranks(self):
        document = random_tree([2, 2, 0, 1, 0])
        durable = annotate_durable(document)
        orders = [durable[id(node)].order for node in document]
        assert orders == sorted(orders)
        assert orders[0] == 1

    def test_size_is_subtree_count(self):
        document = random_tree([2, 1, 1])
        durable = annotate_durable(document)
        for node in document:
            assert durable[id(node)].size == \
                sum(1 for _ in node.iter_subtree())


class TestDietzProperties:
    def test_pre_and_post_are_permutations(self):
        document = random_tree([3, 2, 1, 0, 2])
        dietz = annotate_dietz(document)
        n = document.element_count()
        assert sorted(c.pre for c in dietz.values()) == list(range(1, n + 1))
        assert sorted(c.post for c in dietz.values()) == list(range(1, n + 1))

    def test_root_has_first_pre_and_last_post(self):
        document = random_tree([2, 2])
        dietz = annotate_dietz(document)
        code = dietz[id(document.root)]
        assert code.pre == 1
        assert code.post == document.element_count()


class TestParentPredicate:
    def test_parent_requires_adjacent_levels(self):
        document = random_tree([1, 1, 0])
        nodes = list(document)
        root, child = nodes[0], nodes[1]
        assert is_parent_region(root, child)
        if len(nodes) > 2:
            grandchild = nodes[2]
            assert not is_parent_region(root, grandchild)


class TestDeepDocuments:
    def test_annotators_survive_deep_nesting(self):
        root = Element("a")
        node = root
        for _ in range(3000):
            node = node.add_child(Element("a"))
        annotate_regions(root)
        document = Document(root)
        durable = annotate_durable(document)
        dietz = annotate_dietz(document)
        assert durable[id(root)].size == 3001
        assert dietz[id(root)].post == 3001
