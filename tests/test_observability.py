"""End-to-end observability: profiles, EXPLAIN ANALYZE, db metrics, CLI."""

import json

import pytest

from repro.core.database import XmlDatabase
from repro.obs import Observability, QueryProfile, Tracer
from repro.obs.validate import validate_jsonl
from repro.query.engine import PathQueryEngine
from repro.query.pathstack import evaluate_path_stack
from repro.query.runtime import QueryContext
from repro.workloads.datasets import department_dataset

PATH = "//employee//name"


@pytest.fixture(scope="module")
def dataset():
    return department_dataset(3000, seed=7)


def _profiled_run(dataset, path=PATH, strategy="xr-stack"):
    engine = PathQueryEngine(dataset.document, strategy=strategy)
    profile = QueryProfile()
    result = engine.evaluate(path, profile=profile)
    return engine, result, profile


# -- profiles ----------------------------------------------------------------


def test_profile_records_operators_and_totals(dataset):
    _, result, profile = _profiled_run(dataset)
    assert result.profile is profile
    assert profile.path == PATH
    assert profile.strategy == "xr-stack"
    kinds = [op.kind for op in profile.operators]
    assert kinds[0] == "scan" and "join" in kinds
    join = next(op for op in profile.operators if op.kind == "join")
    assert join.rows_out == len(result)
    assert join.pairs == result.stats.pairs
    assert join.page_requests == join.page_hits + join.page_misses > 0
    assert profile.rows == len(result)
    assert profile.wall_seconds > 0
    assert profile.page_requests >= join.page_requests


def test_xr_stack_profile_reports_skip_probes(dataset):
    """The acceptance criterion: EXPLAIN ANALYZE on //employee//name over
    a generated document reports XR-stack skip counts > 0."""
    _, result, profile = _profiled_run(dataset)
    join = next(op for op in profile.operators if op.kind == "join")
    assert join.skip_probes > 0
    assert join.ancestor_skips > 0
    assert join.elements_skipped >= 0
    assert result.stats.ancestor_skips == join.ancestor_skips


def test_profile_rides_on_the_runtime_context(dataset):
    engine = PathQueryEngine(dataset.document)
    profile = QueryProfile()
    result = engine.evaluate(PATH, runtime=QueryContext(profile=profile))
    assert result.profile is profile
    assert profile.operators


def test_logical_counters_are_deterministic(dataset):
    """Two fresh engines over the same dataset and query must agree on
    every logical per-operator counter (hits + misses included)."""
    profiles = []
    for _ in range(2):
        _, _, profile = _profiled_run(dataset)
        profiles.append([
            (op.name, op.input_a, op.input_d, op.rows_out, op.pairs,
             op.elements_scanned, op.page_hits, op.page_misses,
             op.stab_pages, op.ancestor_skips, op.descendant_skips)
            for op in profile.operators
        ])
    assert profiles[0] == profiles[1]


def test_profile_to_dict_round_trips_through_json(dataset):
    _, _, profile = _profiled_run(dataset)
    decoded = json.loads(json.dumps(profile.to_dict()))
    assert decoded["path"] == PATH
    assert decoded["rows"] == profile.rows
    assert len(decoded["operators"]) == len(profile.operators)
    assert decoded["pages_by_index"]


def test_holistic_path_stack_profile(dataset):
    profile = QueryProfile()
    result = evaluate_path_stack(dataset.document, PATH, profile=profile)
    assert len(profile.operators) == 1
    op = profile.operators[0]
    assert op.kind == "holistic" and op.algorithm == "path-stack"
    assert op.rows_out == result.count
    assert op.elements_scanned > 0


# -- EXPLAIN ANALYZE ---------------------------------------------------------


def test_explain_without_analyze_is_unchanged_and_runs_no_join(dataset):
    engine = PathQueryEngine(dataset.document)
    plan = engine.explain(PATH)
    assert "plan for %s" % PATH in plan
    assert "profile for" not in plan


def test_explain_analyze_appends_actuals_with_estimates(dataset):
    engine = PathQueryEngine(dataset.document)
    text = engine.explain(PATH, analyze=True)
    plan, _, actuals = text.partition("\n\n")
    assert plan == engine.explain(PATH)  # the plan half is byte-identical
    assert actuals.startswith("profile for %s" % PATH)
    assert "est ~" in actuals            # estimated-vs-actual side by side
    assert "skip probes" in actuals      # XR-stack skips surfaced


# -- tracing through the engine ----------------------------------------------


def test_engine_tracing_emits_causal_chain(dataset):
    obs = Observability(tracer=Tracer(capacity=1 << 16, enabled=True))
    engine = PathQueryEngine(dataset.document, observability=obs)
    engine.evaluate(PATH)
    assert obs.tracer.dropped == 0
    records = obs.tracer.records()
    kinds = {record["kind"] for record in records}
    assert {"query", "plan", "operator", "page-fetch"} <= kinds
    assert validate_jsonl(obs.tracer.export_jsonl()) == []


def test_disabled_observability_records_nothing(dataset):
    obs = Observability()  # tracer disabled by default
    engine = PathQueryEngine(dataset.document, observability=obs)
    engine.evaluate(PATH)
    assert len(obs.tracer) == 0
    # ... but the metrics still count the query.
    assert obs.snapshot()["repro_queries_total"] == 1


# -- the database surface ----------------------------------------------------


def _tiny_db():
    db = XmlDatabase.create()
    db.add_document(
        "<dept><emp><name>a</name></emp><emp><name>b</name></emp></dept>")
    return db

def test_database_stats_covers_every_subsystem():
    with _tiny_db() as db:
        db.query("//emp//name")
        db.scrub()
        stats = db.stats()
        assert set(stats) == {"buffer", "indexes", "admission", "recovery",
                              "replication", "retention", "disk_full",
                              "scrub", "queries"}
        assert stats["buffer"]["requests"] == (stats["buffer"]["hits"]
                                               + stats["buffer"]["misses"])
        assert stats["indexes"]["creations"] == 3
        assert stats["admission"] is None    # none attached
        assert stats["recovery"] is None     # in-memory database
        assert stats["replication"] is None  # no replica attached
        assert stats["retention"] is None    # no retention manager attached
        assert stats["disk_full"]["degraded"] is False
        assert stats["scrub"]["entries_checked"] > 0
        assert stats["queries"]["total"] == 1
        assert stats["queries"]["rows"] == 2


def test_database_metrics_and_prometheus_exposition():
    with _tiny_db() as db:
        db.query("//emp//name")
        snap = db.metrics()
        assert snap["repro_queries_total"] == 1
        assert snap["repro_query_seconds"]["count"] == 1
        assert snap["repro_query_pages"]["count"] == 1
        assert snap["repro_buffer_hits"] > 0  # collector-refreshed gauge
        text = db.metrics_text()
        assert "# TYPE repro_query_seconds histogram" in text
        assert 'repro_query_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_index_handle_hits" in text


def test_database_error_queries_are_counted():
    from repro.query.engine import QueryError

    with _tiny_db() as db:
        with pytest.raises(QueryError):
            db.query("//emp[@never]/name")  # entries lack node access
        assert db.metrics()["repro_query_errors_total"] == 1


def test_database_slow_query_log():
    with _tiny_db() as db:
        db.configure_observability(slow_query_seconds=0.0)  # log everything
        db.query("//emp//name")
        entries = db.slow_queries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["path"] == "//emp//name"
        assert entry["rows"] == 2 and entry["error"] is None
        assert db.metrics()["repro_slow_queries_total"] == 1
        db.configure_observability(slow_query_seconds=None)
        db.query("//emp//name")
        assert len(db.slow_queries()) == 1  # threshold off: nothing added


def test_database_explain_analyze_and_profile_param():
    with _tiny_db() as db:
        text = db.explain("//emp//name", analyze=True)
        assert "profile for //emp//name" in text
        profile = QueryProfile()
        result = db.query("//emp//name", profile=profile)
        assert result.profile is profile and profile.operators


def test_database_tracing_toggle():
    with _tiny_db() as db:
        db.query("//emp//name")
        assert len(db.observability.tracer) == 0
        db.configure_observability(trace=True)
        db.query("//emp//name")
        assert len(db.observability.tracer) > 0
        db.configure_observability(trace=False)


# -- CLI ---------------------------------------------------------------------


def test_cli_profile_and_trace_out(tmp_path, capsys):
    from repro.query.__main__ import main

    trace_file = tmp_path / "trace.jsonl"
    code = main([PATH, "--generate", "2000", "--profile",
                 "--trace-out", str(trace_file)])
    assert code == 0
    out = capsys.readouterr().out
    assert "profile for %s" % PATH in out
    assert "skip probes" in out
    assert validate_jsonl(trace_file.read_text()) == []


def test_cli_profile_with_holistic(capsys):
    from repro.query.__main__ import main

    assert main([PATH, "--generate", "1500", "--holistic",
                 "--profile"]) == 0
    out = capsys.readouterr().out
    assert "path-stack" in out and "profile for" in out
