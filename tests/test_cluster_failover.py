"""Self-healing cluster: health, routing, failover, fault schedules.

The end-to-end harness this PR is about lives in
:class:`TestFaultSchedules`: each seeded schedule builds a full cluster
(archive-mode primary behind a :class:`FaultInjectingDisk`, two warm
standbys — one with its own transient apply faults), runs an
acknowledged write workload through the :class:`ClusterClient`, kills
the primary at a seeded operation ordinal (optionally tearing the final
page write), and then requires the set to heal itself with **zero
acknowledged-commit loss** while every routed read stays within its
staleness bound.  ``CHAOS_SEED`` reproduces a CI failure locally;
``CLUSTER_SCHEDULES`` scales the sweep (CI runs 50).
"""

import os
import random
import threading
import time

import pytest

from repro.cluster import (
    DOWN,
    HEALTHY,
    SUSPECT,
    BackendHealth,
    ClusterClient,
    ClusterError,
    ClusterReadError,
    ClusterWriteError,
    NoBackendAvailable,
    NoPrimaryError,
    ReplicaSet,
)
from repro.core.database import XmlDatabase
from repro.storage.disk import FileDisk
from repro.storage.errors import TransientIOError
from repro.storage.faults import FaultInjectingDisk
from repro.storage.replication import LocalDirShipper, StandbyReplica
from repro.storage.timemodel import VirtualClock

SEED = int(os.environ.get("CHAOS_SEED", "20030305"))
SCHEDULES = int(os.environ.get("CLUSTER_SCHEDULES", "10"))

PAGE_SIZE = 512
BUFFER_PAGES = 32

XML = ("<dept><team><name>db</name>"
       "<member><name>ada</name></member></team></dept>")


def make_cluster(tmp_path, standbys=2, kill_after=None, torn_bytes=None,
                 standby_faults=(), transport="local", proxy_config=None,
                 **set_options):
    """A ReplicaSet + ClusterClient over real files under ``tmp_path``.

    Returns ``(replica_set, client, primary_fault_disk, standby_disks)``.
    ``standby_faults`` maps standby ordinals to ``fail_next`` counts for
    transient apply faults.  ``transport="socket"`` swaps every
    LocalDirShipper for a SocketShipper behind a ChaosProxy (healthy
    unless ``proxy_config`` says otherwise); the proxy is exposed as
    ``replica_set.test_proxy`` for partition control, and all network
    resources are stopped by ``replica_set.close()``.
    """
    path = str(tmp_path / "primary.db")
    archive_dir = str(tmp_path / "primary.archive")
    disk = FaultInjectingDisk(
        FileDisk(path, PAGE_SIZE, durability="archive",
                 archive_dir=archive_dir))
    db = XmlDatabase.create(disk=disk, page_size=PAGE_SIZE,
                            buffer_pages=BUFFER_PAGES)
    db.add_document(XML, name="seed")
    db.flush()
    backup = str(tmp_path / "backup")
    db.hot_backup(backup)
    if kill_after is not None:
        # Arm the kill relative to the workload, not cluster setup.
        disk.kill_after = disk.op_counts["physical-write"] + kill_after
        disk.torn_bytes = torn_bytes
    net_resources = []
    proxy = None
    if transport == "socket":
        from repro.net import ChaosProxy, SegmentServer, SocketShipper

        server = SegmentServer(archive_dir, PAGE_SIZE).start()
        proxy = ChaosProxy(server.address, config=proxy_config,
                           seed=SEED).start()
        net_resources += [proxy, server]

        def new_shipper(address):
            return SocketShipper(
                address, page_size=PAGE_SIZE, connect_timeout=0.25,
                read_timeout=0.5, max_retries=1, backoff_seconds=0.001,
                max_backoff_seconds=0.005, rng=random.Random(SEED))

        def make_shipper():
            return new_shipper(proxy.address)

        def rebuild_factory(new_db, page_size):
            # Post-failover rebuilds serve the *new* primary's archive
            # over a fresh (healthy, direct) socket.
            srv = SegmentServer(new_db.archive.directory,
                                page_size).start()
            net_resources.append(srv)
            return new_shipper(srv.address)

        set_options.setdefault("shipper_factory", rebuild_factory)
    else:
        def make_shipper():
            return LocalDirShipper(archive_dir, PAGE_SIZE)

    replicas, standby_disks = [], []
    faults = dict(standby_faults)
    for index in range(standbys):
        wrappers = []

        def factory(p, ps, _w=wrappers):
            d = FaultInjectingDisk(FileDisk(p, ps, durability="none"))
            _w.append(d)
            return d

        replica = StandbyReplica.from_backup(
            backup, str(tmp_path / ("standby-%d.db" % index)),
            make_shipper(), page_size=PAGE_SIZE,
            buffer_pages=BUFFER_PAGES, backoff_seconds=0.001,
            max_backoff_seconds=0.01, disk_factory=factory)
        if index in faults:
            wrappers[0].fail_next(faults[index], "physical-write")
        replicas.append(replica)
        standby_disks.append(wrappers[0])
    scratch = str(tmp_path / "scratch")
    os.makedirs(scratch, exist_ok=True)
    set_options.setdefault("down_after", 2)
    set_options.setdefault("cooldown_seconds", 0.02)
    replica_set = ReplicaSet(db, replicas, scratch_dir=scratch,
                             **set_options)
    replica_set.test_proxy = proxy
    if net_resources:
        original_close = replica_set.close

        def close_with_net():
            original_close()
            for resource in net_resources:
                resource.stop()

        replica_set.close = close_with_net
    return replica_set, ClusterClient(replica_set), disk, standby_disks


class TestBackendHealth:
    def test_failure_ladder_heal_and_breaker(self):
        clock = VirtualClock()
        health = BackendHealth("b", suspect_after=1, down_after=3,
                               cooldown_seconds=1.0, clock=clock)
        assert health.state == HEALTHY and health.allows_traffic
        health.record_failure("blip")
        assert health.state == SUSPECT and health.allows_traffic
        health.record_failure("blip")
        assert health.state == SUSPECT
        health.record_failure("blip")
        assert health.state == DOWN and not health.allows_traffic
        assert not health.allows_probe          # breaker open
        clock.advance(1.0)
        assert health.allows_probe              # half-open
        health.record_failure("still bad")
        assert not health.allows_probe          # re-opened
        clock.advance(1.0)
        health.record_success(lag_segments=0)
        assert health.state == HEALTHY and health.allows_traffic
        assert [t["to"] for t in health.transitions] == [
            SUSPECT, DOWN, HEALTHY]

    def test_fatal_failure_skips_the_ladder(self):
        clock = VirtualClock()
        health = BackendHealth("b", down_after=5, cooldown_seconds=0.5,
                               clock=clock)
        health.record_failure("disk died", fatal=True)
        assert health.state == DOWN
        assert not health.allows_probe

    def test_success_resets_consecutive_failures(self):
        health = BackendHealth("b", suspect_after=2, down_after=3,
                               clock=VirtualClock())
        health.record_failure("x")
        health.record_success()
        health.record_failure("x")
        assert health.state == HEALTHY          # never reached suspect_after
        assert health.consecutive_failures == 1

    def test_network_failures_walk_a_longer_ladder(self):
        """A run of network-kind failures needs ``network_down_after``
        (not ``down_after``) to take the backend down: flap != death."""
        health = BackendHealth("b", suspect_after=1, down_after=2,
                               network_down_after=5,
                               clock=VirtualClock())
        for _ in range(4):
            health.record_failure("connect refused", kind="network")
        assert health.state == SUSPECT          # would be DOWN if plain
        assert health.network_failures == 4
        health.record_failure("connect refused", kind="network")
        assert health.state == DOWN             # a real outage still lands
        health.record_success()
        assert health.state == HEALTHY

    def test_non_network_failure_snaps_back_to_the_plain_threshold(self):
        health = BackendHealth("b", suspect_after=1, down_after=2,
                               network_down_after=6,
                               clock=VirtualClock())
        health.record_failure("read timed out", kind="network")
        assert health.state == SUSPECT
        health.record_failure("disk error")     # not the network's fault
        assert health.state == DOWN             # plain down_after=2 applies

    def test_network_failures_are_never_fatal(self):
        health = BackendHealth("b", suspect_after=1, down_after=2,
                               network_down_after=6,
                               clock=VirtualClock())
        health.record_failure("partition", fatal=True, kind="network")
        assert health.state == SUSPECT          # fatal was overridden


class TestReadRouting:
    def test_reads_carry_backend_and_staleness(self, tmp_path):
        rs, client, _disk, _sd = make_cluster(tmp_path, standbys=1)
        try:
            client.add_document(XML, name="b")
            rs.tick()
            result = client.query("//member/name")
            assert result.backend_id in ("node-0", "node-1")
            assert result.staleness <= rs.staleness_bound
            assert result.sequence >= 1
            assert len(result.rows.matches) == 2
        finally:
            client.close()
            rs.close()

    def test_stalled_standby_is_excluded_by_staleness_bound(self, tmp_path):
        rs, client, _disk, _sd = make_cluster(tmp_path, standbys=1,
                                              staleness_bound=1)
        try:
            # Two acked commits with no ticks: the standby is 2 behind —
            # outside the bound — while still answering probes.
            client.add_document(XML, name="b")
            client.add_document(XML, name="c")
            candidates = rs.read_candidates()
            assert [n.id for n in candidates] == ["node-0"]
            result = client.query("//member/name")
            assert result.backend_id == "node-0"   # primary, never stale
            rs.tick()                              # standby catches up
            assert {n.id for n in rs.read_candidates()} == {
                "node-0", "node-1"}
        finally:
            client.close()
            rs.close()

    def test_read_fails_over_on_transient_backend_error(self, tmp_path):
        rs, client, _disk, _sd = make_cluster(tmp_path, standbys=1)
        try:
            rs.tick()
            standby = rs.view.standbys[0]
            original = standby.replica.query

            def flaky(path, **options):
                raise TransientIOError("injected read fault")

            standby.replica.query = flaky
            try:
                for _ in range(4):
                    result = client.query("//member/name")
                    assert result.backend_id == "node-0"
            finally:
                standby.replica.query = original
            snap = rs.observability.metrics.snapshot()
            assert snap["repro_cluster_read_failovers_total"] >= 1
            assert rs.health_of("node-1").state in (SUSPECT, DOWN)
            # A caller-fault error propagates without failover.
            with pytest.raises(Exception) as info:
                client.query("//no-such[")
            assert not isinstance(info.value, ClusterError)
        finally:
            client.close()
            rs.close()

    def test_hedged_read_races_a_second_backend(self, tmp_path):
        rs, client, _disk, _sd = make_cluster(tmp_path, standbys=1)
        client.hedge_after = 0.02
        try:
            rs.tick()
            standby = rs.view.standbys[0]
            original = standby.replica.query

            def slow(path, **options):
                time.sleep(0.25)
                return original(path, **options)

            standby.replica.query = slow
            try:
                for _ in range(6):
                    result = client.query("//member/name", deadline=2.0)
                    assert len(result.rows.matches) >= 1
            finally:
                standby.replica.query = original
            snap = rs.observability.metrics.snapshot()
            assert snap["repro_cluster_hedged_reads_total"] >= 1
            assert snap["repro_cluster_hedge_wins_total"] >= 1
        finally:
            client.close()
            rs.close()


class TestFailover:
    def test_monitor_detects_death_and_promotes(self, tmp_path):
        rs, client, disk, _sd = make_cluster(tmp_path, standbys=2)
        try:
            client.add_document(XML, name="b")
            rs.tick()
            acked = rs.acked_sequence
            disk.crash_now()
            for _ in range(6):
                rs.tick()
            assert rs.epoch == 2
            status = rs.status()
            assert status["primary"] in ("node-1", "node-2")
            assert rs.last_failover["rebuilt"] == 1
            assert rs.acked_sequence >= acked
            epoch, node = rs.primary_for_write()
            names = [n for _i, n in node.database.documents()]
            assert names == ["seed", "b"]          # zero acked loss
            ack = client.add_document(XML, name="c")
            assert ack.epoch == 2 and ack.sequence == acked + 1
            snap = rs.observability.metrics.snapshot()
            assert snap["repro_cluster_failovers_total"] == 1
            assert snap["repro_cluster_fencings_total"] == 1
            assert snap["repro_cluster_epoch"] == 2
            assert snap["repro_cluster_failover_seconds"]["count"] == 1
        finally:
            client.close()
            rs.close()

    def test_writer_reported_death_is_detected_immediately(self, tmp_path):
        rs, client, disk, _sd = make_cluster(tmp_path, standbys=1,
                                             down_after=3)
        try:
            client.add_document(XML, name="b")
            rs.tick()
            disk.crash_now()
            with pytest.raises(ClusterWriteError, match="indeterminate"):
                client.add_document(XML, name="lost?")
            # The fatal write failure went straight to down — one tick
            # fails over without waiting out the failure ladder.
            assert rs.health_of("node-0").state == DOWN
            rs.tick()
            assert rs.epoch == 2
            assert client.wait_for_primary(timeout=1.0) == 2
        finally:
            client.close()
            rs.close()

    def test_no_promotable_standby_leaves_headless_set(self, tmp_path):
        rs, client, disk, _sd = make_cluster(tmp_path, standbys=0)
        try:
            disk.crash_now()
            for _ in range(4):
                rs.tick()
            assert rs.view.primary is None
            with pytest.raises(NoPrimaryError):
                rs.primary_for_write()
            with pytest.raises(NoBackendAvailable):
                client.query("//member/name", deadline=0.2)
        finally:
            client.close()
            rs.close()

    def test_promotion_survives_standby_transient_faults(self, tmp_path):
        rs, client, _disk, standby_disks = make_cluster(
            tmp_path, standbys=2, standby_faults={0: 2, 1: 1})
        try:
            client.add_document(XML, name="b")
            for _ in range(3):
                rs.tick()                       # retries absorb the faults
            for node in rs.view.standbys:
                assert node.applied_sequence == rs.acked_sequence
            retries = sum(
                node.replica.stats.retries_by_cause.get("apply", 0)
                for node in rs.view.standbys)
            assert retries >= 3
        finally:
            client.close()
            rs.close()


class TestSocketTransportDropIn:
    """The PR 7 failover guarantees, re-run with LocalDirShipper swapped
    for SocketShipper behind a healthy ChaosProxy: the transport is a
    true drop-in and the guarantees are transport-independent."""

    def test_reads_route_over_sockets(self, tmp_path):
        rs, client, _disk, _sd = make_cluster(tmp_path, standbys=1,
                                              transport="socket")
        try:
            client.add_document(XML, name="b")
            rs.tick()
            result = client.query("//member/name")
            assert result.staleness <= rs.staleness_bound
            assert len(result.rows.matches) == 2
            # Segments really crossed the wire.
            standby = rs.view.standbys[0]
            assert standby.replica.shipper.stats.responses > 0
        finally:
            client.close()
            rs.close()

    def test_monitor_detects_death_and_promotes_over_sockets(self,
                                                             tmp_path):
        """Byte-for-byte the PR 7 guarantee — zero acked loss through a
        primary kill — with every segment shipped over TCP.  The segment
        server outlives the primary process (immutable files), which is
        what lets the standby finish catching up after the crash."""
        rs, client, disk, _sd = make_cluster(tmp_path, standbys=2,
                                             transport="socket")
        try:
            client.add_document(XML, name="b")
            rs.tick()
            acked = rs.acked_sequence
            disk.crash_now()
            for _ in range(6):
                rs.tick()
            assert rs.epoch == 2
            assert rs.last_failover["rebuilt"] == 1
            epoch, node = rs.primary_for_write()
            names = [n for _i, n in node.database.documents()]
            assert names == ["seed", "b"]          # zero acked loss
            ack = client.add_document(XML, name="c")
            assert ack.epoch == 2 and ack.sequence == acked + 1
            # The rebuilt survivor tails the new primary over its own
            # socket and converges.
            for _ in range(4):
                rs.tick()
            for standby in rs.view.standbys:
                assert standby.applied_sequence == rs.acked_sequence
        finally:
            client.close()
            rs.close()


class TestNetworkFlap:
    """Partition blips are absorbed; only a sustained outage fails over."""

    def test_short_partition_blip_causes_no_spurious_failover(self,
                                                              tmp_path):
        """Regression: a partition shorter than ``network_down_after``
        ticks leaves the epoch unchanged, keeps the primary primary, and
        routes reads to the surviving (reachable) backends throughout."""
        rs, client, _disk, _sd = make_cluster(
            tmp_path, standbys=1, transport="socket",
            down_after=2, network_down_after=6)
        proxy = rs.test_proxy
        try:
            client.add_document(XML, name="b")
            rs.tick()
            standby_id = rs.view.standbys[0].id
            proxy.partition(mode="refuse")
            for _ in range(3):      # < network_down_after ticks
                rs.tick()
            health = rs.health_of(standby_id)
            assert health.state == SUSPECT      # noticed, not condemned
            assert health.network_failures >= 1
            assert rs.epoch == 1                # no spurious failover
            # Reads keep flowing within their staleness bound: the blip
            # cut the replication link, not the serving path — a suspect
            # standby may still serve (it is behind healthy peers in the
            # ranking) and the primary always can.
            result = client.query("//member/name", deadline=2.0)
            assert result.backend_id in ("node-0", "node-1")
            assert result.staleness <= rs.staleness_bound
            proxy.heal()
            for _ in range(3):
                rs.tick()
            assert rs.health_of(standby_id).state == HEALTHY
            assert rs.epoch == 1
            snap = rs.observability.metrics.snapshot()
            assert snap["repro_cluster_network_flaps_total"] >= 1
            assert snap["repro_cluster_failovers_total"] == 0
        finally:
            client.close()
            rs.close()

    def test_sustained_partition_takes_the_standby_down(self, tmp_path):
        rs, client, _disk, _sd = make_cluster(
            tmp_path, standbys=1, transport="socket",
            down_after=2, network_down_after=4,
            cooldown_seconds=30.0)   # keep the breaker shut once down
        proxy = rs.test_proxy
        try:
            client.add_document(XML, name="b")
            rs.tick()
            standby_id = rs.view.standbys[0].id
            proxy.partition(mode="refuse")
            for _ in range(5):      # > network_down_after
                rs.tick()
            assert rs.health_of(standby_id).state == DOWN
            assert rs.epoch == 1    # a dead *standby* never fails over
            result = client.query("//member/name", deadline=2.0)
            assert result.backend_id == "node-0"
        finally:
            client.close()
            rs.close()


def run_schedule(tmp_path, rng, schedule_id):
    """One seeded fault schedule; returns observations for the sweep.

    Kills the primary at a seeded physical-write ordinal (sometimes
    tearing the final write), with one standby absorbing seeded transient
    apply faults, while an acknowledged write workload and interleaved
    bounded-staleness reads run through the client.
    """
    base = tmp_path / ("schedule-%d" % schedule_id)
    base.mkdir()
    kill_after = rng.randrange(4, 80)
    torn = rng.choice([None, 1, 7, rng.randrange(1, PAGE_SIZE)])
    rs, client, disk, _sd = make_cluster(
        base, standbys=2, kill_after=kill_after, torn_bytes=torn,
        standby_faults={rng.randrange(2): rng.randrange(1, 3)})
    acked = ["seed"]
    staleness_violations = []
    failed_over = False
    try:
        for index in range(10):
            name = "doc-%d" % index
            try:
                client.add_document(XML, name=name)
            except (ClusterWriteError, NoPrimaryError):
                break
            acked.append(name)      # only after the ack came back
            rs.tick()
            try:
                result = client.query("//member/name", deadline=2.0)
                if result.staleness > rs.staleness_bound:
                    staleness_violations.append(
                        (schedule_id, result.backend_id, result.staleness))
            except (ClusterReadError, NoBackendAvailable):
                pass                # failing is allowed; lying is not
        # Recovery: bounded ticks until a writable primary exists.
        for _ in range(50):
            rs.tick()
            try:
                epoch, node = rs.primary_for_write()
                break
            except NoPrimaryError:
                continue
        epoch, node = rs.primary_for_write()
        failed_over = epoch > 1
        names = [n for _i, n in node.database.documents()]
        lost = [name for name in acked if name not in names]
        # The post-recovery cluster must also take writes again.
        client.add_document(XML, name="post-recovery")
        assert "post-recovery" in [
            n for _i, n in node.database.documents()]
        return {
            "schedule": schedule_id,
            "kill_after": kill_after,
            "torn": torn,
            "acked": len(acked),
            "lost": lost,
            "failed_over": failed_over,
            "staleness_violations": staleness_violations,
        }
    finally:
        client.close()
        rs.close()


class TestFaultSchedules:
    def test_seeded_schedules_lose_nothing_acked(self, tmp_path):
        rng = random.Random(SEED)
        results = [run_schedule(tmp_path, rng, i) for i in range(SCHEDULES)]
        lost = [r for r in results if r["lost"]]
        assert not lost, "acked commits lost: %r" % lost
        violations = [v for r in results
                      for v in r["staleness_violations"]]
        assert not violations, \
            "reads beyond staleness bound: %r" % violations
        # The sweep must actually exercise failover, not just happy paths.
        assert any(r["failed_over"] for r in results), \
            "no schedule killed the primary; widen kill_after range"

    def test_client_storm_through_a_failover(self, tmp_path):
        """Readers and a writer hammer the cluster while the primary dies
        under them; the monitor heals the set in the background."""
        rs, client, disk, _sd = make_cluster(tmp_path, standbys=2,
                                             staleness_bound=2)
        rs.start(interval=0.01)
        stop = threading.Event()
        errors = []
        violations = []
        reads = [0]
        acked = ["seed"]

        def reader():
            while not stop.is_set():
                try:
                    result = client.query("//member/name", deadline=1.0)
                    reads[0] += 1
                    if result.staleness > 2:
                        violations.append(result.staleness)
                except (ClusterError, TimeoutError):
                    pass
                except BaseException as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for index in range(5):
                client.add_document(XML, name="pre-%d" % index)
                acked.append("pre-%d" % index)
                time.sleep(0.01)
            disk.crash_now()
            try:
                client.add_document(XML, name="mid-kill")
                acked.append("mid-kill")
            except (ClusterWriteError, NoPrimaryError):
                pass
            # wait_for_primary alone is not enough here: until the
            # monitor notices the death, the old primary still answers
            # primary_for_write.  Wait for the epoch bump.
            give_up = time.monotonic() + 5.0
            while rs.epoch < 2 and time.monotonic() < give_up:
                time.sleep(0.01)
            assert rs.epoch >= 2
            assert client.wait_for_primary(timeout=5.0) >= 2
            for index in range(3):
                client.add_document(XML, name="post-%d" % index)
                acked.append("post-%d" % index)
                time.sleep(0.01)
            time.sleep(0.1)
        finally:
            stop.set()
            for thread in threads:
                thread.join(5.0)
            rs.stop_monitor()
        assert not errors, errors
        assert not violations, violations
        assert reads[0] > 0
        _epoch, node = rs.primary_for_write()
        names = [n for _i, n in node.database.documents()]
        assert [name for name in acked if name not in names] == []
        client.close()
        rs.close()
