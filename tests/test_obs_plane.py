"""The cluster observability plane, end to end.

Four subsystems under one roof: the metric-hygiene lint (every metric a
fully-wired cluster exports is well-named, documented, parseable, and
owned by at most one collector), trace schema v2 + cross-node trace
joining (a failover's fence/elect/promote/rebuild spans from different
nodes share one trace id through the flight bundle), the per-node HTTP
ops endpoints plus the aggregator that merges their expositions, and
the failover flight recorder whose bundles the postmortem tool renders.
"""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.database import XmlDatabase
from repro.obs import Observability
from repro.obs.aggregate import aggregate_expositions, scrape
from repro.obs.metrics import MetricsError, parse_exposition
from repro.obs.postmortem import load_bundle, merge_timeline, render
from repro.obs.trace import (
    Tracer,
    current_trace_id,
    new_trace_id,
    trace_context,
)
from repro.obs.validate import validate_jsonl

from tests.test_cluster_failover import make_cluster

METRIC_NAME = re.compile(r"^repro_[a-z0-9_]+$")

XML = "<dept><employee><name>ada</name></employee></dept>"


def _small_cluster(tmp_path, **set_options):
    """A 2-standby ReplicaSet over local-dir shipping (no sockets)."""
    return make_cluster(tmp_path, standbys=2, **set_options)


def _http_get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8")


# -- metric hygiene ------------------------------------------------------------


class TestMetricHygiene:
    def _lint(self, registry):
        registry.collect()
        for name in registry.names():
            instrument = registry.get(name)
            assert METRIC_NAME.match(name), (
                "metric %r violates the repro_[a-z0-9_]+ convention"
                % name)
            assert instrument.help, "metric %r has empty help" % name
        parsed = parse_exposition(registry.render_prometheus())
        assert parsed["samples"], "empty exposition"
        # Ownership must point at collectors that exist, one per metric
        # (dict shape already enforces one owner; just sanity-check it).
        for metric, owner in registry.collector_owners().items():
            assert isinstance(owner, str) and owner

    def test_fully_wired_cluster_registries_pass_the_lint(self, tmp_path):
        replica_set, client, _disk, _standby_disks = _small_cluster(
            tmp_path)
        try:
            client.write(lambda db: db.add_document(XML))
            client.query("//employee")
            for hub in replica_set._hubs.values():
                self._lint(hub.metrics)
        finally:
            replica_set.close()

    def test_second_collector_cannot_steal_a_mirrored_metric(self,
                                                             tmp_path):
        db = XmlDatabase.create(str(tmp_path / "solo.db"), page_size=512,
                                buffer_pages=16)
        try:
            registry = db.observability.metrics
            with pytest.raises(MetricsError):
                registry.claim("repro_buffer_hits", "imposter")
        finally:
            db.close()


# -- trace schema v2 + propagation ---------------------------------------------


class TestTraceV2:
    def test_v2_export_carries_trace_node_and_attempt(self):
        tracer = Tracer(capacity=64)
        tracer.node_id = "node-x"
        with trace_context("cafe0123cafe0123", attempt=2):
            with tracer.span("outer"):
                tracer.event("tick")
        text = tracer.export_jsonl()
        problems = validate_jsonl(text)
        assert not problems, problems
        records = [json.loads(line) for line in text.splitlines()]
        meta = records[0]
        assert meta["v"] == 2
        assert meta["node"] == "node-x"
        assert meta["wall_epoch"] > 0
        spans = [r for r in records[1:]
                 if r.get("phase") in ("begin", "end")]
        assert spans and all(r["trace"] == "cafe0123cafe0123"
                             for r in spans)
        assert all(r["attempt"] == 2 for r in spans)
        assert all(r["node"] == "node-x" for r in spans)

    def test_remote_link_round_trips_through_the_validator(self):
        tracer = Tracer(capacity=32)
        tracer.node_id = "follower"
        link = {"trace": "beef", "span": 7, "node": "leader"}
        with trace_context("beef", link=link):
            with tracer.span("apply"):
                pass
        problems = validate_jsonl(tracer.export_jsonl())
        assert not problems, problems
        records = [json.loads(line)
                   for line in tracer.export_jsonl().splitlines()]
        linked = [r for r in records if r.get("link")]
        assert linked and linked[0]["link"]["node"] == "leader"

    def test_validator_rejects_bad_v2_fields(self):
        tracer = Tracer(capacity=16)
        with trace_context("feed"):
            with tracer.span("op"):
                pass
        lines = tracer.export_jsonl().splitlines()
        broken = json.loads(lines[1])
        broken["attempt"] = 0  # must be >= 1
        bad = "\n".join([lines[0], json.dumps(broken)] + lines[2:])
        problems = validate_jsonl(bad)
        assert problems
        assert any("attempt" in problem for problem in problems)

    def test_client_trace_joins_the_server_span(self, tmp_path):
        from repro.server import Server

        db = XmlDatabase.create(str(tmp_path / "served.db"),
                                page_size=512, buffer_pages=16)
        db.add_document(XML)
        db.flush()
        tracer = db.observability.tracer
        tracer.enable()
        try:
            with Server(db, workers=2) as server:
                trace_id = new_trace_id()
                with trace_context(trace_id):
                    server.query("//employee")
            records = [json.loads(line) for line in
                       tracer.export_jsonl().splitlines()[1:]]
            joined = [r for r in records
                      if r.get("trace") == trace_id
                      and r.get("kind") == "server-request"]
            assert joined, "server-request span did not join the trace"
        finally:
            db.close()

    def test_concurrent_emitters_export_validates(self):
        tracer = Tracer(capacity=256)
        tracer.node_id = "stress"
        barrier = threading.Barrier(8)

        def emitter(index):
            barrier.wait()
            with trace_context(new_trace_id()):
                for op in range(500):
                    if op % 5 == 0:
                        with tracer.span("work", thread=index):
                            pass
                    else:
                        tracer.event("tick", thread=index, op=op)

        threads = [threading.Thread(target=emitter, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        problems = validate_jsonl(tracer.export_jsonl())
        assert not problems, problems

    def test_trace_context_is_scoped_to_the_thread(self):
        assert current_trace_id() is None
        with trace_context("abc"):
            assert current_trace_id() == "abc"
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(current_trace_id()))
            thread.start()
            thread.join()
            assert seen == [None]  # no cross-thread leakage
        assert current_trace_id() is None


# -- ops endpoints + aggregation -----------------------------------------------


class TestOpsEndpoints:
    def test_database_ops_surface(self, tmp_path):
        db = XmlDatabase.create(str(tmp_path / "ops.db"), page_size=512,
                                buffer_pages=16)
        db.add_document(XML)
        db.flush()
        ops = db.serve_ops()
        try:
            status, text = _http_get(ops.url + "/metrics")
            assert status == 200
            assert parse_exposition(text)["samples"]
            status, text = _http_get(ops.url + "/healthz")
            assert status == 200
            health = json.loads(text)
            assert health["ok"] is True
            status, text = _http_get(ops.url + "/varz")
            assert status == 200
            varz = json.loads(text)
            assert "queries" in varz and "buffer" in varz
            assert "p99_seconds" in varz["queries"]
        finally:
            ops.stop()
            db.close()

    def test_unknown_route_is_404(self, tmp_path):
        db = XmlDatabase.create(str(tmp_path / "ops404.db"),
                                page_size=512, buffer_pages=16)
        ops = db.serve_ops()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _http_get(ops.url + "/nope")
            assert excinfo.value.code == 404
        finally:
            ops.stop()
            db.close()

    def test_replicaset_ops_and_aggregate_merge(self, tmp_path):
        replica_set, client, _disk, _standby_disks = _small_cluster(
            tmp_path)
        ops = replica_set.serve_ops()
        try:
            client.write(lambda db: db.add_document(XML))
            status, text = _http_get(ops.url + "/healthz")
            assert status == 200
            assert json.loads(text)["ok"] is True
            merged = aggregate_expositions([
                ("node-a", scrape(ops.url + "/metrics")),
                ("node-b", scrape(ops.url + "/metrics")),
            ])
            parsed = parse_exposition(merged)
            nodes = {labels.get("node")
                     for _name, labels, _value in parsed["samples"]}
            assert nodes == {"node-a", "node-b"}
            # HELP/TYPE appear once per family despite two sources.
            help_lines = [line for line in merged.splitlines()
                          if line.startswith("# HELP repro_queries_total ")]
            assert len(help_lines) == 1
        finally:
            ops.stop()
            replica_set.close()


class TestSocketTraceJoin:
    def test_shipper_context_joins_the_segment_server_trace(self,
                                                            tmp_path):
        from repro.net import SegmentServer, SocketShipper
        from repro.storage.journal import Archive

        archive_dir = str(tmp_path / "archive")
        archive = Archive(archive_dir, 512)
        archive.append(1, {1: b"x" * 512})

        server_hub = Observability(node_id="server-node")
        server_hub.tracer.enable()
        shipper_hub = Observability(node_id="client-node")
        shipper_hub.tracer.enable()
        server = SegmentServer(archive_dir, 512,
                               observability=server_hub).start()
        shipper = SocketShipper(server.address, page_size=512,
                                observability=shipper_hub)
        trace_id = new_trace_id()
        try:
            with trace_context(trace_id), \
                    shipper_hub.tracer.span("standby.catch-up"):
                assert shipper.latest_sequence() == 1
                assert shipper.fetch(1) is not None
        finally:
            shipper.close()
            server.stop()
        records = [json.loads(line) for line in
                   server_hub.tracer.export_jsonl().splitlines()[1:]]
        joined = [r for r in records if r.get("trace") == trace_id]
        assert joined, "server records did not join the shipper's trace"
        links = [r["link"] for r in joined if r.get("link")]
        assert links and links[0]["node"] == "client-node"
        assert all(r.get("node") == "server-node" for r in joined)


# -- flight recorder + postmortem ----------------------------------------------


class TestFlightRecorder:
    def test_failover_dumps_a_joined_cross_node_bundle(self, tmp_path):
        flight_dir = str(tmp_path / "flight")
        replica_set, client, disk, _standby_disks = _small_cluster(
            tmp_path, flight_dir=flight_dir)
        try:
            client.write(lambda db: db.add_document(XML))
            disk.crash_now()
            replica_set.failover("test: primary killed")
            last = replica_set.last_failover
            assert last is not None
            trace_id = last["trace_id"]
            bundle_dir = last.get("bundle") or self._latest_bundle(
                flight_dir)
            bundle = load_bundle(bundle_dir)
            assert bundle["manifest"]["reason"].startswith("failover:")
            assert bundle["manifest"]["trace_id"] == trace_id
            timeline = merge_timeline(bundle)
            in_trace = [r for r in timeline
                        if r.get("trace") == trace_id]
            names = {r.get("kind") for r in in_trace
                     if r.get("phase") in ("begin", "end")}
            for phase in ("cluster.fence", "cluster.elect",
                          "cluster.promote", "cluster.rebuild"):
                assert phase in names, (
                    "missing %s in %r" % (phase, sorted(names)))
            nodes = {r.get("node") for r in in_trace} - {None}
            assert len(nodes) >= 2, (
                "trace %s only seen on %r" % (trace_id, nodes))
            # Per-node trace files validate under the relaxed (live)
            # pairing rules.
            for node in bundle["nodes"].values():
                text = "\n".join(
                    json.dumps(record)
                    for record in [node["meta"]] + node["records"])
                problems = validate_jsonl(text)
                assert not problems, problems
            text = render(bundle, trace_id=trace_id)
            assert "cluster.promote" in text
        finally:
            replica_set.close()

    @staticmethod
    def _latest_bundle(flight_dir):
        import os
        bundles = sorted(entry for entry in os.listdir(flight_dir)
                         if entry.startswith("bundle-"))
        assert bundles, "no flight bundle written"
        return str(flight_dir) + "/" + bundles[-1]

    def test_postmortem_cli_renders_a_bundle(self, tmp_path, capsys):
        from repro.obs import postmortem

        flight_dir = str(tmp_path / "flight")
        replica_set, client, disk, _standby_disks = _small_cluster(
            tmp_path, flight_dir=flight_dir)
        try:
            client.write(lambda db: db.add_document(XML))
            disk.crash_now()
            replica_set.failover("test: cli render")
        finally:
            replica_set.close()
        bundle_dir = self._latest_bundle(flight_dir)
        assert postmortem.main([bundle_dir]) == 0
        out = capsys.readouterr().out
        assert "cluster.failover" in out

    def test_fatal_backend_error_also_dumps(self, tmp_path):
        flight_dir = str(tmp_path / "flight")
        replica_set, _client, _disk, _standby_disks = _small_cluster(
            tmp_path, flight_dir=flight_dir)
        try:
            replica_set.report_backend_failure(
                "node-1", RuntimeError("disk on fire"), fatal=True)
            bundle_dir = self._latest_bundle(flight_dir)
            manifest = load_bundle(bundle_dir)["manifest"]
            assert "fatal backend error" in manifest["reason"]
        finally:
            replica_set.close()
