"""Behavioural tests for the four structural-join algorithms."""

import pytest

from repro.core.api import (
    StorageContext,
    build_bplus_tree,
    build_element_list,
    build_xr_tree,
)
from repro.joins import (
    bplus_join,
    mpmgjn_join,
    nested_loop_join,
    stack_tree_join,
    xr_stack_join,
)
from repro.joins.base import JoinStats, contains, sort_pairs
from tests.conftest import entry


def run(algorithm, ancestors, descendants, parent_child=False, collect=True):
    """Build the inputs the algorithm needs and run it."""
    context = StorageContext(page_size=512, buffer_pages=64)
    pool = context.pool
    if algorithm in (stack_tree_join, mpmgjn_join):
        a_input = build_element_list(ancestors, pool)
        d_input = build_element_list(descendants, pool)
    elif algorithm is bplus_join:
        a_input = build_bplus_tree(ancestors, pool)
        d_input = build_bplus_tree(descendants, pool)
    else:
        a_input = build_xr_tree(ancestors, pool)
        d_input = build_xr_tree(descendants, pool)
    return algorithm(a_input, d_input, parent_child=parent_child,
                     collect=collect)


ALL_JOINS = [stack_tree_join, mpmgjn_join, bplus_join, xr_stack_join]


def nested(spec):
    return [entry(s, e, level) for s, e, level in spec]


#: A hand-written scenario with all interesting shapes: nesting chains,
#: disjoint regions, unmatched ancestors and unmatched descendants.
ANCESTORS = nested([
    (1, 40, 1), (2, 20, 2), (3, 10, 3), (25, 39, 2),
    (50, 60, 1), (70, 95, 1), (72, 90, 2),
])
DESCENDANTS = nested([
    (4, 5, 4), (6, 7, 4), (12, 15, 3), (30, 31, 3),
    (45, 46, 1), (55, 56, 2), (75, 76, 3), (99, 100, 1),
])


class TestAgainstOracle:
    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_hand_written_scenario(self, algorithm):
        pairs, _ = run(algorithm, ANCESTORS, DESCENDANTS)
        assert sort_pairs(pairs) == nested_loop_join(ANCESTORS, DESCENDANTS)

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_parent_child_variant(self, algorithm):
        pairs, _ = run(algorithm, ANCESTORS, DESCENDANTS, parent_child=True)
        assert sort_pairs(pairs) == nested_loop_join(
            ANCESTORS, DESCENDANTS, parent_child=True
        )

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_department_dataset(self, algorithm, dept_data):
        pairs, _ = run(algorithm, dept_data.ancestors, dept_data.descendants)
        assert sort_pairs(pairs) == nested_loop_join(
            dept_data.ancestors, dept_data.descendants
        )

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_conference_dataset(self, algorithm, conf_data):
        pairs, _ = run(algorithm, conf_data.ancestors, conf_data.descendants)
        assert sort_pairs(pairs) == nested_loop_join(
            conf_data.ancestors, conf_data.descendants
        )

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_self_join(self, algorithm, dept_data):
        emps = dept_data.ancestors
        pairs, _ = run(algorithm, emps, emps)
        assert sort_pairs(pairs) == nested_loop_join(emps, emps)

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_reversed_roles(self, algorithm, dept_data):
        # names as "ancestors" of employees: join is empty or tiny, and the
        # algorithms must not crash or emit bogus pairs.
        pairs, _ = run(algorithm, dept_data.descendants, dept_data.ancestors)
        assert sort_pairs(pairs) == nested_loop_join(
            dept_data.descendants, dept_data.ancestors
        )


class TestEdgeCases:
    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_empty_ancestors(self, algorithm):
        pairs, stats = run(algorithm, [], DESCENDANTS)
        assert pairs == []
        assert stats.pairs == 0

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_empty_descendants(self, algorithm):
        pairs, _ = run(algorithm, ANCESTORS, [])
        assert pairs == []

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_both_empty(self, algorithm):
        pairs, _ = run(algorithm, [], [])
        assert pairs == []

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_completely_disjoint_lists(self, algorithm):
        ancestors = [entry(i * 10, i * 10 + 5) for i in range(1, 20)]
        descendants = [entry(i * 10 + 7, i * 10 + 8) for i in range(1, 20)]
        pairs, _ = run(algorithm, ancestors, descendants)
        assert pairs == []

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_ancestors_after_all_descendants(self, algorithm):
        ancestors = [entry(1000 + i, 1000 + i + 1) for i in range(0, 20, 2)]
        descendants = [entry(i, i + 1) for i in range(1, 41, 2)]
        pairs, _ = run(algorithm, ancestors, descendants)
        assert pairs == []

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_single_pair(self, algorithm):
        pairs, _ = run(algorithm, [entry(1, 10)], [entry(5, 6)])
        assert len(pairs) == 1

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_deep_chain_emits_all_pairs(self, algorithm):
        chain = [entry(i, 500 - i, i) for i in range(1, 100)]
        probe = [entry(200, 201, 100)]
        pairs, stats = run(algorithm, chain, probe)
        assert len(pairs) == 99
        assert stats.pairs == 99

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_count_only_mode(self, algorithm, dept_data):
        pairs, stats = run(algorithm, dept_data.ancestors,
                           dept_data.descendants, collect=False)
        assert pairs is None
        assert stats.pairs == len(nested_loop_join(
            dept_data.ancestors, dept_data.descendants
        ))

    @pytest.mark.parametrize("algorithm", ALL_JOINS)
    def test_cross_document_pairs_excluded(self, algorithm):
        ancestors = [entry(1, 100, doc=1), entry(200, 300, doc=2)]
        descendants = [entry(50, 60, doc=2), entry(250, 260, doc=2)]
        pairs, _ = run(algorithm, ancestors, descendants)
        # (1,100) doc 1 does not contain (50,60) doc 2.
        assert sort_pairs(pairs) == nested_loop_join(ancestors, descendants)
        assert all(a.doc_id == d.doc_id for a, d in pairs)


class TestScanAccounting:
    def test_stack_tree_scans_everything_joined(self, dept_data):
        _, stats = run(stack_tree_join, dept_data.ancestors,
                       dept_data.descendants, collect=False)
        total = len(dept_data.ancestors) + len(dept_data.descendants)
        # All ancestors are consumed; descendants after the last ancestor
        # may remain unscanned, so the count is near but never above total.
        assert total * 0.8 <= stats.elements_scanned <= total

    def test_mpmgjn_rescans_more_than_stack_tree(self, dept_data):
        _, mpm = run(mpmgjn_join, dept_data.ancestors,
                     dept_data.descendants, collect=False)
        _, stk = run(stack_tree_join, dept_data.ancestors,
                     dept_data.descendants, collect=False)
        assert mpm.elements_scanned > stk.elements_scanned

    def test_xr_stack_never_scans_more_than_stack_tree(self, dept_data):
        _, xr = run(xr_stack_join, dept_data.ancestors,
                    dept_data.descendants, collect=False)
        _, stk = run(stack_tree_join, dept_data.ancestors,
                     dept_data.descendants, collect=False)
        assert xr.elements_scanned <= stk.elements_scanned

    def test_sparse_join_lets_xr_skip_almost_everything(self):
        # All descendants precede all ancestors except one matching pair at
        # the very end: XR leaps over both non-matching blocks with two
        # probes, while Stack-Tree grinds through them.
        descendants = [entry(2 * i + 1, 2 * i + 2) for i in range(500)]
        descendants.append(entry(99993, 99994))
        ancestors = [entry(10000 + 2 * i, 10000 + 2 * i + 1)
                     for i in range(500)]
        ancestors.append(entry(99991, 99998))
        _, xr = run(xr_stack_join, ancestors, descendants, collect=False)
        _, stk = run(stack_tree_join, ancestors, descendants, collect=False)
        assert xr.pairs == stk.pairs == 1
        assert xr.elements_scanned < stk.elements_scanned / 10

    def test_interleaved_disjoint_lists_cannot_be_skipped(self):
        # Perfectly alternating disjoint elements are the skipping worst
        # case: XR-stack degrades gracefully to a merge, never worse than
        # a small constant over the no-index scan.
        ancestors = [entry(10 * i, 10 * i + 4) for i in range(1, 300)]
        descendants = [entry(10 * i + 6, 10 * i + 7) for i in range(1, 300)]
        _, xr = run(xr_stack_join, ancestors, descendants, collect=False)
        _, stk = run(stack_tree_join, ancestors, descendants, collect=False)
        assert xr.pairs == stk.pairs == 0
        assert xr.elements_scanned <= 2 * stk.elements_scanned + 10


class TestJoinStats:
    def test_merge(self):
        a = JoinStats(elements_scanned=5, pairs=2)
        b = JoinStats(elements_scanned=3, pairs=1)
        a.merge(b)
        assert (a.elements_scanned, a.pairs) == (8, 3)

    def test_count_protocol(self):
        stats = JoinStats()
        stats.count()
        stats.count(4)
        assert stats.elements_scanned == 5

    def test_contains_predicate(self):
        assert contains(entry(1, 10), entry(2, 5))
        assert not contains(entry(2, 5), entry(1, 10))
        assert not contains(entry(1, 10, doc=1), entry(2, 5, doc=2))
