"""Smoke tests: every example script runs end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "emp//name pairs:" in out
        assert "parent-child" in out

    def test_department_workload(self, capsys):
        run_example("department_workload.py", ["1200"])
        out = capsys.readouterr().out
        assert "employee_name" in out
        assert "paper_author" in out

    def test_path_queries(self, capsys):
        run_example("path_queries.py", ["1200"])
        out = capsys.readouterr().out
        assert "identical matches" in out

    def test_dynamic_maintenance(self, capsys):
        run_example("dynamic_maintenance.py")
        out = capsys.readouterr().out
        assert "invariants hold" in out

    def test_persistent_database(self, capsys):
        run_example("persistent_database.py")
        out = capsys.readouterr().out
        assert "catalog:" in out
        assert "employees index intact" in out

    def test_twig_queries(self, capsys):
        run_example("twig_queries.py", ["2", "900"])
        out = capsys.readouterr().out
        assert "corpus: 2 documents" in out
        assert "//employee[email]" in out

    def test_query_strategies(self, capsys):
        run_example("query_strategies.py", ["1200"])
        out = capsys.readouterr().out
        assert "All strategies agree" in out
        assert "greedy join order" in out
