"""Tests for join-order planning (repro.query.planner)."""

import pytest

from repro.query import PathQueryEngine
from repro.query.planner import (
    GreedyPlanner,
    LeftToRightPlanner,
    execute_plan,
)
from repro.xmldata.parser import parse_document


@pytest.fixture(scope="module")
def document():
    from repro.workloads import department_dataset

    return department_dataset(1500, seed=71).document


class TestPlanners:
    def test_left_to_right_order(self):
        assert LeftToRightPlanner().order([5, 5, 5, 5]) == [0, 1, 2]

    def test_greedy_prefers_small_pairs(self):
        # Sizes: [1000, 5, 1000]: both edges touch the tiny middle — the
        # greedy picks them before anything else would.
        order = GreedyPlanner().order([1000, 5, 1000, 2000])
        assert set(order) == {0, 1, 2}
        assert order[0] in (0, 1)  # an edge touching the size-5 fragment

    def test_greedy_single_edge(self):
        assert GreedyPlanner().order([3, 7]) == [0]


class TestExecutePlan:
    PATHS = (
        "//department//employee//name",
        "//employee//employee/name",
        "//department/employee",
        "//department//employee//email",
        "/departments/department//name",
    )

    @pytest.mark.parametrize("path", PATHS)
    def test_matches_pipeline_engine(self, document, path):
        engine = PathQueryEngine(document)
        expected = engine.evaluate(path).starts()
        for planner in (LeftToRightPlanner(), GreedyPlanner()):
            result = execute_plan(document, path, planner)
            assert [e.start for e in result.matches] == expected, \
                (path, type(planner).__name__)

    def test_single_step_path(self, document):
        result = execute_plan(document, "//employee")
        assert len(result) > 0
        assert result.joins == []

    def test_join_log_records_shrinkage(self, document):
        result = execute_plan(document, "//department//employee//email")
        assert result.joins
        for join in result.joins:
            assert join.survivors_left <= join.left_in
            assert join.survivors_right <= join.right_in

    def test_predicates_rejected(self, document):
        with pytest.raises(ValueError):
            execute_plan(document, "//employee[email]")

    def test_empty_tag_short_circuits(self, document):
        result = execute_plan(document, "//employee//ghost//name")
        assert result.matches == []

    def test_plans_agree_on_small_document(self):
        doc = parse_document(
            "<a><b><c><d/></c></b><b><c/></b><e><c><d/></c></e></a>"
        )
        for path in ("//a//b//c", "//b//c//d", "//a//c/d"):
            fast = execute_plan(doc, path, GreedyPlanner())
            slow = execute_plan(doc, path, LeftToRightPlanner())
            assert [e.start for e in fast.matches] == \
                [e.start for e in slow.matches]
