"""Tests for cardinality estimation (repro.query.estimate)."""

import pytest

from repro.query.estimate import JoinEstimate, estimate_join, true_join_size
from repro.query.planner import EstimatingPlanner, execute_plan
from repro.query import PathQueryEngine
from tests.conftest import entry


class TestTrueJoinSize:
    def test_matches_oracle(self, dept_data):
        from repro.core.api import oracle_join

        expected = len(oracle_join(dept_data.ancestors,
                                   dept_data.descendants))
        assert true_join_size(dept_data.ancestors,
                              dept_data.descendants) == expected

    def test_parent_child(self, dept_data):
        from repro.core.api import oracle_join

        expected = len(oracle_join(dept_data.ancestors,
                                   dept_data.descendants,
                                   parent_child=True))
        assert true_join_size(dept_data.ancestors, dept_data.descendants,
                              parent_child=True) == expected


class TestEstimateJoin:
    def test_empty_inputs(self):
        assert estimate_join([], [entry(1, 2)]) == JoinEstimate(0, 0, 0)
        assert estimate_join([entry(1, 9)], []) == JoinEstimate(0, 0, 0)

    def test_full_sample_is_exact(self, dept_data):
        # With the sample covering every descendant, the pair estimate is
        # exact and the fractions are the true fractions.
        estimate = estimate_join(dept_data.ancestors, dept_data.descendants,
                                 sample_size=10 ** 9)
        assert estimate.pairs == pytest.approx(true_join_size(
            dept_data.ancestors, dept_data.descendants))

    def test_sampled_estimate_within_tolerance(self, dept_data):
        truth = true_join_size(dept_data.ancestors, dept_data.descendants)
        estimate = estimate_join(dept_data.ancestors, dept_data.descendants,
                                 sample_size=200)
        assert estimate.pairs == pytest.approx(truth, rel=0.35)
        assert 0.0 <= estimate.ancestor_fraction <= 1.0
        assert 0.0 <= estimate.descendant_fraction <= 1.0

    def test_disjoint_sets_estimate_zero(self):
        ancestors = [entry(i * 10, i * 10 + 4) for i in range(1, 50)]
        descendants = [entry(i * 10 + 6, i * 10 + 7) for i in range(1, 50)]
        estimate = estimate_join(ancestors, descendants)
        assert estimate.pairs == 0.0
        assert estimate.ancestor_fraction == 0.0

    def test_parent_child_estimate_smaller(self, dept_data):
        ad = estimate_join(dept_data.ancestors, dept_data.descendants,
                           sample_size=10 ** 9)
        pc = estimate_join(dept_data.ancestors, dept_data.descendants,
                           sample_size=10 ** 9, parent_child=True)
        assert pc.pairs <= ad.pairs

    def test_survivors_helper(self):
        estimate = JoinEstimate(pairs=10, ancestor_fraction=0.5,
                                descendant_fraction=0.25)
        assert estimate.survivors(100, 200) == (50.0, 50.0)


class TestEstimatingPlanner:
    PATHS = (
        "//department//employee//name",
        "//department//employee//email",
        "//employee//employee/name",
    )

    @pytest.mark.parametrize("path", PATHS)
    def test_results_match_engine(self, dept_data, path):
        engine = PathQueryEngine(dept_data.document)
        expected = engine.evaluate(path).starts()
        planner = EstimatingPlanner()
        result = execute_plan(dept_data.document, path, planner)
        assert [e.start for e in result.matches] == expected

    def test_estimates_recorded(self, dept_data):
        planner = EstimatingPlanner()
        execute_plan(dept_data.document,
                     "//department//employee//name", planner)
        assert len(planner.estimates) == 2
        for _edge, estimate in planner.estimates:
            assert estimate.pairs >= 0.0
