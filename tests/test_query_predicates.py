"""Tests for twig predicates in path expressions (repro.query)."""

import pytest

from repro.query import PathQueryEngine, parse_path
from repro.query.path import Axis, PathSyntaxError
from repro.xmldata.parser import parse_document

SOURCE = """
<lib>
  <shelf>
    <book><title>t1</title><chapter><title>c1</title></chapter></book>
    <book><chapter><section><title>s1</title></section></chapter></book>
    <book><title>t2</title></book>
  </shelf>
  <shelf>
    <box><book><title>t3</title><chapter/></book></box>
  </shelf>
</lib>
"""


@pytest.fixture(scope="module")
def engine():
    return PathQueryEngine(parse_document(SOURCE))


@pytest.fixture(scope="module")
def fallback():
    return PathQueryEngine(parse_document(SOURCE), strategy="stack-tree")


class TestPredicateParsing:
    def test_single_predicate(self):
        path = parse_path("//book[title]")
        step = path.steps[0]
        assert step.tag == "book"
        assert len(step.predicates) == 1
        inner = step.predicates[0].steps
        assert inner[0].tag == "title"
        assert inner[0].axis is Axis.CHILD  # XPath default inside [...]

    def test_descendant_predicate(self):
        path = parse_path("//book[//title]")
        assert path.steps[0].predicates[0].steps[0].axis is Axis.DESCENDANT

    def test_multi_step_predicate(self):
        path = parse_path("//shelf[box/book]")
        inner = path.steps[0].predicates[0].steps
        assert [s.tag for s in inner] == ["box", "book"]
        assert inner[1].axis is Axis.CHILD

    def test_multiple_predicates_on_one_step(self):
        path = parse_path("//book[title][chapter]")
        assert len(path.steps[0].predicates) == 2

    def test_nested_predicates(self):
        path = parse_path("//shelf[book[chapter]]")
        outer = path.steps[0].predicates[0]
        assert outer.steps[0].predicates[0].steps[0].tag == "chapter"

    def test_predicate_mid_path(self):
        path = parse_path("//book[chapter]/title")
        assert path.steps[0].predicates
        assert path.steps[1].tag == "title"

    def test_str_roundtrip(self):
        for text in ("//book[title]", "//shelf[box/book]/book",
                     "//book[chapter//title]", "//a[b][c]"):
            assert str(parse_path(text)) == text

    @pytest.mark.parametrize("bad", ["//a[", "//a[]", "//a]", "[b]",
                                     "//a[b", "//a[b]]"])
    def test_malformed_predicates_rejected(self, bad):
        with pytest.raises(PathSyntaxError):
            parse_path(bad)


class TestPredicateEvaluation:
    def test_child_predicate(self, engine):
        # Books with a title *child*: t1, t2, t3 books (not the s1 book).
        assert len(engine.evaluate("//book[title]")) == 3

    def test_descendant_predicate(self, engine):
        # Books with any title below them: all four.
        assert len(engine.evaluate("//book[//title]")) == 4

    def test_multi_step_predicate(self, engine):
        assert len(engine.evaluate("//book[chapter/section]")) == 1
        assert len(engine.evaluate("//shelf[box/book]")) == 1

    def test_predicate_then_step(self, engine):
        # Titles that are children of books having a chapter: t1, t3.
        assert len(engine.evaluate("//book[chapter]/title")) == 2

    def test_conjunctive_predicates(self, engine):
        # Books with both a title child and a chapter child: t1's and t3's.
        assert len(engine.evaluate("//book[title][chapter]")) == 2

    def test_nested_predicate(self, engine):
        assert len(engine.evaluate("//shelf[book[chapter[section]]]")) == 1

    def test_unsatisfiable_predicate(self, engine):
        assert len(engine.evaluate("//book[ghost]")) == 0
        assert len(engine.evaluate("//book[ghost]/title")) == 0

    def test_predicate_on_last_step(self, engine):
        # Books that are shelf *children* (excludes the boxed t3 book) with
        # a title child (excludes the s1 book): t1 and t2.
        result = engine.evaluate("//shelf/book[title]")
        assert len(result) == 2

    def test_strategies_agree(self, engine, fallback):
        for query in ("//book[title]", "//book[chapter//title]",
                      "//shelf[box/book]", "//book[chapter]/title",
                      "//book[title][chapter]",
                      "//shelf[book[chapter[section]]]"):
            assert engine.evaluate(query).starts() == \
                fallback.evaluate(query).starts()

    def test_oracle_check_on_generated_data(self):
        from repro.workloads import department_dataset

        document = department_dataset(1500, seed=33).document
        engine = PathQueryEngine(document)
        result = engine.evaluate("//employee[email]/name")
        expected = sorted(
            name.start
            for name in document.elements_by_tag("name")
            if name.parent is not None and name.parent.tag == "employee"
            and any(c.tag == "email" for c in name.parent.children)
        )
        assert result.starts() == expected

    def test_joins_run_counts_semi_joins(self, engine):
        plain = engine.evaluate("//shelf/book")
        filtered = engine.evaluate("//shelf/book[title]")
        assert filtered.joins_run > plain.joins_run
