"""Tests for bench tooling: ASCII figures, the CLI entry points."""

import pytest

from repro.bench.figures import ascii_chart
from repro.bench.harness import ExperimentConfig, run_selectivity_sweep

TINY = ExperimentConfig(target_elements=900, steps=(0.7, 0.1))


@pytest.fixture(scope="module")
def sweep():
    return run_selectivity_sweep("employee_name", "ancestors", TINY)


class TestAsciiChart:
    def test_renders_all_series(self, sweep):
        chart = ascii_chart(sweep, title="demo")
        assert chart.startswith("demo")
        assert "N=NIDX" in chart and "B=B+" in chart and "X=XR" in chart
        assert "70%" in chart and "10%" in chart

    def test_glyphs_present(self, sweep):
        chart = ascii_chart(sweep)
        body = chart.split("+")[0]
        assert any(glyph in body for glyph in ("N", "B", "X", "*"))

    def test_metric_selection(self, sweep):
        chart = ascii_chart(sweep, metric="elements_scanned")
        assert "|" in chart

    def test_dimensions_respected(self, sweep):
        chart = ascii_chart(sweep, width=30, height=8)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert len(rows) == 8
        assert all(len(row) <= 30 + 12 for row in rows)


class TestBenchCli:
    def test_main_skip_studies(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = str(tmp_path / "report.md")
        main(["--scale", "900", "--skip-studies", "--out", out])
        text = open(out).read()
        assert "# XR-tree reproduction results" in text
        assert "T2a / F8a" in text
        assert "Figure 8 analogue" in text
        assert "paper:NIDX" in text


class TestQueryCli:
    def test_generate_mode(self, capsys):
        from repro.query.__main__ import main

        assert main(["//employee//name", "--generate", "800"]) == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert "region (" in out

    def test_holistic_mode(self, capsys):
        from repro.query.__main__ import main

        assert main(["//employee//name", "--generate", "800",
                     "--holistic"]) == 0
        out = capsys.readouterr().out
        assert "path solutions" in out

    def test_file_mode(self, tmp_path, capsys):
        from repro.query.__main__ import main

        path = tmp_path / "doc.xml"
        path.write_text("<a><b><c/></b><b/></a>")
        assert main(["//a/b", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 matches" in out

    def test_requires_exactly_one_source(self, capsys):
        from repro.query.__main__ import main

        with pytest.raises(SystemExit):
            main(["//a"])
        with pytest.raises(SystemExit):
            main(["//a", "--file", "x.xml", "--generate", "10"])

    def test_explain_flag(self, capsys):
        from repro.query.__main__ import main

        assert main(["//employee[email]/name", "--generate", "600",
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "plan for" in out
        assert "semi-join filter" in out

    def test_twig_stack_flag(self, capsys):
        from repro.query.__main__ import main

        assert main(["//employee[email]/name", "--generate", "600",
                     "--twig-stack"]) == 0
        out = capsys.readouterr().out
        assert "twig matches" in out
