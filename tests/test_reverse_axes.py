"""Tests for reverse axes (parent:: / ancestor::) in path expressions."""

import pytest

from repro.query import PathQueryEngine, parse_path
from repro.query.engine import QueryError
from repro.query.path import Axis, PathSyntaxError
from repro.xmldata.parser import parse_document

SOURCE = """
<dept>
  <emp><name>w</name>
    <emp><name>x</name>
      <emp><name>y</name></emp>
    </emp>
  </emp>
  <office><name>sign</name></office>
</dept>
"""


@pytest.fixture(scope="module")
def engine():
    return PathQueryEngine(parse_document(SOURCE))


class TestParsing:
    def test_parent_axis(self):
        path = parse_path("//name/parent::emp")
        assert path.steps[1].axis is Axis.PARENT
        assert path.steps[1].tag == "emp"

    def test_ancestor_axis(self):
        path = parse_path("//name/ancestor::dept")
        assert path.steps[1].axis is Axis.ANCESTOR

    def test_explicit_forward_axes(self):
        path = parse_path("/child::a/descendant::b")
        assert path.steps[0].axis is Axis.CHILD
        assert path.steps[1].axis is Axis.DESCENDANT

    def test_str_roundtrip(self):
        for text in ("//name/parent::emp", "//name/ancestor::dept",
                     "//a/parent::b//c"):
            assert str(parse_path(text)) == text

    def test_axis_words_usable_as_tags(self):
        path = parse_path("//parent/child")
        assert path.steps[0].tag == "parent"
        assert path.steps[1].tag == "child"
        assert path.steps[1].axis is Axis.CHILD

    @pytest.mark.parametrize("bad", ["//a/parent::", "//a/sideways::b"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(PathSyntaxError):
            parse_path(bad)


class TestEvaluation:
    def test_parent_of_names(self, engine):
        # name elements whose parent is an emp: w, x, y names -> 3 emps.
        result = engine.evaluate("//name/parent::emp")
        assert len(result) == 3
        assert all(m.level in (1, 2, 3) for m in result.matches)

    def test_parent_filters_by_tag(self, engine):
        # The sign name's parent is an office, not an emp.
        result = engine.evaluate("//name/parent::office")
        assert len(result) == 1

    def test_ancestor_axis_collects_chain(self, engine):
        # emp ancestors of the deepest name: all three enclosing emps.
        result = engine.evaluate("//emp//name/ancestor::emp")
        assert len(result) == 3

    def test_reverse_then_forward(self, engine):
        # Names of the emps that have a name (round trip through parent).
        result = engine.evaluate("//name/parent::emp/name")
        assert len(result) == 3

    def test_reverse_step_with_predicate(self, engine):
        result = engine.evaluate("//name/parent::emp[emp]")
        assert len(result) == 2  # the two emps that contain another emp

    def test_matches_tree_walk_oracle(self):
        from repro.workloads import department_dataset

        doc = department_dataset(1200, seed=91).document
        engine = PathQueryEngine(doc)
        got = engine.evaluate("//email/parent::employee").starts()
        expected = sorted({
            node.parent.start
            for node in doc.elements_by_tag("email")
            if node.parent is not None and node.parent.tag == "employee"
        })
        assert got == expected
        got = engine.evaluate("//name/ancestor::department").starts()
        expected = sorted({
            walker.start
            for node in doc.elements_by_tag("name")
            for walker in _ancestors(node)
            if walker.tag == "department"
        })
        assert got == expected

    def test_leading_reverse_axis_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.evaluate("/parent::emp")

    def test_reverse_axis_in_predicate_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.evaluate("//name[parent::emp]")

    def test_holistic_executors_reject_reverse(self, engine):
        from repro.query.pathstack import evaluate_path_stack
        from repro.query.twigjoin import twig_from_path

        with pytest.raises(ValueError):
            evaluate_path_stack(engine.document, "//name/parent::emp")
        with pytest.raises(ValueError):
            twig_from_path("//name/parent::emp")

    def test_explain_shows_probe(self, engine):
        plan = engine.explain("//name/parent::emp")
        assert "parent-probe into emp" in plan


def _ancestors(node):
    walker = node.parent
    while walker is not None:
        yield walker
        walker = walker.parent
