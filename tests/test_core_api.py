"""Tests for the public facade (repro.core.api)."""

import pytest

from repro.core.api import (
    ALGORITHMS,
    StorageContext,
    XRTreeIndex,
    oracle_join,
    structural_join,
)
from repro.joins.base import sort_pairs
from tests.conftest import entry


class TestStorageContext:
    def test_defaults(self):
        context = StorageContext()
        assert context.pool.capacity == 100      # the paper's buffer size
        assert context.disk.page_size == 4096

    def test_reset_stats(self):
        context = StorageContext()
        page = context.pool.new_page(
            __import__("repro.storage.pages", fromlist=["RawPage"]).RawPage(b"x")
        )
        context.pool.unpin(page, dirty=True)
        context.pool.flush_all()
        context.reset_stats()
        assert context.page_misses == 0
        assert context.disk.stats.writes == 0

    def test_derived_seconds_uses_time_model(self):
        from repro.storage.timemodel import DiskTimeModel

        context = StorageContext(time_model=DiskTimeModel(read_ms=10.0,
                                                          write_ms=0.0,
                                                          cpu_us_per_element=0))
        context.pool.stats.misses = 100
        assert context.derived_seconds() == pytest.approx(1.0)

    def test_file_backed_context(self, tmp_path):
        context = StorageContext(page_size=512,
                                 path=str(tmp_path / "ctx.pages"))
        index = XRTreeIndex.build([entry(1, 10), entry(2, 5)], context)
        assert len(index) == 2
        context.pool.flush_all()
        context.close()


class TestXRTreeIndex:
    @pytest.fixture
    def index(self, dept_data):
        return XRTreeIndex.build(dept_data.ancestors)

    def test_build_and_len(self, index, dept_data):
        assert len(index) == dept_data.ancestor_count

    def test_ancestors_of(self, index, dept_data):
        probe = dept_data.descendants[len(dept_data.descendants) // 2]
        got = [a.start for a in index.ancestors_of(probe)]
        expected = [a.start for a in dept_data.ancestors
                    if a.contains(probe)]
        assert got == expected

    def test_descendants_of(self, index, dept_data):
        probe = dept_data.ancestors[0]
        got = [d.start for d in index.descendants_of(probe)]
        expected = [d.start for d in dept_data.ancestors
                    if probe.contains(d)]
        assert got == expected

    def test_parent_of(self, index, dept_data):
        nested = [a for a in dept_data.ancestors if a.level > 2]
        if not nested:
            pytest.skip("no nested employees at this seed")
        probe = nested[0]
        parent = index.parent_of(probe)
        expected = [a for a in dept_data.ancestors
                    if a.contains(probe) and a.level == probe.level - 1]
        assert parent == (expected[0] if expected else None)

    def test_children_of(self, index, dept_data):
        probe = dept_data.ancestors[0]
        got = [c.start for c in index.children_of(probe)]
        expected = [c.start for c in dept_data.ancestors
                    if probe.is_parent_of(c)]
        assert got == expected

    def test_insert_delete_roundtrip(self):
        index = XRTreeIndex()
        index.insert(entry(1, 10))
        index.insert(entry(2, 5))
        assert len(index) == 2
        assert index.delete(2).start == 2
        assert len(index) == 1
        assert index.check()

    def test_items(self, index, dept_data):
        assert [e.start for e in index.items()] == \
            [e.start for e in dept_data.ancestors]

    def test_check(self, index):
        assert index.check()


class TestStructuralJoin:
    def test_all_algorithms_agree(self, dept_data):
        expected = oracle_join(dept_data.ancestors, dept_data.descendants)
        for algorithm in ALGORITHMS:
            outcome = structural_join(dept_data.ancestors,
                                      dept_data.descendants,
                                      algorithm=algorithm)
            assert sort_pairs(outcome.pairs) == expected
            assert outcome.pair_count == len(expected)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            structural_join([], [], algorithm="quantum")

    def test_outcome_carries_measurements(self, dept_data):
        outcome = structural_join(dept_data.ancestors,
                                  dept_data.descendants,
                                  algorithm="xr-stack")
        assert outcome.page_misses > 0
        assert outcome.stats.elements_scanned > 0
        assert outcome.wall_seconds > 0
        assert outcome.derived_seconds > 0
        assert outcome.algorithm == "xr-stack"

    def test_collect_false_returns_no_pairs(self, dept_data):
        outcome = structural_join(dept_data.ancestors,
                                  dept_data.descendants,
                                  algorithm="b+", collect=False)
        assert outcome.pairs is None
        assert outcome.pair_count > 0

    def test_parent_child(self, dept_data):
        outcome = structural_join(dept_data.ancestors,
                                  dept_data.descendants,
                                  algorithm="xr-stack", parent_child=True)
        expected = oracle_join(dept_data.ancestors, dept_data.descendants,
                               parent_child=True)
        assert sort_pairs(outcome.pairs) == expected

    def test_join_runs_cold(self, dept_data):
        # The measured join starts on a cold buffer pool: its misses are at
        # least the pages of both input lists.
        outcome = structural_join(dept_data.ancestors,
                                  dept_data.descendants,
                                  algorithm="stack-tree", collect=False)
        assert outcome.page_misses >= 2

    def test_explicit_context_reused(self, dept_data):
        context = StorageContext(page_size=1024, buffer_pages=50)
        outcome = structural_join(dept_data.ancestors,
                                  dept_data.descendants,
                                  algorithm="xr-stack", context=context,
                                  collect=False)
        assert outcome.pair_count > 0
        assert context.disk.allocated_page_count > 0


class TestPrebuiltInputs:
    def test_xrtree_index_inputs_skip_rebuild(self, dept_data):
        expected = oracle_join(dept_data.ancestors, dept_data.descendants)
        context = StorageContext()
        a_index = XRTreeIndex.build(dept_data.ancestors, context)
        d_index = XRTreeIndex.build(dept_data.descendants, context)
        pages_before = context.disk.allocated_page_count
        outcome = structural_join(a_index, d_index, algorithm="xr-stack")
        assert sort_pairs(outcome.pairs) == expected
        # No new pages were allocated: the prebuilt trees were joined as-is.
        assert context.disk.allocated_page_count == pages_before

    def test_raw_tree_inputs(self, dept_data):
        from repro.core.api import build_xr_tree

        expected = oracle_join(dept_data.ancestors, dept_data.descendants)
        context = StorageContext()
        a_tree = build_xr_tree(dept_data.ancestors, context.pool)
        d_tree = build_xr_tree(dept_data.descendants, context.pool)
        outcome = structural_join(a_tree, d_tree, algorithm="xr-stack")
        assert sort_pairs(outcome.pairs) == expected

    def test_bplus_and_list_inputs(self, dept_data):
        from repro.core.api import build_bplus_tree, build_element_list

        expected = oracle_join(dept_data.ancestors, dept_data.descendants)
        context = StorageContext()
        a_bp = build_bplus_tree(dept_data.ancestors, context.pool)
        d_bp = build_bplus_tree(dept_data.descendants, context.pool)
        outcome = structural_join(a_bp, d_bp, algorithm="b+",
                                  context=context)
        assert sort_pairs(outcome.pairs) == expected

        a_list = build_element_list(dept_data.ancestors, context.pool)
        d_list = build_element_list(dept_data.descendants, context.pool)
        outcome = structural_join(a_list, d_list, algorithm="stack-tree",
                                  context=context)
        assert sort_pairs(outcome.pairs) == expected

    def test_mixed_prebuilt_and_entries(self, dept_data):
        expected = oracle_join(dept_data.ancestors, dept_data.descendants)
        context = StorageContext()
        a_index = XRTreeIndex.build(dept_data.ancestors, context)
        outcome = structural_join(a_index, dept_data.descendants,
                                  algorithm="xr-stack", context=context)
        assert sort_pairs(outcome.pairs) == expected

    def test_prebuilt_kind_mismatch_rejected(self, dept_data):
        context = StorageContext()
        a_index = XRTreeIndex.build(dept_data.ancestors, context)
        with pytest.raises(ValueError):
            structural_join(a_index, dept_data.descendants, algorithm="b+",
                            context=context)

    def test_prebuilt_foreign_pool_rejected(self, dept_data):
        a_index = XRTreeIndex.build(dept_data.ancestors)
        with pytest.raises(ValueError):
            structural_join(a_index, dept_data.descendants,
                            algorithm="xr-stack",
                            context=StorageContext())


class TestAlgorithmRegistry:
    def test_builtins_registered(self):
        from repro.joins.registry import algorithm_names, get_algorithm

        assert set(ALGORITHMS) <= set(algorithm_names())
        assert get_algorithm("xr-stack").input_kind == "xr-tree"
        assert get_algorithm("b+").input_kind == "b+tree"
        assert get_algorithm("stack-tree").input_kind == "element-list"

    def test_plugin_algorithm_dispatches(self, dept_data):
        from repro.joins.registry import (
            INPUT_ELEMENT_LIST,
            register_algorithm,
            unregister_algorithm,
        )
        from repro.joins.stack_tree import stack_tree_join

        register_algorithm("test-plugin", stack_tree_join,
                           INPUT_ELEMENT_LIST, "registry test double")
        try:
            outcome = structural_join(dept_data.ancestors,
                                      dept_data.descendants,
                                      algorithm="test-plugin")
            expected = oracle_join(dept_data.ancestors,
                                   dept_data.descendants)
            assert sort_pairs(outcome.pairs) == expected
            assert outcome.algorithm == "test-plugin"
        finally:
            unregister_algorithm("test-plugin")

    def test_duplicate_registration_rejected(self):
        from repro.joins.registry import register_algorithm
        from repro.joins.stack_tree import stack_tree_join

        with pytest.raises(ValueError):
            register_algorithm("xr-stack", stack_tree_join, "element-list")

    def test_bad_input_kind_rejected(self):
        from repro.joins.registry import register_algorithm

        with pytest.raises(ValueError):
            register_algorithm("bogus", lambda *a, **k: None, "hash-table")
