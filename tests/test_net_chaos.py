"""Network chaos, survived: duplicate/reordered/corrupt delivery,
partitions, half-open stalls, capacity rejection, and the proxy CLI.

Each test builds a real archive, serves it with a
:class:`~repro.net.server.SegmentServer`, and talks to it through a
seeded :class:`~repro.net.proxy.ChaosProxy` — asserting not only that
the :class:`~repro.net.shipper.SocketShipper` gets the right bytes, but
that the faults actually *fired* (proxy counters) and were *detected*
(shipper rejection counters).  A chaos test that passes because nothing
bad happened is not a chaos test.
"""

import os
import random
import re
import subprocess
import sys

import pytest

from repro.net import (
    ChaosConfig,
    ChaosProxy,
    NetworkError,
    SegmentServer,
    SocketShipper,
)
from repro.storage.journal import Archive, decode_group
from repro.storage.replication import StandbyReplica

PAGE_SIZE = 512
SEED = int(os.environ.get("CHAOS_SEED", "20030305"))


@pytest.fixture
def archive(tmp_path):
    arch = Archive(str(tmp_path / "chaos.archive"), PAGE_SIZE)
    for sequence in range(1, 22):
        arch.append(sequence,
                    {sequence: bytes([sequence % 256]) * PAGE_SIZE})
    return arch


@pytest.fixture
def server(archive):
    with SegmentServer(archive.directory, PAGE_SIZE) as srv:
        yield srv


def make_shipper(address, **options):
    options.setdefault("page_size", PAGE_SIZE)
    options.setdefault("rng", random.Random(SEED))
    options.setdefault("connect_timeout", 0.5)
    options.setdefault("read_timeout", 0.5)
    options.setdefault("backoff_seconds", 0.002)
    options.setdefault("max_backoff_seconds", 0.02)
    return SocketShipper(address, **options)


class TestChaosSurvival:
    def test_duplicates_reorders_and_corruption_never_reach_the_caller(
            self, server):
        """The headline property: under heavy frame misdelivery every
        fetched segment is the right one, bit-for-bit — bad frames are
        rejected by CRC or sequence, never returned."""
        config = ChaosConfig(duplicate_rate=0.4, reorder_rate=0.4,
                             corrupt_rate=0.25)
        with ChaosProxy(server.address, config=config, seed=SEED) as proxy:
            shipper = make_shipper(proxy.address, max_retries=10)
            for sequence in range(1, 22):
                blob = shipper.fetch(sequence)
                decoded, records = decode_group(blob, PAGE_SIZE)
                assert decoded == sequence
                assert records[sequence] == (
                    bytes([sequence % 256]) * PAGE_SIZE)
            shipper.close()
            # The chaos fired...
            assert proxy.stats.frames_duplicated > 0
            assert proxy.stats.frames_reordered > 0
            assert proxy.stats.frames_corrupted > 0
            # ...was detected for the right reasons...
            causes = shipper.stats.rejections_by_cause
            assert causes.get("crc", 0) > 0
            assert causes.get("sequence", 0) > 0
            assert shipper.stats.frames_rejected == sum(causes.values())
            # ...and never exhausted the retry budget.
            assert shipper.stats.give_ups == 0

    def test_connection_drops_are_survived_by_reconnect(self, server):
        config = ChaosConfig(drop_rate=0.3)
        with ChaosProxy(server.address, config=config, seed=SEED) as proxy:
            shipper = make_shipper(proxy.address, max_retries=10)
            assert shipper.latest_sequence() == 21
            for sequence in (1, 10, 21):
                assert shipper.fetch(sequence) is not None
            shipper.close()
            assert proxy.stats.dropped_connections > 0
            assert shipper.stats.reconnects > 0

    def test_half_open_stall_trips_the_read_timeout(self, server):
        """A peer that accepts and then says nothing must cost one read
        timeout, not a hung thread."""
        config = ChaosConfig(stall_rate=1.0, stall_seconds=1.0)
        with ChaosProxy(server.address, config=config, seed=SEED) as proxy:
            shipper = make_shipper(proxy.address, read_timeout=0.1,
                                   max_retries=1)
            with pytest.raises(NetworkError):
                shipper.latest_sequence()
            assert shipper.stats.timeouts >= 1
            assert shipper.stats.give_ups == 1
            shipper.close()

    def test_slow_link_still_delivers(self, server):
        config = ChaosConfig(latency_seconds=0.02, jitter_seconds=0.01,
                             bandwidth_bytes_per_sec=64 * 1024)
        with ChaosProxy(server.address, config=config, seed=SEED) as proxy:
            shipper = make_shipper(proxy.address, read_timeout=2.0)
            assert shipper.fetch(5) is not None
            shipper.close()
            assert proxy.stats.frames_delayed > 0


class TestPartition:
    def test_refuse_partition_raises_then_heals(self, server):
        with ChaosProxy(server.address, seed=SEED) as proxy:
            shipper = make_shipper(proxy.address, max_retries=2)
            assert shipper.latest_sequence() == 21
            proxy.partition(mode="refuse")
            with pytest.raises(NetworkError):
                shipper.fetch(1)
            assert proxy.stats.refused_connections > 0
            proxy.heal()
            assert shipper.fetch(1) is not None   # service restored
            shipper.close()

    def test_blackhole_partition_is_caught_by_read_timeout(self, server):
        with ChaosProxy(server.address, seed=SEED) as proxy:
            shipper = make_shipper(proxy.address, read_timeout=0.1,
                                   max_retries=1)
            assert shipper.latest_sequence() == 21
            proxy.partition(mode="blackhole")
            with pytest.raises(NetworkError):
                shipper.fetch(1)
            assert proxy.stats.blackholed_connections > 0
            proxy.heal()
            assert shipper.fetch(1) is not None
            shipper.close()


class TestServerRobustness:
    def test_capacity_bound_answers_busy_instead_of_ghosting(self,
                                                             archive):
        with SegmentServer(archive.directory, PAGE_SIZE,
                           max_connections=0) as srv:
            shipper = make_shipper(srv.address, max_retries=1)
            with pytest.raises(NetworkError, match="busy"):
                shipper.latest_sequence()
            assert shipper.stats.server_busy >= 1
            assert srv.stats.rejected_connections >= 1
            shipper.close()

    def test_server_survives_garbage_and_keeps_serving(self, server):
        import socket

        sock = socket.create_connection(server.address, timeout=1.0)
        try:
            sock.sendall(b"\x10\x00\x00\x00" + b"not a frame at all..")
        finally:
            sock.close()
        shipper = make_shipper(server.address)
        assert shipper.latest_sequence() == 21   # still alive
        shipper.close()
        assert server.stats.bad_frames >= 1

    def test_server_keeps_serving_a_dead_writers_archive(self, archive):
        """Segments are immutable files: the server needs nothing from
        the primary process, so a partitioned standby can finish catching
        up from an archive whose writer is gone."""
        with SegmentServer(archive.directory, PAGE_SIZE) as srv:
            shipper = make_shipper(srv.address)
            # No primary exists at all here — only the directory.
            assert shipper.latest_sequence() == 21
            assert shipper.fetch(21) is not None
            shipper.close()


class TestReplicaOverChaos:
    def test_standby_catches_up_through_misdelivery(self, tmp_path):
        """End to end: a StandbyReplica tails a chaos-proxied socket
        transport and converges to the primary's exact state."""
        from repro.core.database import XmlDatabase

        path = str(tmp_path / "primary.db")
        archive_dir = str(tmp_path / "primary.archive")
        db = XmlDatabase.create(path, page_size=PAGE_SIZE,
                                durability="archive",
                                archive_dir=archive_dir)
        for index in range(6):
            db.add_document("<doc><n>%d</n></doc>" % index,
                            name="doc-%d" % index)
            db.flush()
        head = db.commit_sequence
        db.close()

        config = ChaosConfig(duplicate_rate=0.3, corrupt_rate=0.2,
                             reorder_rate=0.2)
        with SegmentServer(archive_dir, PAGE_SIZE) as srv, \
                ChaosProxy(srv.address, config=config, seed=SEED) as proxy:
            shipper = make_shipper(proxy.address, max_retries=10)
            replica = StandbyReplica(
                str(tmp_path / "standby.db"), shipper,
                page_size=PAGE_SIZE, backoff_seconds=0.001,
                max_backoff_seconds=0.01, rng=random.Random(SEED))
            applied = replica.catch_up()
            assert applied == head
            assert replica.applied_sequence == head
            names = [n for _i, n in replica.documents()]
            assert names == ["doc-%d" % i for i in range(6)]
            assert replica.stall_reason is None
            replica.close()


class TestProxyCli:
    def test_cli_proxies_real_traffic_and_reports_stats(self, archive):
        """``python -m repro.net.proxy`` end to end: spawn it against a
        live server, fetch through it, and check the stats JSON."""
        with SegmentServer(archive.directory, PAGE_SIZE) as srv:
            host, port = srv.address
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
                + env.get("PYTHONPATH", "").split(os.pathsep))
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.net.proxy",
                 "--upstream", "%s:%d" % (host, port),
                 "--listen", "127.0.0.1:0",
                 "--seed", str(SEED),
                 "--duplicate-rate", "0.3",
                 "--max-seconds", "30"],
                stdout=subprocess.PIPE, env=env, text=True)
            try:
                banner = proc.stdout.readline()
                match = re.match(
                    r"chaos proxy listening on ([\d.]+):(\d+)", banner)
                assert match, "unexpected banner: %r" % banner
                proxy_addr = (match.group(1), int(match.group(2)))
                shipper = make_shipper(proxy_addr, max_retries=10)
                assert shipper.latest_sequence() == 21
                for sequence in range(1, 8):
                    assert shipper.fetch(sequence) is not None
                shipper.close()
            finally:
                proc.terminate()
                out, _err = proc.communicate(timeout=10)
        import json

        stats = json.loads(out.strip().splitlines()[-1])
        assert stats["connections"] >= 1
        assert stats["frames_forwarded"] >= 8
