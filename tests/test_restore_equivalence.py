"""Restore-then-query equivalence (seeded property test).

Crash an archive-mode primary mid-commit, fail over to a standby (and,
independently, restore + PITR from a hot backup), then demand that every
structural join over the recovered indexes is **identical** to a pristine
oracle database built from the same acknowledged documents.  Any
recovery-path corruption — a page applied twice, a stab list rebuilt
differently, a half-applied commit — shows up as a join mismatch.

Set ``CHAOS_SEED`` to reproduce a CI failure locally.
"""

import os
import random
import shutil

import pytest

from repro.core.api import structural_join
from repro.core.database import XmlDatabase
from repro.joins.base import sort_pairs
from repro.storage.disk import FileDisk
from repro.storage.faults import CrashPoint, FaultInjectingDisk
from repro.storage.replication import LocalDirShipper, StandbyReplica
from repro.xmldata.dtd import DEPARTMENT_DTD
from repro.xmldata.generator import GeneratorConfig, XmlGenerator
from repro.xmldata.parser import serialize_document

SEED = int(os.environ.get("CHAOS_SEED", "20030305"))

PAGE_SIZE = 512
BUFFER_PAGES = 32
ALGORITHMS = ("xr-stack", "stack-tree", "b+")


def generate_docs(rng, count=3):
    """(name, xml) pairs of seeded random department documents."""
    config = GeneratorConfig(mean_repeat=rng.uniform(1.5, 2.5),
                            recursion_decay=0.6,
                            max_depth=rng.randrange(8, 16))
    docs = []
    for index in range(count):
        document = XmlGenerator(DEPARTMENT_DTD, config,
                                seed=rng.randrange(10 ** 6)) \
            .generate(rng.randrange(150, 400))
        docs.append(("doc-%d" % index, serialize_document(document)))
    return docs


def run_commits(db, docs):
    for name, xml in docs:
        db.add_document(xml, name=name)
        db.flush()


def build_oracle(tmp_path, docs, label):
    """A pristine database holding ``docs`` — never crashed, never restored."""
    oracle = XmlDatabase.create(str(tmp_path / ("%s.db" % label)),
                                page_size=PAGE_SIZE,
                                buffer_pages=BUFFER_PAGES)
    run_commits(oracle, docs)
    return oracle


def join_results(db, rng):
    """Every algorithm's sorted pairs for a few seeded tag combinations."""
    tags = db.tags()
    pairs = [("employee", "name"), ("department", "employee")]
    if len(tags) >= 2:
        pairs.append(tuple(rng.sample(tags, 2)))
    results = {}
    for a_tag, d_tag in pairs:
        ancestors = db.entries_for_tag(a_tag)
        descendants = db.entries_for_tag(d_tag)
        for algorithm in ALGORITHMS:
            outcome = structural_join(ancestors, descendants,
                                      algorithm=algorithm)
            results[(a_tag, d_tag, algorithm)] = sort_pairs(outcome.pairs)
    return results


@pytest.mark.parametrize("trial", range(3))
def test_recovered_joins_match_pristine_oracle(tmp_path, trial):
    rng = random.Random(SEED + 100 * trial)
    docs = generate_docs(rng)

    # Base: an empty archive-mode primary, hot-backed-up before any load.
    path = str(tmp_path / "primary.db")
    archive_dir = str(tmp_path / "primary.archive")
    db = XmlDatabase.create(path, page_size=PAGE_SIZE,
                            buffer_pages=BUFFER_PAGES,
                            durability="archive", archive_dir=archive_dir)
    backup = str(tmp_path / "backup")
    db.hot_backup(backup)
    db.close()

    # Probe: how many physical writes the workload performs, and how many
    # happen before the final commit starts.
    probe = str(tmp_path / "probe.db")
    shutil.copyfile(path, probe)
    shutil.copytree(archive_dir, str(tmp_path / "probe.archive"))
    disk = FaultInjectingDisk(
        FileDisk(probe, page_size=PAGE_SIZE, durability="archive",
                 archive_dir=str(tmp_path / "probe.archive")))
    pdb = XmlDatabase.open(disk=disk, page_size=PAGE_SIZE,
                           buffer_pages=BUFFER_PAGES)
    run_commits(pdb, docs[:-1])
    before_last = disk.op_counts["physical-write"]
    run_commits(pdb, docs[-1:])
    pdb.close()
    total = disk.op_counts["physical-write"]
    assert total > before_last > 0

    # Crash run: kill somewhere inside the final commit.
    kill = rng.randrange(before_last + 1, total + 1)
    disk = FaultInjectingDisk(
        FileDisk(path, page_size=PAGE_SIZE, durability="archive",
                 archive_dir=archive_dir),
        kill_after=kill, torn_bytes=rng.choice([None, 1, 33]))
    rdb = XmlDatabase.open(disk=disk, page_size=PAGE_SIZE,
                           buffer_pages=BUFFER_PAGES)
    with pytest.raises(CrashPoint):
        run_commits(rdb, docs)
    disk.abort()

    # Fail over to the standby.
    replica = StandbyReplica.from_backup(
        backup, str(tmp_path / "standby.db"),
        LocalDirShipper(archive_dir, PAGE_SIZE),
        page_size=PAGE_SIZE, buffer_pages=BUFFER_PAGES,
        backoff_seconds=0.0)
    promoted = replica.promote()

    survivors = [name for _i, name in promoted.documents()]
    by_name = dict(docs)
    # Acknowledged-commit prefix: the crash hit the last commit, so the
    # standby holds either all-but-the-last documents or all of them.
    assert survivors in ([n for n, _ in docs[:-1]],
                         [n for n, _ in docs]), survivors
    acked_docs = [(name, by_name[name]) for name in survivors]

    oracle = build_oracle(tmp_path, acked_docs, "oracle")
    expected = join_results(oracle, random.Random(SEED + trial))
    assert promoted.tags() == oracle.tags()
    got = join_results(promoted, random.Random(SEED + trial))
    assert got == expected
    promoted.verify()
    promoted.close()
    oracle.close()

    # Restore + PITR from the hot backup must agree with the failover.
    restored = XmlDatabase.restore(
        backup, str(tmp_path / "restored.db"), archive_dir=archive_dir,
        page_size=PAGE_SIZE, buffer_pages=BUFFER_PAGES)
    try:
        assert [n for _i, n in restored.documents()] == survivors
        assert join_results(restored, random.Random(SEED + trial)) == expected
    finally:
        restored.close()
