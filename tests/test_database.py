"""Tests for the persistent XML database (repro.core.database)."""

import pytest

from repro.core.database import XmlDatabase, XmlDatabaseError
from repro.indexes.xrtree import check_xrtree
from repro.xmldata.parser import parse_document

DOC_A = "<dept><emp><name>w</name><emp><name>x</name></emp></emp></dept>"
DOC_B = "<dept><emp><name>y</name></emp><office><name>s</name></office></dept>"


class TestBlobStorage:
    def test_roundtrip_small(self, pool):
        from repro.storage.catalog import Catalog

        catalog = Catalog.create(pool)
        catalog.save_blob("b", b"hello blob")
        assert catalog.load_blob("b") == b"hello blob"

    def test_roundtrip_multi_page(self, pool):
        from repro.storage.catalog import Catalog

        catalog = Catalog.create(pool)
        data = bytes(range(256)) * 20  # ~5 KB over 512-byte pages
        catalog.save_blob("big", data)
        assert catalog.load_blob("big") == data

    def test_replace_frees_old_chain(self, pool, disk):
        from repro.storage.catalog import Catalog

        catalog = Catalog.create(pool)
        catalog.save_blob("b", b"x" * 3000)
        before = disk.allocated_page_count
        catalog.save_blob("b", b"y" * 3000)
        assert disk.allocated_page_count == before
        assert catalog.load_blob("b") == b"y" * 3000

    def test_empty_blob(self, pool):
        from repro.storage.catalog import Catalog

        catalog = Catalog.create(pool)
        catalog.save_blob("empty", b"")
        assert catalog.load_blob("empty") == b""

    def test_kind_checked(self, pool):
        from repro.storage.catalog import Catalog, CatalogError
        from repro.indexes.bptree import BPlusTree

        catalog = Catalog.create(pool)
        catalog.save_bptree("t", BPlusTree(pool))
        with pytest.raises(CatalogError):
            catalog.load_blob("t")


class TestInMemoryDatabase:
    @pytest.fixture
    def db(self):
        database = XmlDatabase.create()
        database.add_document(DOC_A, name="alpha")
        database.add_document(DOC_B, name="beta")
        return database

    def test_documents_registered(self, db):
        assert db.documents() == [(1, "alpha"), (2, "beta")]
        assert set(db.tags()) == {"dept", "emp", "name", "office"}

    def test_element_counts(self, db):
        assert db.element_count("emp") == 3
        assert db.element_count("name") == 4
        assert db.element_count() == 2 + 3 + 4 + 1

    def test_query_spans_documents(self, db):
        result = db.query("//emp//name")
        assert len(result) == 3  # w, x from alpha; y from beta
        names = [db.locate(match) for match in result.matches]
        assert {name for name, _s, _e in names} == {"alpha", "beta"}

    def test_query_with_predicate(self, db):
        assert len(db.query("//emp[emp]")) == 1
        assert len(db.query("//dept[office]/emp")) == 1

    def test_joins_never_cross_documents(self, db):
        result = db.query("//dept//name")
        for match in result.matches:
            assert match.doc_id in (1, 2)
        assert len(result) == 4

    def test_find_ancestors(self, db):
        name_entries = db.entries_for_tag("name")
        probe = name_entries[0]
        ancestors = db.find_ancestors("emp", probe.start)
        assert ancestors
        assert all(a.doc_id == probe.doc_id for a in ancestors)

    def test_dynamic_insert_preserves_invariants(self, db):
        for tag in db.tags():
            tree = db._tree_for(tag)
            check_xrtree(tree)

    def test_generated_document(self):
        from repro.workloads import department_dataset

        database = XmlDatabase.create(page_size=1024)
        data = department_dataset(1500, seed=81)
        database.add_document(data.document, name="generated")
        result = database.query("//employee//name")
        engine_truth = len(
            __import__("repro.query", fromlist=["PathQueryEngine"])
            .PathQueryEngine(data.document).evaluate("//employee//name")
        )
        assert len(result) == engine_truth

    def test_long_tag_rejected(self):
        database = XmlDatabase.create()
        with pytest.raises(XmlDatabaseError):
            database.add_document("<%s/>" % ("x" * 40))

    def test_explain(self, db):
        plan = db.explain("//emp//name")
        assert "plan for //emp//name" in plan
        assert "descendant-join emp" in plan

    def test_verify(self, db):
        assert db.verify() == len(db.tags())


class TestRemoveDocument:
    def test_remove_updates_queries(self):
        db = XmlDatabase.create()
        db.add_document(DOC_A, name="alpha")
        db.add_document(DOC_B, name="beta")
        before = len(db.query("//emp//name"))
        db.remove_document(1)
        after = db.query("//emp//name")
        assert len(after) < before
        assert all(m.doc_id == 2 for m in after.matches)
        assert db.documents() == [(2, "beta")]

    def test_indexes_stay_valid_after_removal(self):
        from repro.workloads import department_dataset

        db = XmlDatabase.create(page_size=1024)
        data1 = department_dataset(800, seed=82)
        data2 = department_dataset(800, seed=83)
        db.add_document(data1.document, name="one")
        db.add_document(data2.document, name="two")
        db.remove_document(1)
        for tag in db.tags():
            check_xrtree(db._tree_for(tag))
        result = db.query("//employee//name")
        assert all(m.doc_id == 2 for m in result.matches)

    def test_remove_unknown_or_twice_raises(self):
        from repro.core.database import XmlDatabaseError

        db = XmlDatabase.create()
        db.add_document(DOC_A)
        with pytest.raises(XmlDatabaseError):
            db.remove_document(5)
        db.remove_document(1)
        with pytest.raises(XmlDatabaseError):
            db.remove_document(1)

    def test_remove_all_then_add(self):
        db = XmlDatabase.create()
        db.add_document(DOC_A)
        db.remove_document(1)
        assert db.element_count() == 0
        new_id = db.add_document(DOC_B, name="fresh")
        assert new_id == 2
        assert len(db.query("//emp")) == 1

    def test_removal_persists(self, tmp_path):
        path = str(tmp_path / "rm.db")
        with XmlDatabase.create(path, page_size=1024) as db:
            db.add_document(DOC_A, name="alpha")
            db.add_document(DOC_B, name="beta")
            db.remove_document(2)
        with XmlDatabase.open(path, page_size=1024) as db:
            assert db.documents() == [(1, "alpha")]
            assert all(m.doc_id == 1
                       for m in db.query("//emp//name").matches)


class TestPersistence:
    def test_close_and_reopen(self, tmp_path):
        path = str(tmp_path / "xml.db")
        with XmlDatabase.create(path, page_size=1024) as db:
            db.add_document(DOC_A, name="alpha")
            db.add_document(DOC_B, name="beta")
            before = db.query("//emp//name").starts()

        with XmlDatabase.open(path, page_size=1024) as db:
            assert db.documents() == [(1, "alpha"), (2, "beta")]
            assert db.query("//emp//name").starts() == before
            for tag in db.tags():
                check_xrtree(db._tree_for(tag))

    def test_add_after_reopen(self, tmp_path):
        path = str(tmp_path / "xml2.db")
        with XmlDatabase.create(path, page_size=1024) as db:
            db.add_document(DOC_A)
        with XmlDatabase.open(path, page_size=1024) as db:
            db.add_document(DOC_B)
            assert len(db.documents()) == 2
            assert len(db.query("//emp//name")) == 3
        with XmlDatabase.open(path, page_size=1024) as db:
            assert len(db.documents()) == 2
            assert len(db.query("//emp//name")) == 3
