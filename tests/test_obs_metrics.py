"""MetricsRegistry behaviour: instruments, buckets, exposition, collectors."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_PAGE_IO_BUCKETS,
    Histogram,
    MetricsError,
    MetricsRegistry,
)


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("repro_things_total", "things")
    counter.inc()
    counter.inc(4)
    gauge = registry.gauge("repro_level")
    gauge.set(7)
    gauge.inc()
    gauge.dec(3)
    snap = registry.snapshot()
    assert snap["repro_things_total"] == 5
    assert snap["repro_level"] == 5


def test_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("repro_x") is registry.counter("repro_x")


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("repro_x")
    with pytest.raises(MetricsError):
        registry.gauge("repro_x")
    with pytest.raises(MetricsError):
        registry.histogram("repro_x")


def test_invalid_names_rejected():
    registry = MetricsRegistry()
    for bad in ("", "9starts_with_digit", "has-dash", "has space"):
        with pytest.raises(MetricsError):
            registry.counter(bad)


def test_histogram_bucket_edges_are_le_inclusive():
    """A value equal to an edge lands in that edge's bucket (Prometheus
    ``le`` semantics), one past it in the next."""
    histogram = Histogram("repro_h", buckets=(1.0, 2.0, 5.0))
    for value in (0.5, 1.0, 1.5, 2.0, 2.1, 5.0, 99.0):
        histogram.observe(value)
    # Per-bucket (non-cumulative): (<=1): 0.5, 1.0; (<=2): 1.5, 2.0;
    # (<=5): 2.1, 5.0; overflow: 99.0
    assert list(histogram.bucket_counts) == [2, 2, 2, 1]
    cumulative = histogram.cumulative()
    assert cumulative[0] == (1.0, 2)
    assert cumulative[1] == (2.0, 4)
    assert cumulative[2] == (5.0, 6)
    assert cumulative[-1][1] == 7 and math.isinf(cumulative[-1][0])
    assert histogram.count == 7
    assert histogram.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 2.1
                                          + 5.0 + 99.0)


def test_histogram_rejects_bad_edges():
    for bad in ((), (2.0, 1.0), (1.0, 1.0), (1.0, float("inf"))):
        with pytest.raises(MetricsError):
            Histogram("repro_h", buckets=bad)


def test_default_bucket_families_are_ascending():
    for buckets in (DEFAULT_LATENCY_BUCKETS, DEFAULT_PAGE_IO_BUCKETS):
        assert list(buckets) == sorted(buckets)
        assert len(set(buckets)) == len(buckets)


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter("repro_ops_total", "Operations").inc(3)
    histogram = registry.histogram("repro_lat", "Latency",
                                   buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(2.0)
    text = registry.render_prometheus()
    assert "# HELP repro_ops_total Operations" in text
    assert "# TYPE repro_ops_total counter" in text
    assert "repro_ops_total 3" in text
    assert "# TYPE repro_lat histogram" in text
    assert 'repro_lat_bucket{le="0.1"} 1' in text
    assert 'repro_lat_bucket{le="1"} 2' in text
    assert 'repro_lat_bucket{le="+Inf"} 3' in text
    assert "repro_lat_count 3" in text
    assert "repro_lat_sum 2.55" in text


def test_collector_refreshes_gauges_at_snapshot_time():
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_live")
    source = {"value": 0}

    @registry.register_collector
    def refresh(_registry):
        gauge.set(source["value"])

    source["value"] = 11
    assert registry.snapshot()["repro_live"] == 11
    source["value"] = 22
    assert "repro_live 22" in registry.render_prometheus()


def test_snapshot_includes_histogram_structure():
    registry = MetricsRegistry()
    registry.histogram("repro_h", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()["repro_h"]
    assert snap["count"] == 1
    assert snap["sum"] == 0.5
    assert snap["buckets"][0] == [1.0, 1]
