"""MetricsRegistry behaviour: instruments, buckets, exposition, collectors."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_PAGE_IO_BUCKETS,
    Histogram,
    MetricsError,
    MetricsRegistry,
    parse_exposition,
)


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("repro_things_total", "things")
    counter.inc()
    counter.inc(4)
    gauge = registry.gauge("repro_level")
    gauge.set(7)
    gauge.inc()
    gauge.dec(3)
    snap = registry.snapshot()
    assert snap["repro_things_total"] == 5
    assert snap["repro_level"] == 5


def test_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("repro_x") is registry.counter("repro_x")


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("repro_x")
    with pytest.raises(MetricsError):
        registry.gauge("repro_x")
    with pytest.raises(MetricsError):
        registry.histogram("repro_x")


def test_invalid_names_rejected():
    registry = MetricsRegistry()
    for bad in ("", "9starts_with_digit", "has-dash", "has space"):
        with pytest.raises(MetricsError):
            registry.counter(bad)


def test_histogram_bucket_edges_are_le_inclusive():
    """A value equal to an edge lands in that edge's bucket (Prometheus
    ``le`` semantics), one past it in the next."""
    histogram = Histogram("repro_h", buckets=(1.0, 2.0, 5.0))
    for value in (0.5, 1.0, 1.5, 2.0, 2.1, 5.0, 99.0):
        histogram.observe(value)
    # Per-bucket (non-cumulative): (<=1): 0.5, 1.0; (<=2): 1.5, 2.0;
    # (<=5): 2.1, 5.0; overflow: 99.0
    assert list(histogram.bucket_counts) == [2, 2, 2, 1]
    cumulative = histogram.cumulative()
    assert cumulative[0] == (1.0, 2)
    assert cumulative[1] == (2.0, 4)
    assert cumulative[2] == (5.0, 6)
    assert cumulative[-1][1] == 7 and math.isinf(cumulative[-1][0])
    assert histogram.count == 7
    assert histogram.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 2.1
                                          + 5.0 + 99.0)


def test_histogram_rejects_bad_edges():
    for bad in ((), (2.0, 1.0), (1.0, 1.0), (1.0, float("inf"))):
        with pytest.raises(MetricsError):
            Histogram("repro_h", buckets=bad)


def test_default_bucket_families_are_ascending():
    for buckets in (DEFAULT_LATENCY_BUCKETS, DEFAULT_PAGE_IO_BUCKETS):
        assert list(buckets) == sorted(buckets)
        assert len(set(buckets)) == len(buckets)


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter("repro_ops_total", "Operations").inc(3)
    histogram = registry.histogram("repro_lat", "Latency",
                                   buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(2.0)
    text = registry.render_prometheus()
    assert "# HELP repro_ops_total Operations" in text
    assert "# TYPE repro_ops_total counter" in text
    assert "repro_ops_total 3" in text
    assert "# TYPE repro_lat histogram" in text
    assert 'repro_lat_bucket{le="0.1"} 1' in text
    assert 'repro_lat_bucket{le="1"} 2' in text
    assert 'repro_lat_bucket{le="+Inf"} 3' in text
    assert "repro_lat_count 3" in text
    assert "repro_lat_sum 2.55" in text


def test_collector_refreshes_gauges_at_snapshot_time():
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_live")
    source = {"value": 0}

    @registry.register_collector
    def refresh(_registry):
        gauge.set(source["value"])

    source["value"] = 11
    assert registry.snapshot()["repro_live"] == 11
    source["value"] = 22
    assert "repro_live 22" in registry.render_prometheus()


def test_snapshot_includes_histogram_structure():
    registry = MetricsRegistry()
    registry.histogram("repro_h", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()["repro_h"]
    assert snap["count"] == 1
    assert snap["sum"] == 0.5
    assert snap["buckets"][0] == [1.0, 1]


def test_quantile_empty_histogram_returns_none():
    hist = Histogram("repro_h", buckets=(1.0, 2.0))
    assert hist.quantile(0.5) is None


def test_quantile_interpolates_within_bucket():
    hist = Histogram("repro_h", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 0.5, 1.5, 1.5):  # two per bucket
        hist.observe(value)
    # p50 → rank 2.0 lands exactly at the top of the first bucket.
    assert hist.quantile(0.50) == pytest.approx(1.0)
    # p75 → rank 3.0, halfway through the (1, 2] bucket.
    assert hist.quantile(0.75) == pytest.approx(1.5)
    assert hist.quantile(1.0) == pytest.approx(2.0)


def test_quantile_overflow_reports_largest_finite_edge():
    hist = Histogram("repro_h", buckets=(1.0, 2.0))
    hist.observe(50.0)
    assert hist.quantile(0.99) == 2.0


def test_quantile_rejects_out_of_range():
    hist = Histogram("repro_h", buckets=(1.0,))
    with pytest.raises(MetricsError):
        hist.quantile(0.0)
    with pytest.raises(MetricsError):
        hist.quantile(1.5)


def test_mirror_absorbs_attr_and_dict_stats():
    registry = MetricsRegistry()

    class Stats:
        shipped = 3
        errors = 1

    registry.mirror(Stats(), (
        ("repro_test_shipped", "shipped", "Segments shipped"),
        ("repro_test_errors", "errors", "Shipping errors"),
    ), name="attr-source")
    registry.mirror(lambda: {"applied": 7}, (
        ("repro_test_applied", "applied", "Segments applied"),
    ), name="dict-source")
    snap = registry.snapshot()
    assert snap["repro_test_shipped"] == 3
    assert snap["repro_test_errors"] == 1
    assert snap["repro_test_applied"] == 7
    owners = registry.collector_owners()
    assert owners["repro_test_shipped"] == "attr-source"
    assert owners["repro_test_applied"] == "dict-source"


def test_claim_is_idempotent_per_owner_but_exclusive_across():
    registry = MetricsRegistry()
    registry.claim("repro_spot", "alpha")
    registry.claim("repro_spot", "alpha")  # same owner: fine
    with pytest.raises(MetricsError):
        registry.claim("repro_spot", "beta")


def test_parse_exposition_round_trips_render():
    registry = MetricsRegistry()
    registry.counter("repro_total", "A counter").inc(2)
    registry.histogram("repro_h", "A histogram",
                       buckets=(1.0,)).observe(0.5)
    parsed = parse_exposition(registry.render_prometheus())
    by_name = {name: value for name, _labels, value in parsed["samples"]}
    assert by_name["repro_total"] == 2
    assert by_name["repro_h_count"] == 1
    assert parsed["type"]["repro_h"] == "histogram"
    assert parsed["help"]["repro_total"] == "A counter"


def test_parse_exposition_rejects_garbage():
    with pytest.raises(MetricsError):
        parse_exposition("this is not a metric line\n")
