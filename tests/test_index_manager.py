"""Tests for the index lifecycle manager (repro.storage.indexmanager)."""

import pytest

from repro.core.api import StorageContext, XRTreeIndex
from repro.core.database import XmlDatabase
from repro.storage.catalog import Catalog
from repro.storage.indexmanager import (
    IndexManager,
    IndexManagerError,
    IndexManagerStats,
)
from tests.conftest import entry


@pytest.fixture
def catalog(pool):
    return Catalog.create(pool)


@pytest.fixture
def manager(catalog, pool):
    return IndexManager(catalog, pool=pool, capacity=4)


def seeded_tree(manager, name, starts=(1, 5)):
    tree = manager.get_or_create_xrtree(name)
    manager.mark_dirty(name)
    for start in starts:
        tree.insert(entry(start, start + 1))
    return tree


class TestHandleCache:
    def test_missing_name_returns_none(self, manager):
        assert manager.get_xrtree("nope") is None
        assert manager.stats.misses == 1
        assert manager.stats.loads == 0

    def test_load_then_hit(self, manager, catalog, pool):
        from repro.indexes.xrtree import XRTree

        tree = XRTree(pool)
        tree.insert(entry(1, 10))
        catalog.save_xrtree("t", tree)

        first = manager.get_xrtree("t")
        second = manager.get_xrtree("t")
        assert first is second           # same live handle, no reload
        assert manager.stats.loads == 1
        assert manager.stats.hits == 1
        assert manager.stats.misses == 1
        assert manager.stats.hit_rate == 0.5

    def test_get_or_create_registers_dirty(self, manager):
        seeded_tree(manager, "fresh")
        assert manager.stats.creations == 1
        assert manager.is_dirty("fresh")
        assert ("fresh", True) in manager.resident()

    def test_flush_persists_created_handle(self, manager, catalog, pool):
        seeded_tree(manager, "fresh", starts=(3, 9))
        assert "fresh" not in catalog.names()
        assert manager.flush() == 1
        assert catalog.names()["fresh"] == "xr-tree"
        # A second manager loads what the first wrote back.
        other = IndexManager(catalog, pool=pool)
        reloaded = other.get_xrtree("fresh")
        assert [e.start for e in reloaded.items()] == [3, 9]

    def test_eviction_writes_back_dirty_handle(self, catalog, pool):
        manager = IndexManager(catalog, pool=pool, capacity=1)
        seeded_tree(manager, "a", starts=(1, 7))
        seeded_tree(manager, "b")       # evicts 'a', which must write back
        assert manager.stats.evictions == 1
        assert manager.stats.writebacks == 1
        assert catalog.names()["a"] == "xr-tree"
        reloaded = manager.get_xrtree("a")   # evicts 'b' the same way
        assert [e.start for e in reloaded.items()] == [1, 7]

    def test_eviction_skips_clean_handles(self, catalog, pool):
        from repro.indexes.xrtree import XRTree

        for name in ("a", "b"):
            catalog.save_xrtree(name, XRTree(pool))
        manager = IndexManager(catalog, pool=pool, capacity=1)
        manager.get_xrtree("a")
        manager.get_xrtree("b")
        assert manager.stats.evictions == 1
        assert manager.stats.writebacks == 0

    def test_lru_order(self, catalog, pool):
        manager = IndexManager(catalog, pool=pool, capacity=2)
        seeded_tree(manager, "a")
        seeded_tree(manager, "b")
        manager.get_xrtree("a")          # 'b' becomes the LRU victim
        seeded_tree(manager, "c")
        assert "b" not in manager
        assert "a" in manager and "c" in manager


class TestLifecycle:
    def test_mark_dirty_requires_resident_handle(self, manager):
        with pytest.raises(IndexManagerError):
            manager.mark_dirty("ghost")

    def test_kind_mismatch_cached(self, manager):
        seeded_tree(manager, "t")
        with pytest.raises(IndexManagerError):
            manager.get_bptree("t")

    def test_kind_mismatch_catalogued(self, manager, catalog, pool):
        from repro.indexes.bptree import BPlusTree

        catalog.save_bptree("b", BPlusTree(pool))
        with pytest.raises(IndexManagerError):
            manager.get_xrtree("b")

    def test_discard_forces_reload(self, manager):
        seeded_tree(manager, "t")
        manager.flush()
        manager.discard("t")
        assert manager.stats.invalidations == 1
        assert "t" not in manager
        manager.get_xrtree("t")
        assert manager.stats.loads == 1

    def test_drop_tombstones_catalog_entry(self, manager, catalog):
        seeded_tree(manager, "t")
        manager.flush()
        manager.drop("t")
        assert "t" not in catalog.names()
        assert manager.get_xrtree("t") is None

    def test_drop_of_never_persisted_handle(self, manager, catalog):
        seeded_tree(manager, "t")        # dirty, no catalog entry yet
        manager.drop("t")
        assert "t" not in catalog.names()
        assert "t" not in manager

    def test_close_flushes_and_is_idempotent(self, manager, catalog):
        seeded_tree(manager, "t")
        manager.close()
        manager.close()
        assert catalog.names()["t"] == "xr-tree"
        with pytest.raises(IndexManagerError):
            manager.get_xrtree("t")

    def test_context_manager(self, catalog, pool):
        with IndexManager(catalog, pool=pool) as manager:
            seeded_tree(manager, "t")
        assert manager.closed
        assert "t" in catalog.names()

    def test_capacity_validated(self, catalog, pool):
        with pytest.raises(IndexManagerError):
            IndexManager(catalog, pool=pool, capacity=0)


class TestFlushFailures:
    def test_flush_attempts_all_and_names_failures(self, manager, catalog):
        from repro.storage.errors import StorageError

        seeded_tree(manager, "ok-1")
        seeded_tree(manager, "bad")
        seeded_tree(manager, "ok-2")
        real_save = catalog.save_xrtree

        def failing_save(name, tree):
            if name == "bad":
                raise StorageError("injected save failure")
            real_save(name, tree)

        catalog.save_xrtree = failing_save
        with pytest.raises(IndexManagerError) as excinfo:
            manager.flush()
        # Every other handle was still written back...
        assert "ok-1" in catalog.names()
        assert "ok-2" in catalog.names()
        assert not manager.is_dirty("ok-1")
        assert not manager.is_dirty("ok-2")
        # ...the failed one stays dirty and is named in the error.
        assert manager.is_dirty("bad")
        assert excinfo.value.failed == ["bad"]
        assert "'bad'" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, StorageError)
        # Once the fault clears, a retry drains the remaining handle.
        catalog.save_xrtree = real_save
        assert manager.flush() == 1
        assert "bad" in catalog.names()

    def test_flush_propagates_non_storage_errors_immediately(
            self, manager, catalog):
        from repro.storage.faults import CrashPoint

        seeded_tree(manager, "a")
        seeded_tree(manager, "b")

        def crashing_save(name, tree):
            raise CrashPoint("simulated kill")

        catalog.save_xrtree = crashing_save
        with pytest.raises(CrashPoint):
            manager.flush()
        # The crash was not swallowed into an IndexManagerError.
        assert manager.is_dirty("a") or manager.is_dirty("b")


class TestContextManagers:
    def test_storage_context_with_statement(self, tmp_path):
        path = str(tmp_path / "ctx.pages")
        with StorageContext(page_size=512, path=path) as context:
            index = XRTreeIndex.build([entry(1, 10), entry(2, 5)], context)
            assert len(index) == 2
        assert context.disk.closed

    def test_storage_context_close_flushes_file_disk(self, tmp_path):
        path = str(tmp_path / "durable.pages")
        with StorageContext(page_size=512, path=path) as context:
            catalog = Catalog.create(context.pool)
            catalog.save_blob("b", b"payload")
            # no explicit flush: close() must write dirty pages back
        with StorageContext(page_size=512, path=path) as context:
            assert Catalog.open(context.pool).load_blob("b") == b"payload"

    def test_storage_context_index_stats_default(self):
        context = StorageContext()
        assert isinstance(context.index_stats, IndexManagerStats)
        assert context.index_stats.requests == 0

    def test_storage_context_closes_attached_manager(self, tmp_path):
        path = str(tmp_path / "mgr.pages")
        with StorageContext(page_size=512, path=path) as context:
            catalog = Catalog.create(context.pool)
            manager = context.attach_index_manager(
                IndexManager(catalog, pool=context.pool)
            )
            tree = manager.get_or_create_xrtree("t")
            manager.mark_dirty("t")
            tree.insert(entry(1, 10))
            assert context.index_stats is manager.stats
        assert manager.closed

    def test_xrtree_index_owned_context_closes(self, tmp_path):
        path = str(tmp_path / "idx.pages")
        with XRTreeIndex(context=None) as index:
            index.insert(entry(1, 10))
        assert index._owns_context
        # File-backed owned context: closing the index closes the disk.
        context = StorageContext(page_size=512, path=path)
        with XRTreeIndex(context=context) as index:
            index.insert(entry(1, 10))
        assert not context.disk.closed    # supplied context left open
        context.close()


class TestDatabaseThroughManager:
    DOC_A = ("<dept><emp><name>w</name><emp><name>x</name></emp></emp>"
             "</dept>")
    DOC_B = ("<dept><emp><name>y</name></emp><office><name>s</name>"
             "</office></dept>")

    def test_repeated_queries_hit_handle_cache(self):
        db = XmlDatabase.create()
        db.add_document(self.DOC_A)
        db.query("//emp//name")
        loads_after_first = db.index_stats.loads
        for _ in range(20):
            db.query("//emp//name")
        assert db.index_stats.loads == loads_after_first
        assert db.index_stats.hit_rate > 0.5

    def test_mutation_after_cached_query_sees_fresh_results(self):
        db = XmlDatabase.create()
        db.add_document(self.DOC_A)
        before = len(db.query("//emp//name"))
        db.add_document(self.DOC_B)
        after = db.query("//emp//name")
        assert len(after) == before + 1
        assert {m.doc_id for m in after.matches} == {1, 2}
        db.remove_document(1)
        final = db.query("//emp//name")
        assert all(m.doc_id == 2 for m in final.matches)

    def test_mutation_keeps_engine_instance(self):
        db = XmlDatabase.create()
        db.add_document(self.DOC_A)
        db.query("//emp")
        engine = db._engine
        assert engine is not None
        db.add_document(self.DOC_B)
        assert db._engine is engine      # invalidated, not discarded
        assert len(db.query("//emp")) == 3

    def test_wildcard_invalidated_on_mutation(self):
        db = XmlDatabase.create()
        db.add_document(self.DOC_A)
        count = len(db.query("//dept//*"))
        db.add_document(self.DOC_B)
        assert len(db.query("//dept//*")) > count

    def test_tiny_handle_budget_still_correct(self):
        db = XmlDatabase.create(handle_budget=1)
        db.add_document(self.DOC_A, name="alpha")
        db.add_document(self.DOC_B, name="beta")
        assert len(db.query("//emp//name")) == 3
        assert db.verify() == len(db.tags())
        db.remove_document(1)
        assert all(m.doc_id == 2 for m in db.query("//emp//name").matches)
        assert db.index_stats.evictions > 0
        assert db.index_stats.writebacks > 0

    def test_tiny_budget_persistence(self, tmp_path):
        path = str(tmp_path / "tiny.db")
        with XmlDatabase.create(path, page_size=1024,
                                handle_budget=1) as db:
            db.add_document(self.DOC_A, name="alpha")
            db.add_document(self.DOC_B, name="beta")
            expected = db.query("//emp//name").starts()
        with XmlDatabase.open(path, page_size=1024, handle_budget=1) as db:
            assert db.query("//emp//name").starts() == expected
            assert db.verify() == len(db.tags())

    def test_full_lifecycle_roundtrip(self, tmp_path):
        """create -> add -> query -> remove -> flush -> close -> open."""
        path = str(tmp_path / "cycle.db")
        with XmlDatabase.create(path, page_size=1024) as db:
            db.add_document(self.DOC_A, name="alpha")
            db.add_document(self.DOC_B, name="beta")
            db.query("//emp//name")
            db.remove_document(1)
            db.flush()
            expected = db.query("//emp//name").starts()
            expected_tags = db.tags()
        with XmlDatabase.open(path, page_size=1024) as db:
            assert db.verify() == len(db.tags())
            assert db.tags() == expected_tags
            assert db.query("//emp//name").starts() == expected

    def test_emptied_tag_leaves_no_stale_catalog_entry(self):
        db = XmlDatabase.create()
        db.add_document(self.DOC_A)         # has 'emp' but no 'office'
        db.add_document(self.DOC_B)         # the only doc with 'office'
        db.flush()                          # write-back catalogs the tags
        assert "tag:office" in db._catalog.names()
        db.remove_document(2)
        assert "office" not in db.tags()
        assert "tag:office" not in db._catalog.names()
        assert db.element_count("office") == 0
        assert db.entries_for_tag("office") == []

    def test_emptied_tag_consistent_after_reopen(self, tmp_path):
        path = str(tmp_path / "tomb.db")
        with XmlDatabase.create(path, page_size=1024) as db:
            db.add_document(self.DOC_A)
            db.add_document(self.DOC_B)
            db.remove_document(2)
        with XmlDatabase.open(path, page_size=1024) as db:
            assert "office" not in db.tags()
            assert "tag:office" not in db._catalog.names()
            assert len(db.query("//emp//name")) == 2
            # The tag can come back later without tripping on the tombstone.
            db.add_document(self.DOC_B, name="beta-again")
            assert "office" in db.tags()
            assert len(db.query("//office/name")) == 1

    def test_remove_all_then_readd_same_tags(self):
        db = XmlDatabase.create()
        db.add_document(self.DOC_A)
        db.remove_document(1)
        assert db.tags() == []
        assert all(not name.startswith("tag:")
                   for name in db._catalog.names())
        db.add_document(self.DOC_A)
        assert len(db.query("//emp//name")) == 2
