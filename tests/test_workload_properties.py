"""Property-based tests for workload derivations (repro.workloads).

The derivations rewrite element lists (removal, dummy injection,
renumbering); these tests verify the semantic invariants that make the
derived workloads valid experiment inputs.
"""

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.base import contains
from repro.workloads.datasets import JoinDataset
from repro.workloads.selectivity import (
    ancestor_chains,
    interleave_with_dummies,
    vary_ancestor_selectivity,
    vary_both_selectivity,
    vary_descendant_selectivity,
)
from tests.test_xrtree_property import tree_shape_to_entries

shapes = st.lists(st.integers(min_value=0, max_value=3),
                  min_size=4, max_size=100)
fractions = st.sampled_from([0.9, 0.5, 0.25, 0.05])


def dataset_from_shape(shape):
    entries = tree_shape_to_entries(shape)
    ancestors = [e for i, e in enumerate(entries) if i % 2 == 0]
    descendants = [e for i, e in enumerate(entries) if i % 2 == 1]
    return JoinDataset("prop", ancestors, descendants)


def assert_valid_region_set(entries):
    """Strict nesting: any two regions are disjoint or nested."""
    opened = []
    for element in sorted(entries, key=lambda e: e.start):
        while opened and opened[-1] < element.start:
            opened.pop()
        if opened:
            assert element.end < opened[-1], \
                "partial overlap at %d" % element.start
        opened.append(element.end)


class TestInterleaveWithDummies:
    @given(shapes, st.integers(min_value=0, max_value=200),
           st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_containment_preserved_and_dummies_sterile(self, shape,
                                                       dummy_count, seed):
        dataset = dataset_from_shape(shape)
        if not dataset.ancestors or not dataset.descendants:
            return
        kept = dataset.descendants[: max(1, len(dataset.descendants) // 2)]
        before = ancestor_chains(dataset.ancestors, kept)
        new_a, new_d = interleave_with_dummies(
            dataset.ancestors, kept, dummy_count, Random(seed), doc_id=1
        )
        # Sizes: ancestors unchanged, descendants = kept + dummies.
        assert len(new_a) == len(dataset.ancestors)
        assert len(new_d) == len(kept) + dummy_count
        # The whole renumbered set is still a valid strictly nested family.
        assert_valid_region_set(new_a + new_d)
        # Containment relationships among the real elements are preserved
        # (dummies carry the sentinel ptr).
        from repro.workloads.selectivity import DummyFactory

        real = [d for d in new_d if d.ptr != DummyFactory.DUMMY_PTR]
        after = ancestor_chains(new_a, sorted(real, key=lambda e: e.start))
        matched_before = sorted(len(c) for c in before)
        matched_after = sorted(len(c) for c in after)
        assert matched_before == matched_after
        # Dummies join nothing.
        dummies = [d for d in new_d if d.ptr == DummyFactory.DUMMY_PTR]
        assert len(dummies) == dummy_count
        for dummy in dummies:
            for ancestor in new_a:
                assert not contains(ancestor, dummy)

    @given(shapes)
    @settings(max_examples=30, deadline=None)
    def test_starts_unique_and_sorted(self, shape):
        dataset = dataset_from_shape(shape)
        if not dataset.ancestors or not dataset.descendants:
            return
        new_a, new_d = interleave_with_dummies(
            dataset.ancestors, dataset.descendants, 37, Random(3), doc_id=1
        )
        starts = [e.start for e in new_a] + [e.start for e in new_d]
        assert len(starts) == len(set(starts))
        assert [e.start for e in new_d] == sorted(e.start for e in new_d)


class TestProtocolInvariants:
    @given(shapes, fractions, st.integers(min_value=0, max_value=99))
    @settings(max_examples=40, deadline=None)
    def test_ancestor_protocol_valid_output(self, shape, fraction, seed):
        dataset = dataset_from_shape(shape)
        if len(dataset.ancestors) < 3 or len(dataset.descendants) < 3:
            return
        workload = vary_ancestor_selectivity(dataset, fraction, seed=seed)
        assert_valid_region_set(workload.ancestors + workload.descendants)
        assert 0.0 <= workload.join_a <= 1.0
        assert 0.0 <= workload.join_d <= 1.0
        starts = [e.start for e in workload.descendants]
        assert starts == sorted(starts)

    @given(shapes, fractions, st.integers(min_value=0, max_value=99))
    @settings(max_examples=40, deadline=None)
    def test_descendant_protocol_keeps_sizes(self, shape, fraction, seed):
        dataset = dataset_from_shape(shape)
        if len(dataset.ancestors) < 3 or len(dataset.descendants) < 3:
            return
        workload = vary_descendant_selectivity(dataset, fraction, seed=seed)
        assert len(workload.descendants) == len(dataset.descendants)
        assert len(workload.ancestors) == len(dataset.ancestors)
        assert_valid_region_set(workload.ancestors + workload.descendants)

    @given(shapes, fractions, st.integers(min_value=0, max_value=99))
    @settings(max_examples=40, deadline=None)
    def test_both_protocol_keeps_sizes(self, shape, fraction, seed):
        dataset = dataset_from_shape(shape)
        if len(dataset.ancestors) < 3 or len(dataset.descendants) < 3:
            return
        workload = vary_both_selectivity(dataset, fraction, seed=seed)
        assert len(workload.descendants) == len(dataset.descendants)
        assert len(workload.ancestors) == len(dataset.ancestors)
        assert_valid_region_set(workload.ancestors + workload.descendants)

    @given(shapes, fractions)
    @settings(max_examples=30, deadline=None)
    def test_joins_agree_on_derived_workloads(self, shape, fraction):
        from repro.core.api import oracle_join, structural_join
        from repro.joins.base import sort_pairs

        dataset = dataset_from_shape(shape)
        if len(dataset.ancestors) < 3 or len(dataset.descendants) < 3:
            return
        workload = vary_both_selectivity(dataset, fraction, seed=1)
        expected = oracle_join(workload.ancestors, workload.descendants)
        for algorithm in ("stack-tree", "xr-stack"):
            outcome = structural_join(workload.ancestors,
                                      workload.descendants,
                                      algorithm=algorithm)
            assert sort_pairs(outcome.pairs) == expected
