"""Tests for the disk-time model (repro.storage.timemodel)."""

import pytest

from repro.storage.timemodel import DiskTimeModel


class TestDiskTimeModel:
    def test_zero_activity_is_zero_time(self):
        assert DiskTimeModel().elapsed_seconds(0) == 0.0

    def test_reads_dominate(self):
        model = DiskTimeModel(read_ms=8.0, write_ms=0.0,
                              cpu_us_per_element=0.0)
        assert model.elapsed_seconds(1000) == pytest.approx(8.0)

    def test_writes_counted(self):
        model = DiskTimeModel(read_ms=0.0, write_ms=5.0,
                              cpu_us_per_element=0.0)
        assert model.elapsed_seconds(0, writebacks=200) == pytest.approx(1.0)

    def test_cpu_charge(self):
        model = DiskTimeModel(read_ms=0.0, write_ms=0.0,
                              cpu_us_per_element=2.0)
        assert model.elapsed_seconds(0, 0, 500000) == pytest.approx(1.0)

    def test_components_additive(self):
        model = DiskTimeModel(read_ms=1.0, write_ms=1.0,
                              cpu_us_per_element=1000.0)
        assert model.elapsed_seconds(1000, 1000, 1000) == pytest.approx(3.0)

    def test_frozen(self):
        model = DiskTimeModel()
        with pytest.raises(Exception):
            model.read_ms = 1.0
