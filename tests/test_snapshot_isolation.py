"""Concurrent snapshot consistency (seeded property test).

Reader threads pin snapshots in the middle of a write storm and replay
their whole query surface — tags, per-tag entry sets, a structural join
and a session-engine path query — against a single-threaded oracle
database advanced to the same commit sequence.  Any MVCC defect — a
pre-image recorded late, a torn apply, a version chain pruned under a
live pin — shows up as a reader observing a state no commit ever
produced.

``CHAOS_SEED`` reproduces a CI failure locally; ``SNAPSHOT_TRIALS``
scales the number of seeded schedules (CI's concurrency-stress job runs
50).
"""

import os
import random
import threading
import time

import pytest

from repro.core.api import structural_join
from repro.core.database import XmlDatabase
from repro.joins.base import sort_pairs
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.pages import RawPage
from repro.xmldata.dtd import DEPARTMENT_DTD
from repro.xmldata.generator import GeneratorConfig, XmlGenerator
from repro.xmldata.parser import serialize_document

SEED = int(os.environ.get("CHAOS_SEED", "20030305"))
TRIALS = int(os.environ.get("SNAPSHOT_TRIALS", "5"))

# A reader thread dying (e.g. a ChecksumError on a torn snapshot read)
# is a consistency violation, not a warning.
pytestmark = pytest.mark.filterwarnings(
    "error::pytest.PytestUnhandledThreadExceptionWarning")

PAGE_SIZE = 512
BUFFER_PAGES = 32
READERS = 8
READS_PER_READER = 4


def generate_docs(rng, count=4):
    """(name, xml) pairs of seeded random department documents."""
    config = GeneratorConfig(mean_repeat=rng.uniform(1.5, 2.5),
                             recursion_decay=0.6,
                             max_depth=rng.randrange(8, 16))
    docs = []
    for index in range(count):
        document = XmlGenerator(DEPARTMENT_DTD, config,
                                seed=rng.randrange(10 ** 6)) \
            .generate(rng.randrange(100, 250))
        docs.append(("doc-%d" % index, serialize_document(document)))
    return docs


def observe(surface):
    """Everything a reader can see, in one comparable structure.

    ``surface`` is anything with the session query surface (an
    ``XmlDatabase`` oracle or a ``Session``): tags, entry sets, one
    structural join, and a path query through the surface's own engine.
    """
    tags = surface.tags()
    entries = {tag: tuple(surface.entries_for_tag(tag)) for tag in tags}
    join = None
    if "employee" in entries and "name" in entries:
        outcome = structural_join(list(entries["employee"]),
                                  list(entries["name"]),
                                  algorithm="xr-stack")
        join = tuple(sort_pairs(outcome.pairs))
    matches = tuple(sorted(
        (e.doc_id, e.start, e.end)
        for e in surface.query("//employee/name").matches))
    return {"tags": tuple(tags), "entries": entries,
            "join": join, "matches": matches}


def build_expectations(docs, make_db):
    """Oracle state per commit sequence: seq 1 = empty, seq 1+k = docs[:k]."""
    oracle = make_db("oracle")
    try:
        oracle.flush()
        assert oracle.commit_sequence == 1
        expected = {1: observe(oracle)}
        for index, (name, xml) in enumerate(docs):
            oracle.add_document(xml, name=name)
            oracle.flush()
            expected[index + 2] = observe(oracle)
        return expected
    finally:
        oracle.close()


def run_storm(db, docs, expected, trial):
    """Readers pin snapshots while the main thread commits the docs."""
    failures = []
    barrier = threading.Barrier(READERS + 1)

    def reader(index):
        rng = random.Random(SEED + 7919 * trial + index)
        barrier.wait()
        for _ in range(READS_PER_READER):
            with db.session() as session:
                sequence = session.sequence
                state = observe(session)
                if state != expected[sequence]:
                    failures.append((index, sequence))
                # The view must stay pinned even after more commits land.
                time.sleep(rng.uniform(0.0, 0.002))
                if observe(session) != expected[sequence]:
                    failures.append((index, sequence, "drifted"))

    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(READERS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    for name, xml in docs:
        db.add_document(xml, name=name)
        db.flush()
    for thread in threads:
        thread.join()
    return failures


@pytest.mark.parametrize("trial", range(TRIALS))
def test_concurrent_snapshots_match_oracle(trial):
    rng = random.Random(SEED + 1000 * trial)
    docs = generate_docs(rng)

    def make_db(_label):
        return XmlDatabase.create(page_size=PAGE_SIZE,
                                  buffer_pages=BUFFER_PAGES)

    expected = build_expectations(docs, make_db)
    db = make_db("storm")
    try:
        db.flush()
        failures = run_storm(db, docs, expected, trial)
        assert not failures, failures[:5]
        assert db.commit_sequence == 1 + len(docs)
        # Every pin released: the version store must drain completely.
        versions = db._context.disk.versions
        assert versions.pin_count == 0
        assert versions.retained_images == 0
        # And the final live state is the full-prefix oracle state.
        with db.session(snapshot=False) as live:
            assert observe(live) == expected[1 + len(docs)]
    finally:
        db.close()


def test_concurrent_snapshots_match_oracle_file_backed(tmp_path):
    rng = random.Random(SEED)
    docs = generate_docs(rng, count=3)

    def make_db(label):
        return XmlDatabase.create(str(tmp_path / ("%s.db" % label)),
                                  page_size=PAGE_SIZE,
                                  buffer_pages=BUFFER_PAGES)

    expected = build_expectations(docs, make_db)
    db = make_db("storm")
    try:
        db.flush()
        failures = run_storm(db, docs, expected, trial=0)
        assert not failures, failures[:5]
        versions = db._context.disk.versions
        assert versions.pin_count == 0
        assert versions.retained_images == 0
    finally:
        db.close()


def test_buffer_pool_latch_contention_smoke():
    """Many threads hammer one latched pool; every read stays intact."""
    disk = InMemoryDisk(page_size=PAGE_SIZE)
    pool = BufferPool(disk, capacity=8, latching=True)
    page_ids = []
    for index in range(32):
        page = pool.new_page(RawPage(index.to_bytes(8, "big")))
        pool.unpin(page)
        page_ids.append(page.page_id)
    pool.flush_all()

    errors = []
    barrier = threading.Barrier(8)

    def hammer(seed):
        rng = random.Random(seed)
        barrier.wait()
        for _ in range(300):
            page_id = rng.choice(page_ids)
            page = pool.fetch(page_id)
            try:
                value = int.from_bytes(page.payload[:8], "big")
                if page_ids[value] != page_id:
                    errors.append((page_id, value))
            finally:
                pool.unpin(page)

    threads = [threading.Thread(target=hammer, args=(SEED + i,))
               for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert pool.latch_waits >= 0  # diagnostic counter, never negative

    unlatched = BufferPool(disk, capacity=8, latching=False)
    assert unlatched.latch_waits == 0
