"""Tests for multi-document corpora (repro.xmldata.corpus)."""

import pytest

from repro.core import structural_join
from repro.core.api import oracle_join
from repro.joins.base import sort_pairs
from repro.xmldata.corpus import Corpus
from repro.xmldata.parser import parse_document


def two_document_corpus():
    corpus = Corpus()
    corpus.add(parse_document("<a><b><c/></b><c/></a>"))
    corpus.add(parse_document("<a><b><c/><c/></b></a>"))
    return corpus


class TestCorpusBasics:
    def test_add_assigns_sequential_ids(self):
        corpus = two_document_corpus()
        assert len(corpus) == 2
        assert corpus.document(1).root.tag == "a"
        assert corpus.document(2).root.tag == "a"

    def test_offsets_are_disjoint(self):
        corpus = two_document_corpus()
        first = corpus.entries_for_tag("a")
        assert first[0].doc_id == 1
        assert first[1].doc_id == 2
        assert first[0].end < first[1].start  # disjoint region ranges

    def test_entries_sorted_globally(self):
        corpus = two_document_corpus()
        entries = corpus.entries_for_tag("c")
        starts = [e.start for e in entries]
        assert starts == sorted(starts)
        assert len(entries) == 4

    def test_unique_starts_across_documents(self):
        corpus = two_document_corpus()
        everything = []
        for tag in corpus.tags():
            everything.extend(corpus.entries_for_tag(tag))
        starts = [e.start for e in everything]
        assert len(starts) == len(set(starts))

    def test_tags_and_counts(self):
        corpus = two_document_corpus()
        assert corpus.tags() == {"a", "b", "c"}
        assert corpus.element_count() == 4 + 4

    def test_locate_roundtrip(self):
        corpus = two_document_corpus()
        entry = corpus.entries_for_tag("b")[1]  # from document 2
        doc_id, start, end = corpus.locate(entry)
        assert doc_id == 2
        local = [n for n in corpus.document(2) if n.tag == "b"][0]
        assert (start, end) == (local.start, local.end)

    def test_documents_not_mutated(self):
        corpus = Corpus()
        document = parse_document("<a><b/></a>")
        before = [(n.start, n.end) for n in document]
        corpus.add(parse_document("<x><y/></x>"))
        corpus.add(document)
        corpus.entries_for_tag("b")
        assert [(n.start, n.end) for n in document] == before


class TestCorpusJoins:
    @pytest.mark.parametrize("algorithm",
                             ["stack-tree", "mpmgjn", "b+", "xr-stack"])
    def test_join_never_crosses_documents(self, algorithm):
        corpus = two_document_corpus()
        ancestors = corpus.entries_for_tag("b")
        descendants = corpus.entries_for_tag("c")
        outcome = structural_join(ancestors, descendants,
                                  algorithm=algorithm)
        assert all(a.doc_id == d.doc_id for a, d in outcome.pairs)
        assert sort_pairs(outcome.pairs) == oracle_join(ancestors,
                                                        descendants)
        # doc 1: b contains one c; doc 2: b contains two c's.
        assert outcome.stats.pairs == 3

    def test_corpus_of_generated_documents(self):
        from repro.xmldata.dtd import DEPARTMENT_DTD
        from repro.xmldata.generator import XmlGenerator

        corpus = Corpus()
        generator = XmlGenerator(DEPARTMENT_DTD, seed=2)
        for document in generator.generate_corpus(3, 600):
            corpus.add(document)
        ancestors = corpus.entries_for_tag("employee")
        descendants = corpus.entries_for_tag("name")
        outcome = structural_join(ancestors, descendants,
                                  algorithm="xr-stack")
        assert sort_pairs(outcome.pairs) == oracle_join(ancestors,
                                                        descendants)
        assert {e.doc_id for e in ancestors} == {1, 2, 3}
