"""Tracer behaviour: nesting, ring wraparound, JSONL schema, no-op cost."""

import io
import json

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    Tracer,
)
from repro.obs.validate import validate_jsonl


def test_span_records_begin_and_end_with_duration():
    tracer = Tracer()
    with tracer.span("query", path="//a//b"):
        pass
    records = tracer.records()
    assert [r["phase"] for r in records] == ["begin", "end"]
    begin, end = records
    assert begin["kind"] == end["kind"] == "query"
    assert begin["span"] == end["span"]
    assert end["dur"] >= 0
    assert begin["fields"]["path"] == "//a//b"
    assert all(r["v"] == TRACE_SCHEMA_VERSION for r in records)


def test_nested_spans_carry_parent_ids():
    tracer = Tracer()
    with tracer.span("query") as outer:
        with tracer.span("operator") as inner:
            tracer.event("page-fetch", page=3, hit=True)
    records = tracer.records()
    inner_begin = next(r for r in records
                       if r["kind"] == "operator" and r["phase"] == "begin")
    assert inner_begin["parent"] == outer.span_id
    event = next(r for r in records if r["phase"] == "event")
    assert event["parent"] == inner.span_id
    # After both exits the stack is empty: a fresh span has no parent.
    with tracer.span("query") as fresh:
        assert fresh.parent_id is None


def test_note_fields_ride_the_end_record():
    tracer = Tracer()
    with tracer.span("operator") as span:
        span.note(rows=42)
    end = tracer.records()[-1]
    assert end["fields"]["rows"] == 42


def test_ring_wraparound_keeps_newest_and_counts_dropped():
    tracer = Tracer(capacity=4)
    for index in range(10):
        tracer.event("tick", n=index)
    assert len(tracer) == 4
    assert tracer.dropped == 6
    assert tracer.emitted == 10
    kept = [r["fields"]["n"] for r in tracer.records()]
    assert kept == [6, 7, 8, 9]  # oldest-first, newest survive


def test_clear_resets_ring_and_counters():
    tracer = Tracer(capacity=2)
    for _ in range(5):
        tracer.event("tick")
    tracer.clear()
    assert len(tracer) == 0 and tracer.dropped == 0 and tracer.emitted == 0


def test_disabled_tracer_is_a_no_op_sharing_the_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.span("query", path="//a")
    assert span is NULL_SPAN
    assert tracer.span("another") is span  # one shared object, no allocs
    with span:
        span.note(ignored=True)
        tracer.event("page-fetch", page=1)
    assert len(tracer) == 0 and tracer.emitted == 0


def test_enable_disable_toggle():
    tracer = Tracer(enabled=False)
    tracer.event("lost")
    tracer.enable()
    tracer.event("kept")
    tracer.disable()
    tracer.event("lost-again")
    assert [r["kind"] for r in tracer.records()] == ["kept"]


def test_exception_inside_span_is_recorded_and_reraised():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("operator"):
            raise ValueError("boom")
    end = tracer.records()[-1]
    assert end["phase"] == "end"
    assert end["fields"]["error"] == "ValueError"


def test_jsonl_export_round_trips_through_the_validator():
    tracer = Tracer()
    with tracer.span("query", path="//a//b"):
        tracer.event("plan", strategy="xr-stack", steps=2)
        with tracer.span("operator", name="descendant-join //b"):
            tracer.event("page-fetch", page=0, hit=False)
    text = tracer.export_jsonl()
    assert validate_jsonl(text) == []
    lines = [json.loads(line) for line in text.strip().splitlines()]
    assert len(lines) == len(tracer) + 1  # records + meta header
    assert lines[0]["kind"] == "trace-meta"
    assert lines[0]["capacity"] == tracer.capacity
    assert lines[0]["dropped"] == 0


def test_jsonl_export_to_file_object():
    tracer = Tracer()
    tracer.event("tick")
    buffer = io.StringIO()
    assert tracer.export_jsonl(buffer) is None
    assert validate_jsonl(buffer.getvalue()) == []


def test_jsonl_export_to_path(tmp_path):
    tracer = Tracer()
    tracer.event("tick")
    target = tmp_path / "trace.jsonl"
    tracer.export_jsonl(str(target))
    assert validate_jsonl(target.read_text()) == []


def test_wrapped_ring_still_validates():
    """Overwritten begins must not fail pairing: the validator relaxes
    span pairing when the meta header reports drops."""
    tracer = Tracer(capacity=3)
    for index in range(5):
        with tracer.span("operator", n=index):
            pass
    assert tracer.dropped > 0
    assert validate_jsonl(tracer.export_jsonl()) == []


def test_validator_rejects_garbage():
    assert validate_jsonl("not json\n")  # non-empty problem list
    bad_version = json.dumps({"v": 999, "kind": "trace-meta",
                              "phase": "meta", "capacity": 1,
                              "emitted": 0, "dropped": 0}) + "\n"
    assert any("schema version" in problem
               for problem in validate_jsonl(bad_version))


def test_timestamps_are_monotonic_in_export_order():
    tracer = Tracer()
    for _ in range(50):
        tracer.event("tick")
    stamps = [r["ts"] for r in tracer.records()]
    assert stamps == sorted(stamps)


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)
