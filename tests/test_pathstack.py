"""Tests for the holistic PathStack executor (repro.query.pathstack)."""

import itertools

import pytest

from repro.query import PathQueryEngine, parse_path
from repro.query.path import Axis
from repro.query.pathstack import evaluate_path_stack, path_stack
from repro.xmldata.parser import parse_document
from tests.test_xrtree_property import tree_shape_to_entries

SOURCE = """
<dept>
  <emp><name>w</name>
    <emp><name>x</name>
      <emp><name>y</name></emp>
    </emp>
  </emp>
  <emp><name>z</name></emp>
  <office><name>sign</name></office>
</dept>
"""


def oracle_solutions(document, path_text):
    """Brute-force all embeddings of a linear path pattern."""
    expression = parse_path(path_text)
    steps = expression.steps
    candidates = [document.elements_by_tag(step.tag) for step in steps]
    if steps[0].axis is Axis.CHILD:
        candidates[0] = [e for e in candidates[0] if e.level == 0]
    out = []
    for combo in itertools.product(*candidates):
        ok = True
        for (step, upper), lower in zip(zip(steps[1:], combo), combo[1:]):
            if not (upper.start < lower.start and lower.end < upper.end):
                ok = False
                break
            if step.axis is Axis.CHILD and upper.level != lower.level - 1:
                ok = False
                break
        # Re-check axes properly: steps[i].axis links combo[i-1] -> combo[i].
        if ok:
            for i in range(1, len(combo)):
                upper, lower = combo[i - 1], combo[i]
                if not (upper.start < lower.start and lower.end < upper.end):
                    ok = False
                    break
                if steps[i].axis is Axis.CHILD and \
                        upper.level != lower.level - 1:
                    ok = False
                    break
        if ok:
            out.append(tuple((e.start, e.end) for e in combo))
    return sorted(out)


def run_pathstack(document, path_text):
    result = evaluate_path_stack(document, path_text)
    return sorted(
        tuple((e.start, e.end) for e in solution)
        for solution in result.solutions
    )


@pytest.fixture(scope="module")
def document():
    return parse_document(SOURCE)


class TestAgainstOracle:
    @pytest.mark.parametrize("path", [
        "//emp//name",
        "//emp/name",
        "//dept//emp//name",
        "//emp//emp",
        "//emp//emp//name",
        "//emp/emp/name",
        "/dept/emp",
        "//dept//name",
    ])
    def test_small_document(self, document, path):
        assert run_pathstack(document, path) == \
            oracle_solutions(document, path)

    def test_generated_documents(self):
        from repro.workloads import department_dataset

        doc = department_dataset(700, seed=51).document
        for path in ("//employee//name", "//employee/name",
                     "//department//employee//employee",
                     "//employee//email"):
            assert run_pathstack(doc, path) == oracle_solutions(doc, path)

    def test_random_shapes_single_tag(self):
        # Self-paths over one tag exercise the same-element tie-breaking.
        from repro.xmldata.model import Document, Element, annotate_regions

        for shape in ([1, 2, 1, 2], [3, 3, 3], [2, 2, 2, 2, 2]):
            entries = tree_shape_to_entries(shape)

            class _Doc:
                def entries_for_tag(self, tag):
                    return entries

            result = path_stack([entries, entries],
                                [Axis.DESCENDANT, Axis.DESCENDANT])
            expected = sum(
                1
                for a in entries for d in entries
                if a.start < d.start and d.end < a.end
            )
            assert result.count == expected


class TestApi:
    def test_count_only_mode(self, document):
        collected = evaluate_path_stack(document, "//emp//name")
        counted = evaluate_path_stack(document, "//emp//name",
                                      collect=False)
        assert counted.count == collected.count
        assert counted.solutions == []

    def test_last_elements_match_pipeline_engine(self):
        from repro.workloads import department_dataset

        doc = department_dataset(900, seed=52).document
        engine = PathQueryEngine(doc)
        for path in ("//employee//name", "//department//employee/name",
                     "//employee//employee"):
            holistic = evaluate_path_stack(doc, path)
            pipeline = engine.evaluate(path)
            assert [e.start for e in holistic.last_elements()] == \
                pipeline.starts()

    def test_predicates_rejected(self, document):
        with pytest.raises(ValueError):
            evaluate_path_stack(document, "//emp[name]")

    def test_empty_stream_short_circuits(self, document):
        result = evaluate_path_stack(document, "//emp//ghost")
        assert result.count == 0

    def test_stats_track_elements(self, document):
        result = evaluate_path_stack(document, "//emp//name")
        assert result.stats.elements_scanned > 0

    def test_solution_count_can_exceed_distinct_matches(self, document):
        # y's name has three emp ancestors: three path solutions, one
        # distinct final element.
        result = evaluate_path_stack(document, "//emp//name")
        assert result.count > len(result.last_elements())
