"""Crash-recovery sweep: kill the engine at every physical write point.

The central claim of the journaled commit protocol is that a crash at *any*
physical page write leaves the database file in some committed state — never
a torn mixture.  These tests enforce that claim exhaustively: a probe run
counts every physical write a fixed workload performs, then the workload is
re-run once per write with a :class:`FaultInjectingDisk` killing (and
possibly tearing) exactly that write, and the file is reopened and checked.

The sweep is seeded: set ``CHAOS_SEED`` to reproduce a CI failure locally.
"""

import os
import random
import shutil

import pytest

from repro.core.database import XmlDatabase
from repro.storage.buffer import BufferPool
from repro.storage.disk import FileDisk
from repro.storage.errors import ChecksumError
from repro.storage.faults import CrashPoint, FaultInjectingDisk

SEED = int(os.environ.get("CHAOS_SEED", "20030305"))

PAGE_SIZE = 512
BUFFER_PAGES = 32

XML_A = (
    "<dept><team><name>db</name>"
    "<member><name>ada</name><email>a@x</email></member>"
    "<member><name>bob</name></member></team></dept>"
)
XML_B = (
    "<dept><team><name>ir</name>"
    "<member><name>cyd</name><email>c@x</email></member>"
    "</team><note>restructure</note></dept>"
)

#: Document-name sets a recovered database may legally show.  The workload
#: commits at each flush/close, so recovery must land exactly on one of
#: these boundaries — anything else is a torn commit.
VALID_STATES = ([], ["a"], ["a", "b"], ["b"])


def make_base(tmp_path):
    """A committed, empty database file the sweep clones for every run."""
    base = str(tmp_path / "base.db")
    XmlDatabase.create(path=base, page_size=PAGE_SIZE,
                       buffer_pages=BUFFER_PAGES).close()
    return base


def open_wrapped(path, **fault_options):
    """The base database reopened behind a fault-injecting wrapper."""
    inner = FileDisk(path, page_size=PAGE_SIZE)
    disk = FaultInjectingDisk(inner, **fault_options)
    db = XmlDatabase.open(disk=disk, page_size=PAGE_SIZE,
                          buffer_pages=BUFFER_PAGES)
    return db, disk


def run_workload(db):
    """Fixed mutation sequence with three commit points (flush x2, close)."""
    db.add_document(XML_A, name="a")
    db.flush()
    db.add_document(XML_B, name="b")
    db.flush()
    db.remove_document(1)
    db.close()


def assert_consistent(path):
    """Reopen ``path`` plainly and check every durability invariant."""
    db = XmlDatabase.open(path, page_size=PAGE_SIZE,
                          buffer_pages=BUFFER_PAGES)
    try:
        stats = db.recovery_stats
        assert stats is not None
        names = [name for _id, name in db.documents()]
        assert names in [list(state) for state in VALID_STATES], names
        # Every stored tree must decode and satisfy the XR-tree invariants.
        db.verify()
        for tag in db.tags():
            assert db.entries_for_tag(tag)
        return names, stats
    finally:
        db.close()


class TestCrashSweep:
    def test_every_physical_write_is_a_safe_crash_point(self, tmp_path):
        rng = random.Random(SEED)
        base = make_base(tmp_path)

        # Probe run: count the workload's physical page writes.
        probe = str(tmp_path / "probe.db")
        shutil.copyfile(base, probe)
        db, disk = open_wrapped(probe)
        run_workload(db)
        total = disk.op_counts["physical-write"]
        assert total > 10  # the workload must be worth sweeping

        replayed = discarded = 0
        for kill in range(1, total + 1):
            path = str(tmp_path / "run.db")
            shutil.copyfile(base, path)
            journal = path + ".journal"
            if os.path.exists(journal):
                os.remove(journal)
            torn = rng.choice([None, 1, 7, rng.randrange(PAGE_SIZE)])
            db, disk = open_wrapped(path, kill_after=kill, torn_bytes=torn)
            with pytest.raises(CrashPoint):
                run_workload(db)
            disk.abort()
            _names, stats = assert_consistent(path)
            replayed += stats.replayed_groups
            discarded += stats.discarded_groups

        # The sweep must actually exercise both recovery paths.
        assert replayed > 0
        assert discarded > 0

    def test_unkilled_workload_reaches_final_state(self, tmp_path):
        base = make_base(tmp_path)
        path = str(tmp_path / "clean.db")
        shutil.copyfile(base, path)
        db, disk = open_wrapped(path)
        run_workload(db)
        names, stats = assert_consistent(path)
        assert names == ["b"]
        assert stats.clean


class TestBitRot:
    def test_every_flipped_bit_is_caught_as_checksum_error(self, tmp_path):
        rng = random.Random(SEED + 1)
        path = str(tmp_path / "rot.db")
        db = XmlDatabase.create(path=path, page_size=PAGE_SIZE,
                                buffer_pages=BUFFER_PAGES)
        db.add_document(XML_A, name="a")
        db.add_document(XML_B, name="b")
        db.close()

        disk = FaultInjectingDisk(FileDisk(path, page_size=PAGE_SIZE))
        try:
            live = sorted(disk.inner._live)
            assert len(live) > 5
            pool = BufferPool(disk, capacity=4)
            for page_id in live:
                pristine = disk.peek(page_id)
                bit = rng.randrange(PAGE_SIZE * 8)
                disk.flip_bit(page_id, bit)
                with pytest.raises(ChecksumError) as excinfo:
                    pool.fetch(page_id)
                assert excinfo.value.page_id == page_id
                disk.poke(page_id, pristine)  # restore for the next page
                pool.clear()
            # With every flip restored the database is intact again.
        finally:
            disk.close()
        db = XmlDatabase.open(path, page_size=PAGE_SIZE,
                              buffer_pages=BUFFER_PAGES)
        assert [name for _id, name in db.documents()] == ["a", "b"]
        db.verify()
        db.close()


class TestJournalRecoveryPaths:
    def _committed_v1(self, tmp_path):
        path = str(tmp_path / "j.db")
        inner = FileDisk(path, page_size=256)
        disk = FaultInjectingDisk(inner)
        page = disk.allocate()
        disk.write(page, b"v1")
        inner.sync()  # commit 1: 2 journal writes + 2 applies
        return path, inner, disk, page

    def test_crash_during_apply_replays_group(self, tmp_path):
        path, inner, disk, page = self._committed_v1(tmp_path)
        disk.write(page, b"v2")
        disk.kill_after = disk.op_counts["physical-write"] + 3  # 1st apply
        with pytest.raises(CrashPoint):
            inner.sync()
        disk.abort()
        with FileDisk(path, page_size=256) as reopened:
            assert reopened.recovery_stats.replayed_groups == 1
            assert reopened.recovery_stats.replayed_pages >= 2
            assert reopened.read(page).startswith(b"v2")

    def test_torn_journal_write_discards_group(self, tmp_path):
        path, inner, disk, page = self._committed_v1(tmp_path)
        disk.write(page, b"v2")
        disk.kill_after = disk.op_counts["physical-write"] + 1  # journaling
        disk.torn_bytes = 3
        with pytest.raises(CrashPoint):
            inner.sync()
        disk.abort()
        with FileDisk(path, page_size=256) as reopened:
            assert reopened.recovery_stats.discarded_groups == 1
            assert reopened.recovery_stats.replayed_groups == 0
            assert reopened.read(page).startswith(b"v1")

    def test_dead_wrapper_refuses_everything(self, tmp_path):
        path, inner, disk, page = self._committed_v1(tmp_path)
        disk.crash_now()
        for operation in (lambda: disk.read(page),
                          lambda: disk.write(page, b"x"),
                          lambda: disk.allocate(),
                          lambda: disk.free(page),
                          lambda: disk.sync()):
            with pytest.raises(CrashPoint):
                operation()
        disk.close()  # must abort, not commit
        with FileDisk(path, page_size=256) as reopened:
            assert reopened.read(page).startswith(b"v1")


class TestFreeListPersistence:
    def test_freed_pages_recycle_across_reopen(self, tmp_path):
        path = str(tmp_path / "f.db")
        with FileDisk(path, page_size=128) as disk:
            ids = [disk.allocate() for _ in range(6)]
            disk.free(ids[1])
            disk.free(ids[4])
        with FileDisk(path, page_size=128) as disk:
            assert disk.recovery_stats.free_pages_recovered == 2
            reused = {disk.allocate(), disk.allocate()}
            assert reused == {ids[1], ids[4]}
            fresh = disk.allocate()
            assert fresh not in ids


class TestJournalDirectoryDurability:
    def test_first_commit_fsyncs_parent_directory_once(self, tmp_path):
        path = str(tmp_path / "d.db")
        inner = FileDisk(path, page_size=256)
        disk = FaultInjectingDisk(inner)
        page = disk.allocate()
        disk.write(page, b"v1")
        inner.sync()
        assert inner._journal.dir_fsyncs == 1  # journal entry made durable
        disk.write(page, b"v2")
        inner.sync()
        assert inner._journal.dir_fsyncs == 1  # only the *first* commit
        disk.close()

    def test_preexisting_journal_needs_no_directory_fsync(self, tmp_path):
        path = str(tmp_path / "d.db")
        with FileDisk(path, page_size=256) as disk:
            page = disk.allocate()
            disk.write(page, b"v1")
        # The journal file survives close (truncated), so its directory
        # entry is already durable on reopen.
        with FileDisk(path, page_size=256) as disk:
            disk.write(page, b"v2")
            disk.sync()
            assert disk._journal.dir_fsyncs == 0

    def test_crash_before_dir_fsync_still_recovers(self, tmp_path):
        # A torn group written to a never-synced journal file is the worst
        # case the dir fsync guards against: recovery must fall back to
        # the pre-commit state, never half-apply.
        path = str(tmp_path / "d.db")
        inner = FileDisk(path, page_size=256)
        disk = FaultInjectingDisk(inner)
        page = disk.allocate()
        disk.write(page, b"v1")
        inner.sync()
        disk.write(page, b"v2")
        disk.kill_after = disk.op_counts["physical-write"] + 1
        disk.torn_bytes = 5
        with pytest.raises(CrashPoint):
            inner.sync()
        disk.abort()
        with FileDisk(path, page_size=256) as reopened:
            assert reopened.read(page).startswith(b"v1")


class TestTornGroupAccounting:
    def test_torn_trailing_group_is_counted_not_fatal(self, tmp_path):
        path = str(tmp_path / "t.db")
        inner = FileDisk(path, page_size=256)
        disk = FaultInjectingDisk(inner)
        page = disk.allocate()
        disk.write(page, b"v1")
        inner.sync()
        disk.write(page, b"v2")
        disk.kill_after = disk.op_counts["physical-write"] + 1
        disk.torn_bytes = 4
        with pytest.raises(CrashPoint):
            inner.sync()
        disk.abort()
        with FileDisk(path, page_size=256) as reopened:
            assert reopened.recovery_stats.torn_groups == 1
            assert reopened.recovery_stats.discarded_groups == 1
            assert reopened.read(page).startswith(b"v1")

    def test_torn_groups_surface_in_database_stats_and_metrics(self, tmp_path):
        path = str(tmp_path / "t.db")
        db = XmlDatabase.create(path, page_size=PAGE_SIZE,
                                buffer_pages=BUFFER_PAGES)
        db.add_document(XML_A, name="a")
        db.close()
        # Fake the torn tail of a crashed commit: valid magic, garbage body.
        with open(path + ".journal", "wb") as handle:
            handle.write(b"XRJL" + b"\x07" * 30)
        db = XmlDatabase.open(path, page_size=PAGE_SIZE,
                              buffer_pages=BUFFER_PAGES)
        try:
            assert db.recovery_stats.torn_groups == 1
            assert db.stats()["recovery"]["torn_groups"] == 1
            assert "repro_journal_torn_groups 1" in db.metrics_text()
            assert [n for _i, n in db.documents()] == ["a"]
        finally:
            db.close()
