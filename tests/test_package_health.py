"""Package-level health checks: imports, exports, and API consistency."""

import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


class TestImports:
    def test_every_module_imports(self):
        failures = []
        for name in _all_modules():
            if name.endswith("__main__"):
                continue  # CLIs run main() on import via runpy only
            try:
                importlib.import_module(name)
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append((name, exc))
        assert not failures, failures

    def test_module_count_is_substantial(self):
        assert len(_all_modules()) >= 30

    def test_all_exports_resolve(self):
        for package_name in ("repro", "repro.storage", "repro.xmldata",
                             "repro.indexes", "repro.joins",
                             "repro.workloads", "repro.query",
                             "repro.core", "repro.bench"):
            package = importlib.import_module(package_name)
            for symbol in getattr(package, "__all__", []):
                assert hasattr(package, symbol), (package_name, symbol)


class TestApiConsistency:
    def test_algorithms_tuple_matches_dispatch(self, dept_data):
        from repro.core.api import ALGORITHMS, structural_join

        for algorithm in ALGORITHMS:
            outcome = structural_join(dept_data.ancestors[:50],
                                      dept_data.descendants[:50],
                                      algorithm=algorithm)
            assert outcome.algorithm == algorithm

    def test_stack_tree_anc_through_public_api(self, dept_data):
        from repro.core import structural_join
        from repro.core.api import oracle_join
        from repro.joins.base import sort_pairs

        outcome = structural_join(dept_data.ancestors,
                                  dept_data.descendants,
                                  algorithm="stack-tree-anc")
        assert sort_pairs(outcome.pairs) == oracle_join(
            dept_data.ancestors, dept_data.descendants)
        order = [(a.start, d.start) for a, d in outcome.pairs]
        assert order == sorted(order)

    def test_version_string(self):
        assert repro.__version__

    def test_docstrings_everywhere(self):
        missing = []
        for name in _all_modules():
            if name.endswith("__main__"):
                continue
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                missing.append(name)
        assert not missing, "modules without docstrings: %s" % missing
