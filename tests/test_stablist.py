"""Unit tests for the stab-list manager (repro.indexes.xrtree.stablist)."""

import pytest

from repro.indexes.xrtree.pages import NIL, StabListPage, XRInternalPage
from repro.indexes.xrtree.stablist import StabList, StabListError
from tests.conftest import entry


def make_node(pool, keys):
    """A bare internal node pinned into the pool (children are dummies)."""
    node = pool.new_page(
        XRInternalPage(list(keys), [0] * (len(keys) + 1))
    )
    return node


def stab(pool, keys):
    node = make_node(pool, keys)
    return StabList(pool, node), node


class TestInsertDelete:
    def test_insert_keeps_start_order(self, pool):
        lst, node = stab(pool, [10, 30, 50])
        for s, e in [(25, 35), (5, 55), (28, 34), (48, 51)]:
            lst.insert(entry(s, e, flag=True))
        assert [r.start for r in lst.iter_all()] == [5, 25, 28, 48]
        assert len(lst) == 4

    def test_insert_updates_pspe(self, pool):
        lst, node = stab(pool, [10, 30])
        lst.insert(entry(8, 12, flag=True))   # PSL of key 10
        assert (node.ps[0], node.pe[0]) == (8, 12)
        lst.insert(entry(5, 40, flag=True))   # new head of PSL 10
        assert (node.ps[0], node.pe[0]) == (5, 40)
        lst.insert(entry(25, 33, flag=True))  # PSL of key 30
        assert (node.ps[1], node.pe[1]) == (25, 33)

    def test_insert_not_stabbed_raises(self, pool):
        lst, _ = stab(pool, [10])
        with pytest.raises(StabListError):
            lst.insert(entry(11, 12, flag=True))  # starts after the only key

    def test_insert_duplicate_start_raises(self, pool):
        lst, _ = stab(pool, [10])
        lst.insert(entry(5, 15, flag=True))
        with pytest.raises(StabListError):
            lst.insert(entry(5, 20, flag=True))

    def test_delete_returns_record(self, pool):
        lst, _ = stab(pool, [10])
        lst.insert(entry(5, 15, flag=True))
        removed = lst.delete(5)
        assert removed.start == 5
        assert len(lst) == 0
        assert lst.to_list() == []

    def test_delete_missing_returns_none(self, pool):
        lst, _ = stab(pool, [10])
        assert lst.delete(99) is None

    def test_delete_head_moves_pspe_to_successor(self, pool):
        lst, node = stab(pool, [10])
        lst.insert(entry(3, 30, flag=True))
        lst.insert(entry(6, 20, flag=True))
        lst.delete(3)
        assert (node.ps[0], node.pe[0]) == (6, 20)
        lst.delete(6)
        assert (node.ps[0], node.pe[0]) == (NIL, NIL)

    def test_delete_non_head_keeps_pspe(self, pool):
        lst, node = stab(pool, [10])
        lst.insert(entry(3, 30, flag=True))
        lst.insert(entry(6, 20, flag=True))
        lst.delete(6)
        assert (node.ps[0], node.pe[0]) == (3, 30)


class TestMultiPageChains:
    def entries_for_chain(self, pool, count, key=100000):
        # A fully nested family (starts increase, ends decrease) — the only
        # way many regions can all be stabbed by one key in valid XML.
        return [entry(i + 1, 2 * key - i, flag=True) for i in range(count)]

    def test_chain_grows_and_gets_directory(self, pool):
        capacity = StabListPage.capacity(pool.page_size)
        lst, node = stab(pool, [100000])
        for e in self.entries_for_chain(pool, capacity + 2):
            lst.insert(e)
        assert lst.page_count() >= 2
        assert node.sl_dir != 0
        assert [r.start for r in lst.iter_all()] == \
            list(range(1, capacity + 3))

    def test_single_page_has_no_directory(self, pool):
        lst, node = stab(pool, [100000])
        for e in self.entries_for_chain(pool, 3):
            lst.insert(e)
        assert node.sl_dir == 0

    def test_deleting_back_to_one_page_drops_directory(self, pool, disk):
        capacity = StabListPage.capacity(pool.page_size)
        lst, node = stab(pool, [100000])
        entries = self.entries_for_chain(pool, capacity + 2)
        for e in entries:
            lst.insert(e)
        assert node.sl_dir != 0
        for e in entries[1:]:
            lst.delete(e.start)
        assert node.sl_dir == 0
        assert lst.page_count() == 1

    def test_free_all_releases_pages(self, pool, disk):
        capacity = StabListPage.capacity(pool.page_size)
        lst, node = stab(pool, [100000])
        before = disk.allocated_page_count
        for e in self.entries_for_chain(pool, capacity * 3):
            lst.insert(e)
        assert disk.allocated_page_count > before
        lst.free_all()
        pool.flush_all()
        assert disk.allocated_page_count == before
        assert (node.sl_head, node.sl_dir, node.sl_count) == (0, 0, 0)


class TestPslIteration:
    #: A strictly nested layout over keys [10, 30, 50]:
    #: PSL_0 = {(2, 60), (4, 12)}, PSL_1 = {(15, 31), (28, 30)},
    #: PSL_2 = {(45, 51)}.
    LAYOUT = [(2, 60), (4, 12), (15, 31), (28, 30), (45, 51)]

    def test_iter_psl_respects_bounds(self, pool):
        lst, node = stab(pool, [10, 30, 50])
        for s, e in self.LAYOUT:
            lst.insert(entry(s, e, flag=True))
        assert [r.start for r in lst.iter_psl(0)] == [2, 4]
        assert [r.start for r in lst.iter_psl(1)] == [15, 28]
        assert [r.start for r in lst.iter_psl(2)] == [45]

    def test_collect_stabbed_basic(self, pool):
        lst, node = stab(pool, [10, 30, 50])
        for s, e in self.LAYOUT:
            lst.insert(entry(s, e, flag=True))
        got = [r.start for r in lst.collect_stabbed(29)]
        assert got == [2, 15, 28]

    def test_collect_stabbed_uses_pspe_guards(self, pool):
        lst, node = stab(pool, [10, 30])
        lst.insert(entry(5, 12, flag=True))
        # Point 20 stabs nothing; the (ps, pe) guard must answer without
        # touching the chain.
        assert lst.collect_stabbed(20) == []

    def test_collect_stabbed_after_start(self, pool):
        lst, node = stab(pool, [10])
        for s, e in [(2, 50), (4, 40), (6, 30)]:
            lst.insert(entry(s, e, flag=True))
        assert [r.start for r in lst.collect_stabbed(20)] == [2, 4, 6]
        assert [r.start for r in lst.collect_stabbed(20, after_start=4)] \
            == [6]

    def test_collect_stabbed_counts(self, pool):
        from repro.joins.base import JoinStats

        lst, node = stab(pool, [10])
        for s, e in [(2, 50), (4, 40), (6, 30)]:
            lst.insert(entry(s, e, flag=True))
        stats = JoinStats()
        lst.collect_stabbed(20, counter=stats)
        assert stats.elements_scanned == 3


class TestStructuralOps:
    def test_extract_stabbed(self, pool):
        lst, node = stab(pool, [10, 30, 50])
        for s, e in [(2, 60), (4, 12), (15, 31), (28, 30), (45, 51)]:
            lst.insert(entry(s, e, flag=True))
        removed = lst.extract_stabbed(30)
        assert sorted(r.start for r in removed) == [2, 15, 28]
        assert [r.start for r in lst.iter_all()] == [4, 45]
        assert len(lst) == 2

    def test_extract_stabbed_empty_result(self, pool):
        lst, node = stab(pool, [10, 30])
        lst.insert(entry(5, 12, flag=True))
        assert lst.extract_stabbed(20) == []
        assert len(lst) == 1

    def test_split_after(self, pool):
        lst, node = stab(pool, [10, 30, 50])
        for s, e in [(4, 11), (15, 31), (45, 51)]:
            lst.insert(entry(s, e, flag=True))
        head, directory, count = lst.split_after(30)
        assert count == 1
        assert [r.start for r in lst.iter_all()] == [4, 15]
        other = pool.new_page(
            XRInternalPage([50], [0, 0], sl_head=head, sl_dir=directory,
                           sl_count=count)
        )
        assert [r.start for r in StabList(pool, other).iter_all()] == [45]

    def test_split_after_multi_page(self, pool):
        capacity = StabListPage.capacity(pool.page_size)
        big_key = 10 ** 6
        lst, node = stab(pool, [big_key])
        n = capacity * 3
        for i in range(n):
            lst.insert(entry(i + 1, 2 * big_key - i, flag=True))
        cut = capacity + capacity // 2
        head, directory, count = lst.split_after(cut)
        assert count == n - cut
        assert [r.start for r in lst.iter_all()] == list(range(1, cut + 1))
        other = pool.new_page(
            XRInternalPage([big_key], [0, 0], sl_head=head,
                           sl_dir=directory, sl_count=count)
        )
        assert [r.start for r in StabList(pool, other).iter_all()] == \
            list(range(cut + 1, n + 1))

    def test_merge_from(self, pool):
        left_lst, left = stab(pool, [10])
        right_lst, right = stab(pool, [30])
        left_lst.insert(entry(4, 11, flag=True))
        right_lst.insert(entry(25, 31, flag=True))
        # Simulate the node merge: the left node absorbs the right keys
        # first so its stab membership covers the union.
        left.keys.append(30)
        left.ps.append(NIL)
        left.pe.append(NIL)
        left.children.append(0)
        left_lst.merge_from(right)
        assert [r.start for r in left_lst.iter_all()] == [4, 25]
        assert (right.sl_head, right.sl_dir, right.sl_count) == (0, 0, 0)
        left_lst.refresh_pspe()
        assert (left.ps[1], left.pe[1]) == (25, 31)

    def test_refresh_pspe_full_scan(self, pool):
        lst, node = stab(pool, [10, 30])
        for s, e in [(4, 11), (15, 31)]:
            lst.insert(entry(s, e, flag=True))
        node.ps = [NIL, NIL]
        node.pe = [NIL, NIL]
        lst.refresh_pspe()
        assert (node.ps[0], node.pe[0]) == (4, 11)
        assert (node.ps[1], node.pe[1]) == (15, 31)

    def test_refresh_pspe_detects_foreign_record(self, pool):
        lst, node = stab(pool, [10])
        lst.insert(entry(4, 11, flag=True))
        node.keys = [3]  # now (4, 11) is not stabbed by any key
        with pytest.raises(StabListError):
            lst.refresh_pspe()
