"""Property-based join tests: every algorithm equals the nested-loop oracle
on arbitrary valid region sets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins import (
    bplus_join,
    mpmgjn_join,
    nested_loop_join,
    stack_tree_join,
    xr_stack_join,
)
from repro.joins.base import sort_pairs
from tests.test_joins import run
from tests.test_xrtree_property import tree_shape_to_entries

shapes = st.lists(st.integers(min_value=0, max_value=3),
                  min_size=1, max_size=80)


def split_sets(entries, selector_bits):
    """Partition one element list into (possibly overlapping) A and D."""
    ancestors, descendants = [], []
    for index, element in enumerate(entries):
        bit = selector_bits[index % len(selector_bits)]
        if bit in (0, 2):
            ancestors.append(element)
        if bit in (1, 2):
            descendants.append(element)
    return ancestors, descendants


@given(shapes, st.lists(st.integers(min_value=0, max_value=2),
                        min_size=1, max_size=7))
@settings(max_examples=40, deadline=None)
def test_all_algorithms_match_oracle(shape, bits):
    entries = tree_shape_to_entries(shape)
    ancestors, descendants = split_sets(entries, bits)
    expected = nested_loop_join(ancestors, descendants)
    for algorithm in (stack_tree_join, mpmgjn_join, bplus_join,
                      xr_stack_join):
        pairs, stats = run(algorithm, ancestors, descendants)
        assert sort_pairs(pairs) == expected
        assert stats.pairs == len(expected)


@given(shapes, st.lists(st.integers(min_value=0, max_value=2),
                        min_size=1, max_size=7))
@settings(max_examples=30, deadline=None)
def test_parent_child_matches_oracle(shape, bits):
    entries = tree_shape_to_entries(shape)
    ancestors, descendants = split_sets(entries, bits)
    expected = nested_loop_join(ancestors, descendants, parent_child=True)
    for algorithm in (stack_tree_join, bplus_join, xr_stack_join):
        pairs, _ = run(algorithm, ancestors, descendants, parent_child=True)
        assert sort_pairs(pairs) == expected


@given(shapes)
@settings(max_examples=30, deadline=None)
def test_full_overlap_self_join(shape):
    entries = tree_shape_to_entries(shape)
    expected = nested_loop_join(entries, entries)
    for algorithm in (stack_tree_join, mpmgjn_join, bplus_join,
                      xr_stack_join):
        pairs, _ = run(algorithm, entries, entries)
        assert sort_pairs(pairs) == expected


@given(shapes, st.lists(st.integers(min_value=0, max_value=2),
                        min_size=1, max_size=5))
@settings(max_examples=25, deadline=None)
def test_pair_counts_agree_across_algorithms(shape, bits):
    entries = tree_shape_to_entries(shape)
    ancestors, descendants = split_sets(entries, bits)
    counts = set()
    for algorithm in (stack_tree_join, mpmgjn_join, bplus_join,
                      xr_stack_join):
        _, stats = run(algorithm, ancestors, descendants, collect=False)
        counts.add(stats.pairs)
    assert len(counts) == 1
