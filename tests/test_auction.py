"""Tests for the XMark-style auction DTD and dataset."""

import pytest

from repro.core import structural_join
from repro.core.api import oracle_join
from repro.joins.base import sort_pairs
from repro.workloads import auction_dataset
from repro.xmldata.dtd import AUCTION_DTD
from repro.xmldata.generator import XmlGenerator
from repro.xmldata.stats import document_stats


@pytest.fixture(scope="module")
def auction():
    return auction_dataset(3000, seed=29)


class TestAuctionDtd:
    def test_indirect_recursion_detected(self):
        assert AUCTION_DTD.is_recursive("parlist")
        assert AUCTION_DTD.is_recursive("listitem")
        assert not AUCTION_DTD.is_recursive("item")
        assert not AUCTION_DTD.is_recursive("name")

    def test_root(self):
        assert AUCTION_DTD.root_tag == "site"

    def test_generated_document_validates(self):
        document = XmlGenerator(AUCTION_DTD, seed=5).generate(1500)
        assert document.validate()
        assert document.root.tag == "site"

    def test_nesting_comes_from_the_parlist_cycle(self, auction):
        stats = document_stats(auction.document)
        assert stats.max_nesting_by_tag["parlist"] >= 3
        assert stats.max_nesting_by_tag["item"] == 1


class TestAuctionDataset:
    def test_shape(self, auction):
        assert auction.name == "parlist_text"
        assert auction.ancestor_count > 50
        assert auction.descendant_count > 50
        starts = [e.start for e in auction.ancestors]
        assert starts == sorted(starts)

    def test_ancestors_nest(self, auction):
        from repro.xmldata.stats import element_set_stats

        stats = element_set_stats(auction.ancestors)
        assert stats.max_nesting >= 3

    @pytest.mark.parametrize("algorithm",
                             ["stack-tree", "b+", "xr-stack"])
    def test_joins_match_oracle(self, auction, algorithm):
        outcome = structural_join(auction.ancestors, auction.descendants,
                                  algorithm=algorithm)
        assert sort_pairs(outcome.pairs) == oracle_join(
            auction.ancestors, auction.descendants
        )

    def test_xr_tree_invariants_on_auction_data(self, auction):
        from repro.core.api import StorageContext, build_xr_tree
        from repro.indexes.xrtree import check_xrtree

        context = StorageContext(page_size=512, buffer_pages=64)
        entries = sorted(auction.ancestors + auction.descendants,
                         key=lambda e: e.start)
        tree = build_xr_tree(entries, context.pool)
        assert check_xrtree(tree)

    def test_dynamic_inserts_on_auction_data(self, auction):
        import random

        from repro.core.api import StorageContext
        from repro.indexes.xrtree import XRTree, check_xrtree

        rng = random.Random(3)
        entries = sorted(auction.ancestors + auction.descendants,
                         key=lambda e: e.start)[:600]
        rng.shuffle(entries)
        context = StorageContext(page_size=512, buffer_pages=64)
        tree = XRTree(context.pool, leaf_capacity=4, internal_capacity=3)
        for e in entries:
            tree.insert(e)
        check_xrtree(tree)

    def test_query_engine_on_auction_document(self, auction):
        from repro.query import PathQueryEngine

        engine = PathQueryEngine(auction.document)
        deep = engine.evaluate("//parlist//parlist")
        assert len(deep) > 0
        twig = engine.evaluate("//item[description//parlist]/name")
        flat = engine.evaluate("//item/name")
        assert len(twig) <= len(flat)
