"""Tests for document/element-set statistics (repro.xmldata.stats)."""

import pytest

from repro.xmldata.parser import parse_document
from repro.xmldata.stats import document_stats, element_set_stats
from tests.conftest import entry

SOURCE = """
<dept>
  <emp><name>w</name>
    <emp><emp/></emp>
  </emp>
  <emp><name>x</name></emp>
  <office/>
</dept>
"""


@pytest.fixture(scope="module")
def stats():
    return document_stats(parse_document(SOURCE))


class TestDocumentStats:
    def test_element_count(self, stats):
        assert stats.element_count == 8

    def test_height(self, stats):
        assert stats.height == 4  # dept > emp > emp > emp

    def test_tag_counts(self, stats):
        assert stats.tag_counts == {"dept": 1, "emp": 4, "name": 2,
                                    "office": 1}

    def test_depth_histogram(self, stats):
        assert stats.depth_histogram[0] == 1
        assert stats.depth_histogram[1] == 3
        assert sum(stats.depth_histogram.values()) == stats.element_count

    def test_fanout(self, stats):
        assert stats.fanout_histogram[0] > 0  # leaves
        assert stats.fanout_histogram[3] == 1  # the root
        assert stats.mean_fanout > 1.0

    def test_max_nesting_by_tag(self, stats):
        assert stats.max_nesting_by_tag["emp"] == 3
        assert stats.max_nesting_by_tag["name"] == 1
        assert stats.max_nesting_by_tag["dept"] == 1

    def test_describe_renders(self, stats):
        text = stats.describe()
        assert "elements: 8" in text
        assert "emp=4 (h_d=3)" in text

    def test_matches_model_max_nesting(self):
        from repro.workloads import department_dataset

        data = department_dataset(1200, seed=3)
        stats = document_stats(data.document)
        assert stats.max_nesting_by_tag["employee"] == \
            data.document.max_nesting("employee")
        assert stats.element_count == data.document.element_count()


class TestElementSetStats:
    def test_flat_set(self):
        entries = [entry(i * 10, i * 10 + 5) for i in range(1, 6)]
        stats = element_set_stats(entries)
        assert stats.count == 5
        assert stats.max_nesting == 1
        assert stats.top_level_count == 5
        assert stats.max_subtree_size == 1

    def test_nested_chain(self):
        entries = [entry(i, 100 - i) for i in range(1, 11)]
        stats = element_set_stats(entries)
        assert stats.max_nesting == 10
        assert stats.top_level_count == 1
        assert stats.max_subtree_size == 10

    def test_mixed(self):
        entries = [entry(1, 20), entry(2, 10), entry(3, 4),
                   entry(30, 40), entry(50, 90), entry(60, 70)]
        stats = element_set_stats(entries)
        assert stats.top_level_count == 3
        assert stats.max_nesting == 3
        assert sorted(stats.subtree_sizes) == [1, 2, 3]
        assert stats.mean_subtree_size == 2.0

    def test_empty(self):
        stats = element_set_stats([])
        assert stats.count == 0
        assert stats.mean_subtree_size == 0.0
        assert stats.max_subtree_size == 0

    def test_consistency_with_document(self):
        from repro.workloads import department_dataset

        data = department_dataset(1500, seed=9)
        stats = element_set_stats(data.ancestors)
        assert stats.count == data.ancestor_count
        assert stats.max_nesting == \
            data.document.max_nesting("employee")
