"""Quantitative I/O-bound tests for Theorems 3 and 4.

The paper's headline guarantees are worst-case I/O bounds:

* Theorem 3 — FindDescendants: ``O(log_F N + R/B)`` page I/Os;
* Theorem 4 — FindAncestors:   ``O(log_F N + R)`` page I/Os.

These tests measure actual cold-pool page misses per operation and assert
them against the formulas with explicit constants (height for the log term,
leaf capacity for ``B``), on both bulk-loaded and dynamically built trees.
"""

import random

import pytest

from repro.core.api import StorageContext, build_xr_tree
from repro.indexes.xrtree import XRTree


@pytest.fixture(scope="module")
def loaded():
    from repro.workloads import department_dataset

    data = department_dataset(6000, seed=17)
    entries = sorted(data.ancestors + data.descendants,
                     key=lambda e: e.start)
    context = StorageContext(page_size=512, buffer_pages=4096)
    tree = build_xr_tree(entries, context.pool)
    return context, tree, entries


def _cold(context):
    context.pool.flush_all()
    context.pool.clear()
    context.reset_stats()


class TestTheorem4FindAncestors:
    def test_misses_bounded_by_height_plus_output(self, loaded):
        context, tree, entries = loaded
        rng = random.Random(3)
        top = max(e.end for e in entries)
        worst = 0
        for _ in range(150):
            point = rng.randrange(1, top + 2)
            _cold(context)
            results = tree.find_ancestors(point)
            misses = context.pool.stats.misses
            # One page per level of the descent, plus at most ~2 pages per
            # PSL touched (directory + chain page) — and every touched PSL
            # contributes at least one result, so: height + 2R + slack.
            bound = tree.height + 2 * len(results) + 3
            assert misses <= bound, (point, misses, bound, len(results))
            worst = max(worst, misses - len(results))
        # The additive part stays near the descent cost.
        assert worst <= tree.height + 3

    def test_empty_result_costs_one_descent(self, loaded):
        context, tree, entries = loaded
        top = max(e.end for e in entries)
        _cold(context)
        results = tree.find_ancestors(top + 100)
        assert results == []
        assert context.pool.stats.misses <= tree.height + 1


class TestTheorem3FindDescendants:
    def test_misses_bounded_by_height_plus_pages(self, loaded):
        context, tree, entries = loaded
        rng = random.Random(4)
        for _ in range(100):
            probe = rng.choice(entries)
            _cold(context)
            results = tree.find_descendants(probe.start, probe.end)
            misses = context.pool.stats.misses
            pages_of_output = len(results) // tree.leaf_capacity + 1
            bound = tree.height + pages_of_output + 2
            assert misses <= bound, (probe, misses, bound, len(results))

    def test_range_scan_is_sequential(self, loaded):
        context, tree, entries = loaded
        widest = max(entries, key=lambda e: e.end - e.start)
        _cold(context)
        results = tree.find_descendants(widest.start, widest.end)
        misses = context.pool.stats.misses
        # A large result must cost ~R/B pages, not R pages.
        assert len(results) > tree.leaf_capacity * 3
        assert misses < len(results) / 2


class TestDynamicTreeSameBounds:
    def test_bounds_hold_after_random_construction(self):
        rng = random.Random(9)
        from repro.workloads import department_dataset

        data = department_dataset(2500, seed=19)
        entries = sorted(data.ancestors + data.descendants,
                         key=lambda e: e.start)
        shuffled = entries[:]
        rng.shuffle(shuffled)
        context = StorageContext(page_size=512, buffer_pages=4096)
        tree = XRTree(context.pool)
        for e in shuffled:
            tree.insert(e)
        top = max(e.end for e in entries)
        for _ in range(80):
            point = rng.randrange(1, top + 2)
            _cold(context)
            results = tree.find_ancestors(point)
            assert context.pool.stats.misses <= \
                tree.height + 2 * len(results) + 3
