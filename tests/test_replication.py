"""Warm-standby replication: tailing, retry, divergence, failover chaos.

The failover sweep is the replication analogue of the crash-recovery
sweep: a probe run counts every physical page write of an archive-mode
primary workload, then for each of up to 50 seeded crash points the
primary is killed exactly there and a standby (bootstrapped from a hot
backup taken before the workload) must catch up from the archive and
promote with **zero acknowledged-commit loss**.  Set ``CHAOS_SEED`` to
reproduce a CI failure locally.
"""

import os
import random
import shutil
import threading
import time

import pytest

from repro.core.database import XmlDatabase
from repro.obs import Observability
from repro.storage.disk import FileDisk
from repro.storage.errors import (
    DivergenceError,
    ReplicationError,
    TransientIOError,
)
from repro.storage.faults import CrashPoint, FaultInjectingDisk
from repro.storage.journal import Archive
from repro.storage.replication import LocalDirShipper, StandbyReplica
from repro.storage.timemodel import VirtualClock

SEED = int(os.environ.get("CHAOS_SEED", "20030305"))

PAGE_SIZE = 512
BUFFER_PAGES = 32
SWEEP_POINTS = 50

XML_A = (
    "<dept><team><name>db</name>"
    "<member><name>ada</name><email>a@x</email></member>"
    "<member><name>bob</name></member></team></dept>"
)
XML_B = (
    "<dept><team><name>ir</name>"
    "<member><name>cyd</name><email>c@x</email></member>"
    "</team><note>restructure</note></dept>"
)


def make_primary(tmp_path, name="primary"):
    """A committed archive-mode primary plus a hot backup of its base."""
    path = str(tmp_path / ("%s.db" % name))
    archive_dir = str(tmp_path / ("%s.archive" % name))
    db = XmlDatabase.create(path, page_size=PAGE_SIZE,
                            buffer_pages=BUFFER_PAGES,
                            durability="archive", archive_dir=archive_dir)
    db.add_document(XML_A, name="a")
    db.flush()
    backup = str(tmp_path / ("%s.backup" % name))
    db.hot_backup(backup)
    return path, archive_dir, backup, db


def make_standby(tmp_path, archive_dir, backup, name="standby", **options):
    shipper = LocalDirShipper(archive_dir, PAGE_SIZE)
    return StandbyReplica.from_backup(
        backup, str(tmp_path / ("%s.db" % name)), shipper,
        page_size=PAGE_SIZE, buffer_pages=BUFFER_PAGES,
        backoff_seconds=0.0, **options)


class TestTailing:
    def test_standby_tracks_primary_commits(self, tmp_path):
        path, archive_dir, backup, db = make_primary(tmp_path)
        replica = make_standby(tmp_path, archive_dir, backup)
        assert replica.documents() == [(1, "a")]

        db.add_document(XML_B, name="b")
        db.flush()
        assert replica.stats.lag_segments == 0  # not yet polled
        applied = replica.catch_up()
        assert applied == 1
        assert replica.documents() == [(1, "a"), (2, "b")]
        assert replica.stats.lag_segments == 0
        assert replica.stats.segments_applied == 1
        # The standby serves queries through the normal engine.
        assert len(replica.query("//member/name")) == 3
        db.close()
        replica.close()

    def test_promote_returns_writable_archive_primary(self, tmp_path):
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.close()
        replica = make_standby(tmp_path, archive_dir, backup)
        promoted = replica.promote()
        try:
            assert replica.promoted
            assert replica.stats.failovers == 1
            assert [n for _i, n in promoted.documents()] == ["a", "b"]
            # Failover metrics are visible through the promoted database.
            text = promoted.metrics_text()
            assert "repro_replication_failovers 1" in text
            assert "repro_replication_lag_segments 0" in text
            # The new primary writes its own history, not the old one's.
            promoted.add_document(XML_A, name="c")
            promoted.flush()
            assert promoted.archive.directory != archive_dir
        finally:
            promoted.close()
        with pytest.raises(ReplicationError, match="promoted"):
            replica.catch_up()

    def test_torn_head_segment_is_skipped_then_recovered(self, tmp_path):
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        db.close()
        archive = Archive(archive_dir, PAGE_SIZE)
        head = archive.sequences()[-1]
        seg = archive.segment_path(head)
        pristine = open(seg, "rb").read()
        open(seg, "wb").write(pristine[:40])  # tear the head

        replica = make_standby(tmp_path, archive_dir, backup)
        assert replica.catch_up() == 0
        assert replica.stats.torn_segments_seen == 1
        assert replica.stall_reason is None  # torn head is not divergence

        open(seg, "wb").write(pristine)      # "primary restarted"
        assert replica.catch_up() == 1
        assert replica.documents() == [(1, "a"), (2, "b")]
        replica.close()

    def test_torn_head_repolls_do_not_stall_or_mark_reseed(self,
                                                           tmp_path):
        """The re-poll path: a torn *head* is re-examined on every
        catch_up — never a stall, never a re-seed — because only the
        primary's restart can resolve it (rewrite or truncate)."""
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        db.close()
        archive = Archive(archive_dir, PAGE_SIZE)
        head = archive.sequences()[-1]
        seg = archive.segment_path(head)
        pristine = open(seg, "rb").read()
        open(seg, "wb").write(pristine[:40])

        replica = make_standby(tmp_path, archive_dir, backup)
        for attempt in range(1, 4):
            assert replica.catch_up() == 0
            assert replica.stats.torn_segments_seen == attempt
            assert replica.stall_reason is None
            assert not replica.needs_reseed
        # "Restarted primary" resolves it by truncating the torn commit.
        archive.remove(head)
        assert replica.catch_up() == 0      # nothing to apply — and no stall
        assert replica.stall_reason is None
        replica.close()

    def test_pruned_at_source_marks_reseed_and_reseed_recovers(
            self, tmp_path):
        path, archive_dir, backup, db = make_primary(tmp_path)
        for index in range(4):
            db.add_document(XML_B, name="b%d" % index)
            db.flush()
        # Retention outruns the standby: everything below the head gone.
        archive = Archive(archive_dir, PAGE_SIZE)
        head = archive.sequences()[-1]
        archive.prune_upto(head - 1)

        replica = make_standby(tmp_path, archive_dir, backup)
        assert replica.catch_up() == 0
        assert replica.needs_reseed
        assert replica.stats.pruned_at_source == 1
        assert "pruned" in replica.stall_reason
        # Tailing is short-circuited until the re-seed happens.
        assert replica.catch_up() == 0

        fresh = str(tmp_path / "fresh.backup")
        db.hot_backup(fresh)
        result = replica.reseed_from(fresh)
        assert result.sequence == db.commit_sequence
        assert not replica.needs_reseed
        assert replica.stall_reason is None
        assert replica.stats.reseeds == 1
        # Tailing resumes from the new base.
        db.add_document(XML_A, name="after")
        db.flush()
        assert replica.catch_up() == 1
        assert replica.applied_sequence == db.commit_sequence
        assert [n for _i, n in replica.documents()][-1] == "after"
        db.close()
        replica.close()

    def test_missing_interior_segment_without_prune_still_stalls(
            self, tmp_path):
        """The other side of the discrimination: a hole *at or above*
        the source's floor is loss/corruption, and re-seeding over it
        would paper over divergence — the replica must stall."""
        import os as _os

        path, archive_dir, backup, db = make_primary(tmp_path)
        for index in range(2):
            db.add_document(XML_B, name="b%d" % index)
            db.flush()
        db.close()
        archive = Archive(archive_dir, PAGE_SIZE)
        sequences = archive.sequences()
        _os.remove(archive.segment_path(sequences[1]))  # interior hole

        replica = make_standby(tmp_path, archive_dir, backup)
        assert replica.catch_up() in (0, 1)
        assert not replica.needs_reseed
        assert replica.stats.pruned_at_source == 0
        assert "missing below head" in replica.stall_reason
        replica.close()


class TestDivergence:
    def _primary_with_three_commits(self, tmp_path):
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        db.add_document(XML_A, name="c")
        db.flush()
        db.close()
        return archive_dir, backup

    def test_sequence_gap_refuses_promotion(self, tmp_path):
        archive_dir, backup = self._primary_with_three_commits(tmp_path)
        archive = Archive(archive_dir, PAGE_SIZE)
        archive.remove(archive.sequences()[-2])  # interior gap
        replica = make_standby(tmp_path, archive_dir, backup)
        replica.catch_up()
        assert replica.stall_reason is not None
        with pytest.raises(DivergenceError, match="missing"):
            replica.promote()
        assert replica.stats.divergence_refusals == 1
        # Explicitly accepting the loss promotes at last-known-good.
        promoted = replica.promote(allow_divergence=True)
        assert [n for _i, n in promoted.documents()] == ["a"]
        promoted.close()

    def test_corrupt_interior_segment_refuses_promotion(self, tmp_path):
        archive_dir, backup = self._primary_with_three_commits(tmp_path)
        archive = Archive(archive_dir, PAGE_SIZE)
        seg = archive.segment_path(archive.sequences()[-2])
        blob = bytearray(open(seg, "rb").read())
        blob[25] ^= 0xFF  # bit rot inside the group body
        open(seg, "wb").write(bytes(blob))
        replica = make_standby(tmp_path, archive_dir, backup)
        replica.catch_up()
        with pytest.raises(DivergenceError, match="corrupt"):
            replica.promote()
        replica.close()


class TestTransientFaults:
    def _standby_with_faulty_disk(self, tmp_path, archive_dir, backup,
                                  **options):
        wrappers = []

        def factory(path, page_size):
            disk = FaultInjectingDisk(
                FileDisk(path, page_size, durability="none"))
            wrappers.append(disk)
            return disk

        replica = make_standby(tmp_path, archive_dir, backup,
                               disk_factory=factory, **options)
        return replica, wrappers[0]

    def test_transient_apply_failures_are_retried(self, tmp_path):
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        db.close()
        replica, disk = self._standby_with_faulty_disk(
            tmp_path, archive_dir, backup)
        disk.fail_next(2, "physical-write")
        assert replica.catch_up() == 1
        assert replica.stats.transient_errors == 2
        assert replica.stats.apply_retries >= 1
        assert replica.documents() == [(1, "a"), (2, "b")]
        replica.close()

    def test_exhausted_retries_surface_replication_error(self, tmp_path):
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        db.close()
        replica, disk = self._standby_with_faulty_disk(
            tmp_path, archive_dir, backup, max_retries=2)
        disk.fail_next(50, "physical-write")
        with pytest.raises(ReplicationError, match="after 2 retries"):
            replica.catch_up()
        # The wrapper is not dead — once faults clear, tailing resumes.
        disk.fail_next(0, "physical-write")
        assert replica.catch_up() == 1
        replica.close()


def _faulty_disk_factory(wrappers):
    def factory(path, page_size):
        disk = FaultInjectingDisk(
            FileDisk(path, page_size, durability="none"))
        wrappers.append(disk)
        return disk
    return factory


class TestRetryPolicy:
    def test_backoff_caps_and_counts_causes_in_virtual_time(self, tmp_path):
        """The retry schedule — exponential, capped, per-cause counted —
        verified end to end on a virtual clock: zero wall-clock sleeps."""
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        db.close()
        clock = VirtualClock()
        wrappers = []
        replica = StandbyReplica.from_backup(
            backup, str(tmp_path / "vt-standby.db"),
            LocalDirShipper(archive_dir, PAGE_SIZE), page_size=PAGE_SIZE,
            buffer_pages=BUFFER_PAGES,
            disk_factory=_faulty_disk_factory(wrappers),
            backoff_seconds=0.1, max_backoff_seconds=0.25, max_retries=6,
            backoff_jitter=0.0, clock=clock)
        wrappers[0].fail_next(4, "physical-write")
        started = time.monotonic()
        assert replica.catch_up() == 1
        assert time.monotonic() - started < 1.0  # slept only virtually
        assert replica.stats.retries_by_cause == {"apply": 4}
        # 0.1 → 0.2 → 0.4 capped to 0.25 → 0.8 capped to 0.25.
        assert wrappers[0].op_counts  # faults actually fired
        assert clock.sleeps == [0.1, 0.2, 0.25, 0.25]
        assert clock.now() == pytest.approx(sum(clock.sleeps))
        assert replica.documents() == [(1, "a"), (2, "b")]
        replica.close()

    def test_backoff_jitter_spreads_sleeps_under_the_ceiling(self,
                                                             tmp_path):
        """Jittered backoff shaves each sleep by up to ``backoff_jitter``
        of itself — the cap stays a hard ceiling — and two replicas
        seeded differently do not retry in lockstep."""
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        db.close()
        schedules = []
        for seed in (1, 2):
            clock = VirtualClock()
            wrappers = []
            replica = StandbyReplica.from_backup(
                backup, str(tmp_path / ("jit-%d.db" % seed)),
                LocalDirShipper(archive_dir, PAGE_SIZE),
                page_size=PAGE_SIZE, buffer_pages=BUFFER_PAGES,
                disk_factory=_faulty_disk_factory(wrappers),
                backoff_seconds=0.1, max_backoff_seconds=0.25,
                max_retries=6, backoff_jitter=0.5,
                rng=random.Random(seed), clock=clock)
            wrappers[0].fail_next(4, "physical-write")
            assert replica.catch_up() == 1
            full = [0.1, 0.2, 0.25, 0.25]  # the un-jittered schedule
            assert len(clock.sleeps) == len(full)
            for slept, ceiling in zip(clock.sleeps, full):
                assert 0.5 * ceiling <= slept <= ceiling
            schedules.append(list(clock.sleeps))
            assert replica.documents() == [(1, "a"), (2, "b")]
            replica.close()
        assert schedules[0] != schedules[1]  # seeds de-synchronize

    def test_poll_and_ship_retries_counted_by_cause(self, tmp_path):
        class FlakyShipper(LocalDirShipper):
            poll_faults = 1
            fetch_faults = 2

            def latest_sequence(self):
                if self.poll_faults:
                    self.poll_faults -= 1
                    raise TransientIOError("poll blip")
                return super(FlakyShipper, self).latest_sequence()

            def fetch(self, sequence):
                if self.fetch_faults:
                    self.fetch_faults -= 1
                    raise TransientIOError("fetch blip")
                return super(FlakyShipper, self).fetch(sequence)

        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        db.close()
        replica = StandbyReplica.from_backup(
            backup, str(tmp_path / "flaky-standby.db"),
            FlakyShipper(archive_dir, PAGE_SIZE), page_size=PAGE_SIZE,
            buffer_pages=BUFFER_PAGES, backoff_seconds=0.0)
        assert replica.catch_up() == 1
        assert replica.stats.retries_by_cause == {"poll": 1, "ship": 2}
        assert replica.stats.transient_errors == 3
        replica.close()


class TestPromoteCatchUpRace:
    def test_promote_interrupts_inflight_backoff_without_deadlock(
            self, tmp_path):
        """A catch_up stuck in a long retry backoff must yield to
        promote() immediately: the interrupted tail applies nothing after
        the promotion decision, the promoting thread never waits out the
        backoff window, and nothing deadlocks."""
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        db.close()
        wrappers = []
        replica = StandbyReplica.from_backup(
            backup, str(tmp_path / "race-standby.db"),
            LocalDirShipper(archive_dir, PAGE_SIZE), page_size=PAGE_SIZE,
            buffer_pages=BUFFER_PAGES,
            disk_factory=_faulty_disk_factory(wrappers),
            backoff_seconds=30.0, max_backoff_seconds=30.0,
            max_retries=100)
        disk = wrappers[0]
        disk.fail_next(1000, "physical-write")
        outcome = {}

        def tail():
            outcome["applied"] = replica.catch_up()

        tailer = threading.Thread(target=tail)
        tailer.start()
        # Wait until the tail thread is inside its retry loop (it holds
        # the tail lock and is sleeping out a 30s backoff).
        give_up = time.monotonic() + 5.0
        while (replica.stats.transient_errors < 1
                and time.monotonic() < give_up):
            time.sleep(0.005)
        assert replica.stats.transient_errors >= 1
        disk.fail_next(0, "physical-write")  # promote's catch-up succeeds
        started = time.monotonic()
        promoted = replica.promote()
        promote_seconds = time.monotonic() - started
        tailer.join(5.0)
        assert not tailer.is_alive()
        assert outcome["applied"] == 0      # nothing applied post-decision
        assert promote_seconds < 5.0        # never waited out the backoff
        try:
            assert [n for _i, n in promoted.documents()] == ["a", "b"]
        finally:
            promoted.close()
        with pytest.raises(ReplicationError, match="promoted"):
            replica.catch_up()

    def test_close_interrupts_inflight_backoff(self, tmp_path):
        """close() must not wait out a retry backoff either — the same
        interrupt path promote() uses."""
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        db.close()
        wrappers = []
        replica = StandbyReplica.from_backup(
            backup, str(tmp_path / "close-standby.db"),
            LocalDirShipper(archive_dir, PAGE_SIZE), page_size=PAGE_SIZE,
            buffer_pages=BUFFER_PAGES,
            disk_factory=_faulty_disk_factory(wrappers),
            backoff_seconds=30.0, max_backoff_seconds=30.0,
            max_retries=100)
        wrappers[0].fail_next(1000, "physical-write")
        tailer = threading.Thread(target=replica.catch_up)
        tailer.start()
        give_up = time.monotonic() + 5.0
        while (replica.stats.transient_errors < 1
                and time.monotonic() < give_up):
            time.sleep(0.005)
        assert replica.stats.transient_errors >= 1
        started = time.monotonic()
        replica.close()
        tailer.join(5.0)
        assert not tailer.is_alive()
        assert time.monotonic() - started < 5.0
        # An interrupted tail flag clears on the next entry; the replica
        # is closed, so tailing now fails cleanly rather than hanging.
        assert replica.stats.segments_applied == 0


class TestReplicationMetrics:
    def test_observability_hub_gets_gauges_and_spans(self, tmp_path):
        path, archive_dir, backup, db = make_primary(tmp_path)
        db.add_document(XML_B, name="b")
        db.flush()
        hub = Observability()
        hub.tracer.enable()
        shipper = LocalDirShipper(archive_dir, PAGE_SIZE)
        replica = StandbyReplica.from_backup(
            backup, str(tmp_path / "obs-standby.db"), shipper,
            page_size=PAGE_SIZE, buffer_pages=BUFFER_PAGES,
            backoff_seconds=0.0, observability=hub)
        replica.catch_up()
        snap = hub.snapshot()
        assert snap["repro_replication_segments_applied"] == 1
        assert snap["repro_replication_lag_segments"] == 0
        kinds = {r["kind"] for r in hub.tracer.records()}
        assert "replica.catch_up" in kinds
        assert "replica.apply" in kinds
        # The primary can watch lag from its side too.
        db.attach_replication(replica)
        assert "repro_replication_segments_applied 1" in db.metrics_text()
        assert db.stats()["replication"]["segments_applied"] == 1
        db.close()
        replica.close()


class TestFailoverChaosSweep:
    def run_workload(self, db):
        """Mutations with commit points; returns names acked so far."""
        acked = [["a"]]
        db.add_document(XML_A, name="b")
        db.flush()
        acked.append(["a", "b"])
        db.add_document(XML_B, name="c")
        db.flush()
        acked.append(["a", "b", "c"])
        db.remove_document(2)
        db.close()
        acked.append(["a", "c"])
        return acked

    def test_every_crash_point_fails_over_without_acked_loss(self, tmp_path):
        rng = random.Random(SEED)
        base_path, base_archive, backup, db = make_primary(tmp_path, "base")
        db.close()

        # Probe run: count the workload's physical writes.
        probe = str(tmp_path / "probe.db")
        probe_archive = str(tmp_path / "probe.archive")
        shutil.copyfile(base_path, probe)
        shutil.copytree(base_archive, probe_archive)
        disk = FaultInjectingDisk(FileDisk(probe, page_size=PAGE_SIZE,
                                           durability="archive",
                                           archive_dir=probe_archive))
        pdb = XmlDatabase.open(disk=disk, page_size=PAGE_SIZE,
                               buffer_pages=BUFFER_PAGES)
        final_acked = self.run_workload(pdb)[-1]
        total = disk.op_counts["physical-write"]
        assert total > 10

        points = sorted(rng.sample(range(1, total + 1),
                                   min(SWEEP_POINTS, total)))
        promoted_runs = 0
        for kill in points:
            run = str(tmp_path / "run.db")
            run_archive = str(tmp_path / "run.archive")
            shutil.copyfile(base_path, run)
            if os.path.isdir(run_archive):
                shutil.rmtree(run_archive)
            shutil.copytree(base_archive, run_archive)

            torn = rng.choice([None, 1, 7, rng.randrange(PAGE_SIZE)])
            disk = FaultInjectingDisk(
                FileDisk(run, page_size=PAGE_SIZE, durability="archive",
                         archive_dir=run_archive),
                kill_after=kill, torn_bytes=torn)
            rdb = XmlDatabase.open(disk=disk, page_size=PAGE_SIZE,
                                   buffer_pages=BUFFER_PAGES)
            acked = [["a"]]
            with pytest.raises(CrashPoint):
                acked = self.run_workload(rdb)
            disk.abort()
            acked_names = acked[-1]

            standby = str(tmp_path / "standby.db")
            if os.path.exists(standby):
                os.remove(standby)
            replica = StandbyReplica.from_backup(
                backup, standby, LocalDirShipper(run_archive, PAGE_SIZE),
                page_size=PAGE_SIZE, buffer_pages=BUFFER_PAGES,
                backoff_seconds=0.0)
            promoted = replica.promote()
            try:
                names = [n for _i, n in promoted.documents()]
                # Zero acknowledged-commit loss: everything acked before
                # the crash is present.  (The standby may be *ahead* by
                # one commit whose segment became durable before the
                # fatal apply — never behind.)
                assert len(names) >= len(acked_names), (kill, names)
                assert names[: len(acked_names)] == acked_names \
                    or acked_names == ["a", "b", "c"] and names == ["a", "c"]
                promoted.verify()
                for tag in promoted.tags():
                    assert promoted.entries_for_tag(tag)
                text = promoted.metrics_text()
                assert "repro_replication_failovers 1" in text
                assert "repro_replication_lag_segments 0" in text
                promoted_runs += 1
            finally:
                promoted.close()
        assert promoted_runs == len(points)

    def test_restore_pitr_matches_promotion_state(self, tmp_path):
        """Crash mid-workload; restore+PITR must agree with the standby."""
        rng = random.Random(SEED + 2)
        base_path, base_archive, backup, db = make_primary(tmp_path, "pit")
        db.close()
        run = str(tmp_path / "pit-run.db")
        run_archive = str(tmp_path / "pit-run.archive")
        shutil.copyfile(base_path, run)
        shutil.copytree(base_archive, run_archive)
        disk = FaultInjectingDisk(
            FileDisk(run, page_size=PAGE_SIZE, durability="archive",
                     archive_dir=run_archive),
            kill_after=rng.randrange(8, 20), torn_bytes=rng.choice([None, 5]))
        rdb = XmlDatabase.open(disk=disk, page_size=PAGE_SIZE,
                               buffer_pages=BUFFER_PAGES)
        with pytest.raises(CrashPoint):
            self.run_workload(rdb)
        disk.abort()

        replica = StandbyReplica.from_backup(
            backup, str(tmp_path / "pit-standby.db"),
            LocalDirShipper(run_archive, PAGE_SIZE),
            page_size=PAGE_SIZE, buffer_pages=BUFFER_PAGES,
            backoff_seconds=0.0)
        promoted = replica.promote()
        standby_names = [n for _i, n in promoted.documents()]
        promoted.close()

        restored = XmlDatabase.restore(
            backup, str(tmp_path / "pit-restored.db"),
            archive_dir=run_archive, page_size=PAGE_SIZE,
            buffer_pages=BUFFER_PAGES)
        try:
            assert [n for _i, n in restored.documents()] == standby_names
        finally:
            restored.close()
