"""Wire-format unit tests: framing, CRC, sequence echo, bounds.

Pure bytes-level tests of :mod:`repro.net.frames` — no live sockets
except a ``socketpair`` for the recv helpers.  Every rejection cause the
chaos harness relies on (``crc``, ``protocol``, ``oversize``,
``sequence``) is produced here deliberately so its detection is pinned
independently of the proxy's randomness.
"""

import socket
import struct

import pytest

from repro.net import (
    REQ_FETCH,
    REQ_LATEST,
    RESP_SEGMENT,
    FrameRejected,
    NetworkError,
    decode_frame,
    encode_frame,
    is_network_error,
)
from repro.net.frames import (
    ACCEPTED_VERSIONS,
    MAGIC,
    MIN_FRAME_BYTES,
    VERSION,
    read_frame,
    recv_exact,
    send_frame,
)
from repro.storage.errors import ReplicationError, TransientIOError


def body_of(wire):
    """Strip the length prefix off an encoded frame."""
    (length,) = struct.unpack_from("<I", wire, 0)
    assert length == len(wire) - 4
    return wire[4:]


class TestCodec:
    def test_roundtrip_preserves_type_sequence_payload(self):
        wire = encode_frame(RESP_SEGMENT, 42, b"segment bytes")
        frame = decode_frame(body_of(wire))
        assert frame.type == RESP_SEGMENT
        assert frame.sequence == 42
        assert frame.payload == b"segment bytes"

    def test_empty_payload_roundtrip(self):
        frame = decode_frame(body_of(encode_frame(REQ_LATEST, 0)))
        assert frame.type == REQ_LATEST
        assert frame.sequence == 0
        assert frame.payload == b""

    def test_sequence_is_full_u64(self):
        big = 2 ** 63 + 17
        frame = decode_frame(body_of(encode_frame(REQ_FETCH, big)))
        assert frame.sequence == big

    def test_any_flipped_byte_is_caught_by_crc(self):
        wire = encode_frame(RESP_SEGMENT, 7, b"payload")
        body = body_of(wire)
        # Flip every byte position in turn: header, payload and the CRC
        # itself — all must fail closed, none may decode to wrong data.
        for index in range(len(body)):
            corrupted = bytearray(body)
            corrupted[index] ^= 0xFF
            with pytest.raises(FrameRejected) as info:
                decode_frame(bytes(corrupted))
            assert info.value.cause == "crc"

    def test_truncated_body_is_protocol_error(self):
        with pytest.raises(FrameRejected) as info:
            decode_frame(b"\x00" * (MIN_FRAME_BYTES - 1))
        assert info.value.cause == "protocol"

    def test_wrong_version_rejected_with_valid_crc(self):
        # Re-encode a frame with a bumped version and a *correct* CRC:
        # this is an incompatible peer, not line noise.
        import zlib

        header = struct.pack("<4sBBQ", MAGIC, 99, REQ_LATEST, 0)
        crc = zlib.crc32(header) & 0xFFFFFFFF
        body = header + struct.pack("<I", crc)
        with pytest.raises(FrameRejected) as info:
            decode_frame(body)
        assert info.value.cause == "protocol"
        assert "version" in str(info.value)

    def test_unknown_frame_type_rejected(self):
        frame = encode_frame(200, 1)  # type 200 encodes fine...
        with pytest.raises(FrameRejected) as info:
            decode_frame(body_of(frame))  # ...but never decodes
        assert info.value.cause == "protocol"


class TestTraceContextV2:
    """The v2 trace-context blob between header and payload."""

    def test_default_version_is_2_and_both_are_accepted(self):
        assert VERSION == 2
        assert ACCEPTED_VERSIONS == (1, 2)

    def test_context_roundtrips(self):
        ctx = {"trace": "ab12cd34ef56ab78", "span": 7, "node": "node-1"}
        wire = encode_frame(REQ_FETCH, 11, b"payload", context=ctx)
        frame = decode_frame(body_of(wire))
        assert frame.version == 2
        assert frame.context == ctx
        assert frame.type == REQ_FETCH
        assert frame.sequence == 11
        assert frame.payload == b"payload"

    def test_v2_frame_without_context_decodes_to_none(self):
        frame = decode_frame(body_of(encode_frame(REQ_LATEST, 0)))
        assert frame.version == 2
        assert frame.context is None

    def test_v1_frames_still_decode(self):
        wire = encode_frame(RESP_SEGMENT, 5, b"seg", version=1)
        frame = decode_frame(body_of(wire))
        assert frame.version == 1
        assert frame.context is None
        assert frame.payload == b"seg"

    def test_v1_cannot_carry_a_context(self):
        with pytest.raises(FrameRejected) as info:
            encode_frame(REQ_FETCH, 1, context={"trace": "x"}, version=1)
        assert info.value.cause == "protocol"

    def test_accept_versions_restriction(self):
        # A strict-v1 reader (the downgrade path) rejects v2 frames as
        # an incompatible peer, not as line noise.
        wire = encode_frame(REQ_LATEST, 0)
        with pytest.raises(FrameRejected) as info:
            decode_frame(body_of(wire), accept_versions=(1,))
        assert info.value.cause == "protocol"
        assert "version" in str(info.value)

    def test_context_flipped_bytes_still_caught_by_crc(self):
        ctx = {"trace": "deadbeefdeadbeef", "span": 3}
        body = body_of(encode_frame(REQ_FETCH, 2, b"p", context=ctx))
        for index in range(len(body)):
            corrupted = bytearray(body)
            corrupted[index] ^= 0xFF
            with pytest.raises(FrameRejected) as info:
                decode_frame(bytes(corrupted))
            assert info.value.cause == "crc"

    def test_context_length_beyond_body_rejected(self):
        # Hand-build a v2 frame whose ctx_len points past the body but
        # whose CRC is valid: must fail closed as a protocol error.
        import zlib

        header = struct.pack("<4sBBQ", MAGIC, 2, REQ_LATEST, 0)
        body = header + struct.pack("<H", 60000)
        crc = zlib.crc32(body) & 0xFFFFFFFF
        with pytest.raises(FrameRejected) as info:
            decode_frame(body + struct.pack("<I", crc))
        assert info.value.cause == "protocol"

    def test_non_object_context_rejected(self):
        import zlib

        blob = b"[1, 2, 3]"
        header = struct.pack("<4sBBQ", MAGIC, 2, REQ_LATEST, 0)
        body = header + struct.pack("<H", len(blob)) + blob
        crc = zlib.crc32(body) & 0xFFFFFFFF
        with pytest.raises(FrameRejected) as info:
            decode_frame(body + struct.pack("<I", crc))
        assert info.value.cause == "protocol"


class TestSocketHelpers:
    def make_pair(self):
        left, right = socket.socketpair()
        left.settimeout(1.0)
        right.settimeout(1.0)
        return left, right

    def test_send_and_read_frame_across_a_socket(self):
        left, right = self.make_pair()
        try:
            send_frame(left, RESP_SEGMENT, 9, b"abc")
            frame = read_frame(right)
            assert (frame.type, frame.sequence, frame.payload) \
                == (RESP_SEGMENT, 9, b"abc")
        finally:
            left.close()
            right.close()

    def test_recv_exact_reassembles_split_chunks(self):
        left, right = self.make_pair()
        try:
            wire = encode_frame(RESP_SEGMENT, 3, b"x" * 100)
            # Dribble the frame a few bytes at a time.
            for start in range(0, len(wire), 7):
                left.sendall(wire[start:start + 7])
            assert read_frame(right).payload == b"x" * 100
        finally:
            left.close()
            right.close()

    def test_peer_close_mid_frame_is_network_error(self):
        left, right = self.make_pair()
        try:
            wire = encode_frame(RESP_SEGMENT, 3, b"payload")
            left.sendall(wire[:10])
            left.close()
            with pytest.raises(NetworkError, match="pending"):
                read_frame(right)
        finally:
            right.close()

    def test_read_timeout_is_network_error(self):
        left, right = self.make_pair()
        right.settimeout(0.05)
        try:
            with pytest.raises(NetworkError, match="timed out"):
                recv_exact(right, 4)
        finally:
            left.close()
            right.close()

    def test_oversize_claim_rejected_without_reading_body(self):
        left, right = self.make_pair()
        try:
            left.sendall(struct.pack("<I", 1 << 30))
            with pytest.raises(FrameRejected) as info:
                read_frame(right, max_frame_bytes=1024)
            assert info.value.cause == "oversize"
        finally:
            left.close()
            right.close()


class TestErrorTaxonomy:
    def test_network_errors_are_transient(self):
        # Load-bearing: the replica's retry loop and the cluster's health
        # machinery absorb network faults because of this subclassing.
        assert issubclass(NetworkError, TransientIOError)
        assert issubclass(FrameRejected, NetworkError)

    def test_is_network_error_sees_through_replication_wrapping(self):
        direct = NetworkError("boom")
        assert is_network_error(direct)
        wrapped = ReplicationError("ship failed after 4 retries")
        wrapped.__cause__ = direct
        assert is_network_error(wrapped)
        assert not is_network_error(ReplicationError("plain"))
        assert not is_network_error(TransientIOError("disk blip"))
