"""Tests for the simulated disks (repro.storage.disk)."""

import os

import pytest

from repro.storage.disk import FileDisk, InMemoryDisk, IOStats
from repro.storage.errors import PageNotFoundError, StorageError


class TestAllocation:
    def test_allocate_returns_distinct_ids(self, disk):
        ids = {disk.allocate() for _ in range(50)}
        assert len(ids) == 50

    def test_page_id_zero_is_never_allocated(self, disk):
        ids = [disk.allocate() for _ in range(100)]
        assert 0 not in ids

    def test_free_recycles_ids(self, disk):
        first = disk.allocate()
        disk.free(first)
        assert disk.allocate() == first

    def test_free_unknown_page_raises(self, disk):
        with pytest.raises(PageNotFoundError):
            disk.free(12345)

    def test_double_free_raises(self, disk):
        page_id = disk.allocate()
        disk.free(page_id)
        with pytest.raises(PageNotFoundError):
            disk.free(page_id)

    def test_allocated_page_count_tracks_live_pages(self, disk):
        ids = [disk.allocate() for _ in range(10)]
        assert disk.allocated_page_count == 10
        disk.free(ids[3])
        disk.free(ids[7])
        assert disk.allocated_page_count == 8


class TestTransfers:
    def test_write_then_read_roundtrip(self, disk):
        page_id = disk.allocate()
        disk.write(page_id, b"hello")
        data = disk.read(page_id)
        assert data.startswith(b"hello")
        assert len(data) == disk.page_size

    def test_fresh_page_reads_as_zeroes(self, disk):
        page_id = disk.allocate()
        assert disk.read(page_id) == bytes(disk.page_size)

    def test_write_pads_to_page_size(self, disk):
        page_id = disk.allocate()
        disk.write(page_id, b"x")
        assert len(disk.read(page_id)) == disk.page_size

    def test_oversized_write_raises(self, disk):
        page_id = disk.allocate()
        with pytest.raises(StorageError):
            disk.write(page_id, b"y" * (disk.page_size + 1))

    def test_read_unknown_page_raises(self, disk):
        with pytest.raises(PageNotFoundError):
            disk.read(999)

    def test_read_after_free_raises(self, disk):
        page_id = disk.allocate()
        disk.free(page_id)
        with pytest.raises(PageNotFoundError):
            disk.read(page_id)

    def test_writes_do_not_leak_between_pages(self, disk):
        a, b = disk.allocate(), disk.allocate()
        disk.write(a, b"aaaa")
        disk.write(b, b"bbbb")
        assert disk.read(a).startswith(b"aaaa")
        assert disk.read(b).startswith(b"bbbb")


class TestStats:
    def test_counters_track_operations(self, disk):
        page_id = disk.allocate()
        disk.write(page_id, b"x")
        disk.read(page_id)
        disk.read(page_id)
        disk.free(page_id)
        stats = disk.stats
        assert (stats.allocations, stats.writes, stats.reads, stats.frees) \
            == (1, 1, 2, 1)

    def test_total_transfers(self):
        stats = IOStats(reads=3, writes=4)
        assert stats.total_transfers == 7

    def test_snapshot_and_delta(self, disk):
        disk.allocate()
        before = disk.stats.snapshot()
        page_id = disk.allocate()
        disk.write(page_id, b"z")
        delta = disk.stats.delta(before)
        assert delta.allocations == 1
        assert delta.writes == 1
        assert delta.reads == 0

    def test_reset(self, disk):
        disk.allocate()
        disk.stats.reset()
        assert disk.stats.allocations == 0


class TestPeekPoke:
    def test_peek_and_poke_bypass_the_counters(self, disk):
        page_id = disk.allocate()
        disk.write(page_id, b"payload")
        before = disk.stats.snapshot()
        assert disk.peek(page_id).startswith(b"payload")
        disk.poke(page_id, b"corrupted")
        delta = disk.stats.delta(before)
        assert (delta.reads, delta.writes) == (0, 0)
        assert disk.read(page_id).startswith(b"corrupted")

    def test_poke_pads_and_validates_size(self, disk):
        page_id = disk.allocate()
        disk.poke(page_id, b"x")
        assert len(disk.peek(page_id)) == disk.page_size
        with pytest.raises(StorageError):
            disk.poke(page_id, b"y" * (disk.page_size + 1))

    def test_peek_unknown_page_raises(self, disk):
        with pytest.raises(PageNotFoundError):
            disk.peek(999)

    def test_file_disk_peek_sees_persisted_not_staged(self, tmp_path):
        with FileDisk(str(tmp_path / "p.bin"), page_size=128) as disk:
            page_id = disk.allocate()
            disk.write(page_id, b"committed")
            disk.sync()
            disk.write(page_id, b"staged only")
            # read() sees the staged image, peek() the durable one.
            assert disk.read(page_id).startswith(b"staged only")
            assert disk.peek(page_id).startswith(b"committed")


class TestPageSizeValidation:
    def test_tiny_page_size_rejected(self):
        with pytest.raises(StorageError):
            InMemoryDisk(page_size=16)


class TestFileDisk:
    def test_roundtrip_through_real_file(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FileDisk(path, page_size=256) as disk:
            a = disk.allocate()
            b = disk.allocate()
            disk.write(a, b"first page")
            disk.write(b, b"second page")
            assert disk.read(a).startswith(b"first page")
            assert disk.read(b).startswith(b"second page")
        # Superblock page at offset 0 plus two data pages.
        assert os.path.getsize(path) == 3 * 256

    def test_free_then_reuse(self, tmp_path):
        with FileDisk(str(tmp_path / "d.bin"), page_size=128) as disk:
            a = disk.allocate()
            disk.write(a, b"gone")
            disk.free(a)
            with pytest.raises(PageNotFoundError):
                disk.read(a)
            again = disk.allocate()
            assert again == a
            assert disk.read(again) == bytes(128)

    def test_pages_at_correct_offsets(self, tmp_path):
        path = str(tmp_path / "o.bin")
        with FileDisk(path, page_size=128) as disk:
            first = disk.allocate()
            second = disk.allocate()
            disk.write(second, b"@2")
            disk.write(first, b"@1")
        with open(path, "rb") as handle:
            raw = handle.read()
        # Page ids map to offsets directly; page 0 is the superblock.
        assert raw[0:4] == b"XRSB"
        assert raw[128:130] == b"@1"
        assert raw[256:258] == b"@2"
