"""Run the doctests embedded in module docstrings."""

import doctest

import pytest

import repro.query.engine
import repro.query.path


@pytest.mark.parametrize("module", [
    repro.query.path,
    repro.query.engine,
])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, "%d doctest failures in %s" % (
        results.failed, module.__name__)
    # At least the modules that advertise examples actually carry some.
    if module is repro.query.path:
        assert results.attempted >= 3
