"""The redesigned client API: sessions, DatabaseConfig, the shared
``(runtime, profile)`` trio, warm joins, and the serving front end."""

import threading

import pytest

from repro import DatabaseConfig, Session, XmlDatabase
from repro.core.api import StorageContext, structural_join
from repro.core.session import SessionError
from repro.obs.profile import QueryProfile
from repro.query.admission import AdmissionController, QueryRejected
from repro.server import Server, ServerError
from repro.storage.disk import InMemoryDisk
from repro.storage.errors import StorageError
from repro.storage.timemodel import DiskTimeModel

XML_ONE = ("<department><employee><name>ada</name>"
           "<email>a@x</email></employee></department>")
XML_TWO = ("<department><employee><name>bob</name>"
           "</employee></department>")


@pytest.fixture
def db():
    database = XmlDatabase.create(page_size=512, buffer_pages=64)
    yield database
    database.close()


def starts(result):
    return sorted((e.doc_id, e.start) for e in result.matches)


class TestSession:
    def test_snapshot_session_is_frozen_at_open(self, db):
        db.add_document(XML_ONE)
        with db.session() as session:
            before = starts(session.query("//employee/name"))
            db.add_document(XML_TWO)
            db.flush()
            assert starts(session.query("//employee/name")) == before
            assert len(starts(db.query("//employee/name"))) == 2
        assert session.closed

    def test_live_session_sees_staged_writes(self, db):
        db.add_document(XML_ONE)
        with db.session(snapshot=False) as session:
            assert session.sequence is None
            db.add_document(XML_TWO)  # staged, not committed
            assert len(starts(session.query("//employee/name"))) == 2

    def test_sequence_tracks_commit_sequence(self, db):
        db.add_document(XML_ONE)
        with db.session() as session:
            assert session.sequence == db.commit_sequence
            db.add_document(XML_TWO)
            db.flush()
            assert db.commit_sequence == session.sequence + 1

    def test_closed_session_rejects_queries(self, db):
        session = db.session()
        session.close()
        session.close()  # idempotent
        with pytest.raises(SessionError):
            session.query("//a/b")
        with pytest.raises(SessionError):
            session.tags()

    def test_session_entry_surface_matches_database(self, db):
        db.add_document(XML_ONE)
        with db.session() as session:
            assert session.tags() == db.tags()
            for tag in db.tags():
                assert session.entries_for_tag(tag) == \
                    db.entries_for_tag(tag)
            assert session.entries_for_tag("nonesuch") == []

    def test_session_routes_through_admission(self, db):
        db.add_document(XML_ONE)
        controller = db.attach_admission(
            AdmissionController(max_active=2, max_waiting=0))
        with db.session() as session:
            session.query("//employee/name")
        assert controller.stats.admitted >= 1

    def test_version_store_drains_after_release(self, db):
        db.add_document(XML_ONE)
        versions = db._context.disk.versions
        with db.session():
            db.add_document(XML_TWO)
            db.flush()
            assert versions.retained_images > 0
        assert versions.pin_count == 0
        assert versions.retained_images == 0

    def test_session_gauges(self, db):
        db.add_document(XML_ONE)
        with db.session():
            db.add_document(XML_TWO)
            db.flush()
            snap = db.metrics()
            assert snap["repro_sessions_active"] == 1
            assert snap["repro_snapshot_lag"] == 1
        snap = db.metrics()
        assert snap["repro_sessions_active"] == 0
        assert snap["repro_snapshot_lag"] == 0

    def test_unjournaled_disk_refuses_snapshots(self, tmp_path):
        database = XmlDatabase.create(str(tmp_path / "d.db"),
                                      page_size=512, durability="none")
        try:
            with pytest.raises(StorageError):
                database.session()
        finally:
            database.close()

    def test_fresh_database_bootstrap_commits(self):
        database = XmlDatabase.create(page_size=512)
        try:
            assert database.commit_sequence == 0
            with database.session() as session:
                assert session.sequence == 1
                assert session.tags() == []
        finally:
            database.close()

    def test_database_close_releases_open_sessions(self):
        database = XmlDatabase.create(page_size=512)
        database.add_document(XML_ONE)
        session = database.session()
        database.close()
        assert session.closed

    def test_is_session_type(self, db):
        with db.session() as session:
            assert isinstance(session, Session)
            assert session.is_snapshot
            assert "snapshot" in repr(session)


class TestExplainParity:
    def test_profile_implies_analyze_everywhere(self, db):
        db.add_document(XML_ONE)
        profile = QueryProfile("//employee/name", "xr-stack")
        text = db.explain("//employee/name", profile=profile)
        assert "actual" in text or profile.operators
        with db.session() as session:
            session_profile = QueryProfile("//employee/name", "xr-stack")
            session.explain("//employee/name", profile=session_profile)
            assert session_profile.operators

    def test_query_and_explain_share_the_trio(self, db):
        db.add_document(XML_ONE)
        import inspect

        for owner in (db, db.session()):
            for name in ("query", "explain"):
                parameters = inspect.signature(
                    getattr(owner, name)).parameters
                assert "runtime" in parameters
                assert "profile" in parameters


class TestDatabaseConfig:
    def test_config_reaches_the_disk(self):
        config = DatabaseConfig(page_size=1024, buffer_pages=16)
        database = XmlDatabase.create(config=config)
        try:
            assert database._context.disk.page_size == 1024
            assert database._context.pool.capacity == 16
        finally:
            database.close()

    def test_explicit_kwarg_wins_over_config(self):
        config = DatabaseConfig(page_size=1024)
        database = XmlDatabase.create(page_size=512, config=config)
        try:
            assert database._context.disk.page_size == 512
        finally:
            database.close()

    def test_unknown_option_raises(self):
        with pytest.raises(TypeError):
            DatabaseConfig().merged(page_siez=512)

    def test_storage_context_accepts_config(self):
        model = DiskTimeModel()
        config = DatabaseConfig(page_size=1024, buffer_pages=8,
                                time_model=model)
        context = StorageContext(config=config)
        assert context.disk.page_size == 1024
        assert context.pool.capacity == 8
        assert context.time_model is model

    def test_from_pool_accepts_config(self):
        from repro.storage.buffer import BufferPool

        model = DiskTimeModel()
        pool = BufferPool(InMemoryDisk(page_size=512), capacity=4)
        context = StorageContext.from_pool(
            pool, config=DatabaseConfig(time_model=model))
        assert context.time_model is model

    def test_defaults_unchanged_without_config(self):
        database = XmlDatabase.create()
        try:
            assert database._context.disk.page_size == 4096
            assert database._context.pool.capacity == 256
        finally:
            database.close()


class TestWarmJoin:
    def test_cold_join_counts_build_separately(self, db):
        db.add_document(XML_ONE)
        ancestors = db.entries_for_tag("employee")
        descendants = db.entries_for_tag("name")
        cold = structural_join(ancestors, descendants,
                               algorithm="xr-stack")
        assert cold.pairs
        warm = structural_join(ancestors, descendants,
                               algorithm="xr-stack", cold=False)
        assert warm.pairs == cold.pairs
        assert warm.build_page_misses == 0

    def test_warm_join_reuses_resident_pages(self):
        context = StorageContext(page_size=512, buffer_pages=64)
        entries_a = []
        entries_d = []
        db = XmlDatabase.create(page_size=512, buffer_pages=64)
        db.add_document(XML_ONE)
        entries_a = db.entries_for_tag("employee")
        entries_d = db.entries_for_tag("name")
        db.close()
        first = structural_join(entries_a, entries_d, algorithm="b+",
                                context=context, cold=False)
        second = structural_join(entries_a, entries_d, algorithm="b+",
                                 context=context, cold=False)
        assert second.pairs == first.pairs
        assert second.page_misses <= first.page_misses


class TestServer:
    def test_server_round_trip(self, db):
        db.add_document(XML_ONE)
        db.flush()
        with Server(db, workers=2) as server:
            result = server.query("//employee/name")
            assert len(result.matches) == 1
            text = server.explain("//employee/name").result(10)
            assert "plan" in text
        assert not server.running

    def test_submit_requires_running_server(self, db):
        server = Server(db, workers=1)
        with pytest.raises(ServerError):
            server.submit("//a/b")

    def test_full_queue_sheds_load_without_blocking(self, db):
        db.add_document(XML_ONE)
        db.flush()
        server = Server(db, workers=1, queue_depth=1)
        # Not started: workers never drain, so the queue fills.
        server._running = True
        first = server.submit("//employee/name", block=False)
        shed = None
        for _ in range(3):  # qsize is advisory; fill until rejection
            shed = server.submit("//employee/name", block=False)
            if shed.done():
                break
        assert isinstance(shed.exception(0), QueryRejected)
        assert server.stats.rejected >= 1
        assert not first.done()  # queued, awaiting a worker

    def test_server_metrics_registered(self, db):
        db.add_document(XML_ONE)
        db.flush()
        with Server(db, workers=2) as server:
            server.query("//employee/name")
        snap = db.metrics()
        assert snap["repro_server_requests_total"] == 1
        assert snap["repro_server_latency_seconds"]["count"] == 1
        assert "repro_server_requests_total" in db.metrics_text()

    def test_snapshot_false_serves_staged_state(self, db):
        db.add_document(XML_ONE)
        db.flush()
        with Server(db, workers=1) as server:
            db.add_document(XML_TWO)  # staged only
            live = server.query("//employee/name", snapshot=False)
            assert len(live.matches) == 2

    def test_timed_out_query_is_cancelled_not_abandoned(self, db):
        """A synchronous query() whose wait expires cancels its request:
        the worker skips it instead of running work nobody wants."""
        db.add_document(XML_ONE)
        db.flush()
        gate = threading.Event()
        real_query = db.query

        def gated_query(path, runtime=None, profile=None):
            gate.wait(10)
            return real_query(path, runtime=runtime, profile=profile)

        db.query = gated_query
        server = Server(db, workers=1).start()
        try:
            # Wedge the only worker, then time out behind it.
            blocker = server.submit("//employee/name", snapshot=False)
            with pytest.raises(TimeoutError):
                server.query("//employee/name", snapshot=False,
                             timeout=0.05)
            assert server.stats.timeouts == 1
            assert server.stats.cancelled == 1
            gate.set()
            # The cancelled request is skipped: only the blocker and this
            # follow-up are ever served.
            server.query("//employee/name", snapshot=False, timeout=10)
            blocker.result(10)
            assert server.stats.served == 2
        finally:
            db.query = real_query
            server.stop()
        snap = db.metrics()
        assert snap["repro_server_timeouts"] == 1
        assert snap["repro_server_cancelled_total"] == 1

    def test_stop_fails_queued_futures(self, db):
        """stop() drains the queue: nobody is left waiting forever on a
        future no worker will ever serve."""
        db.add_document(XML_ONE)
        db.flush()
        server = Server(db, workers=2)
        server._running = True  # accepted requests, workers not yet up
        futures = [server.submit("//employee/name") for _ in range(3)]
        server.stop()
        for future in futures:
            with pytest.raises(ServerError, match="server stopped"):
                future.result(1)
        assert server.stats.drained == 3
        assert server.stats.as_dict()["drained"] == 3
        assert db.metrics()["repro_server_queue_depth"] == 0
