"""Bounded disks, unbounded uptime: retention, re-seed, ENOSPC survival.

Three layers under test:

* **storage** — errno-accurate ENOSPC injection
  (:meth:`~repro.storage.faults.FaultInjectingDisk.fail_with_disk_full`
  / :meth:`~repro.storage.faults.FaultInjectingDisk.fill_disk`), the
  clean-failed-commit guarantee (nothing durable, sequence reused,
  database readable throughout), and the
  :class:`~repro.storage.retention.CheckpointManager` horizon math;
* **database** — the read-only degradation ladder: a commit that hits
  ENOSPC flips the database read-only with a typed
  :class:`~repro.storage.errors.ReadOnlyError` on writes, reads keep
  answering, and the first successful commit flips it back;
* **cluster** — retention driven by the shared horizon (checkpoint /
  standby floor / PITR window), the ``max_standby_lag`` budget that
  re-seeds stragglers instead of holding retention forever, disk-full
  as a degradation (no failover) with emergency pruning, and the
  seeded retention-chaos sweep: prune under lag, ENOSPC mid-commit,
  primary kill during the run — with **zero acked-commit loss** and a
  **bounded archive high-water mark** required every schedule.

``CHAOS_SEED`` reproduces a CI failure locally; ``RETENTION_SCHEDULES``
scales the sweep (CI runs 50).
"""

import os
import random

import pytest

from repro.cluster import ClusterClient, ClusterWriteError, ReplicaSet
from repro.core.database import XmlDatabase
from repro.storage.disk import FileDisk
from repro.storage.errors import (DiskFullError, ReadOnlyError,
                                  is_disk_full_error)
from repro.storage.faults import FaultInjectingDisk
from repro.storage.journal import Archive
from repro.storage.replication import LocalDirShipper, StandbyReplica
from repro.storage.retention import (CheckpointManager, RetentionError,
                                     RetentionPolicy)

SEED = int(os.environ.get("CHAOS_SEED", "20030305"))
SCHEDULES = int(os.environ.get("RETENTION_SCHEDULES", "6"))

PAGE_SIZE = 512
BUFFER_PAGES = 32

XML = ("<dept><team><name>db</name>"
       "<member><name>ada</name></member></team></dept>")


def make_primary(tmp_path, name="primary"):
    path = str(tmp_path / ("%s.db" % name))
    archive_dir = str(tmp_path / ("%s.archive" % name))
    disk = FaultInjectingDisk(
        FileDisk(path, PAGE_SIZE, durability="archive",
                 archive_dir=archive_dir))
    db = XmlDatabase.create(disk=disk, page_size=PAGE_SIZE,
                            buffer_pages=BUFFER_PAGES)
    db.add_document(XML, name="seed")
    db.flush()
    return db, disk, archive_dir


def commit_doc(db, label):
    db.add_document("<d><e>%s</e></d>" % label, name=label)
    db.flush()
    return db.commit_sequence


class TestRetentionPolicy:
    def test_rejects_bad_numbers(self):
        with pytest.raises(RetentionError):
            RetentionPolicy(pitr_window=-1)
        with pytest.raises(RetentionError):
            RetentionPolicy(checkpoint_every=0)
        with pytest.raises(RetentionError):
            RetentionPolicy(max_standby_lag=-1)
        with pytest.raises(RetentionError):
            RetentionPolicy(keep_checkpoints=0)

    def test_manager_requires_an_archive(self):
        with pytest.raises(RetentionError):
            CheckpointManager(None)


class TestSafeHorizon:
    def test_no_checkpoint_means_no_pruning(self, tmp_path):
        db, _disk, _adir = make_primary(tmp_path)
        manager = CheckpointManager(db.archive,
                                    RetentionPolicy(pitr_window=0))
        for index in range(3):
            commit_doc(db, "w%d" % index)
        assert manager.safe_horizon() is None
        assert manager.prune() == 0
        assert db.archive.oldest_sequence() == 1
        db.close()

    def test_horizon_is_min_of_checkpoint_window_and_floor(self, tmp_path):
        db, _disk, _adir = make_primary(tmp_path)
        manager = CheckpointManager(db.archive,
                                    RetentionPolicy(pitr_window=2))
        for index in range(6):
            commit_doc(db, "w%d" % index)
        record = manager.checkpoint(db)       # checkpoint at head=7
        head = db.commit_sequence
        assert record["sequence"] == head
        # Window binds: min(7, 7-2) = 5.
        assert manager.safe_horizon() == head - 2
        # Standby floor binds harder.
        assert manager.safe_horizon(standby_floor=3) == 3
        # A floor below 1 forbids pruning entirely.
        assert manager.safe_horizon(standby_floor=0) is None
        db.close()

    def test_prune_respects_window_and_counts_holds(self, tmp_path):
        db, _disk, _adir = make_primary(tmp_path)
        manager = CheckpointManager(db.archive,
                                    RetentionPolicy(pitr_window=2))
        for index in range(6):
            commit_doc(db, "w%d" % index)
        manager.checkpoint(db)
        head = db.commit_sequence
        removed = manager.prune(standby_floor=3)
        assert removed == 3                    # sequences 1..3
        assert db.archive.oldest_sequence() == 4
        assert manager.stats.holds == 1        # the floor was binding
        removed = manager.prune()              # window now binds: up to 5
        assert removed == 2
        assert db.archive.oldest_sequence() == head - 2 + 1
        assert manager.stats.holds == 1        # not a hold this time
        db.close()

    def test_emergency_prune_waives_window_not_checkpoint(self, tmp_path):
        db, _disk, _adir = make_primary(tmp_path)
        manager = CheckpointManager(db.archive,
                                    RetentionPolicy(pitr_window=64))
        for index in range(4):
            commit_doc(db, "w%d" % index)
        manager.checkpoint(db)
        ckpt = manager.stats.last_checkpoint_sequence
        commit_doc(db, "after-ckpt")
        # The huge window forbids normal pruning...
        assert manager.prune() == 0
        # ...but disk pressure cuts straight to the checkpoint floor.
        removed = manager.emergency_prune()
        assert removed == ckpt
        assert db.archive.oldest_sequence() == ckpt + 1
        assert manager.stats.emergency_prunes == 1
        db.close()

    def test_restore_works_from_checkpoint_after_pruning(self, tmp_path):
        """The acceptance property: PITR inside the window still works
        once everything below the horizon is gone."""
        db, _disk, archive_dir = make_primary(tmp_path)
        manager = CheckpointManager(db.archive,
                                    RetentionPolicy(pitr_window=2))
        for index in range(5):
            commit_doc(db, "w%d" % index)
        manager.checkpoint(db)
        commit_doc(db, "tail-0")
        commit_doc(db, "tail-1")
        manager.prune()
        db.flush()
        record = manager.latest_checkpoint()
        restored = XmlDatabase.restore(
            record["directory"], str(tmp_path / "restored.db"),
            archive_dir=archive_dir, page_size=PAGE_SIZE,
            buffer_pages=BUFFER_PAGES)
        names = [n for _i, n in restored.documents()]
        assert names[-1] == "tail-1"           # rolled forward to head
        assert restored.restore_result.sequence == db.commit_sequence
        restored.close()
        db.close()

    def test_checkpoint_cadence_and_superseded_drop(self, tmp_path):
        db, _disk, _adir = make_primary(tmp_path)
        manager = CheckpointManager(
            db.archive, RetentionPolicy(pitr_window=0, checkpoint_every=3,
                                        keep_checkpoints=1))
        assert manager.maybe_checkpoint(db) is None   # head 1 < cadence
        for index in range(2):
            commit_doc(db, "w%d" % index)
        first = manager.maybe_checkpoint(db)
        assert first is not None and first["sequence"] == 3
        assert manager.maybe_checkpoint(db) is None   # not due again yet
        for index in range(3):
            commit_doc(db, "x%d" % index)
        second = manager.maybe_checkpoint(db)
        assert second is not None and second["sequence"] == 6
        # keep_checkpoints=1: the superseded snapshot directory is gone.
        assert manager.stats.checkpoints_dropped == 1
        assert not os.path.isdir(first["directory"])
        assert os.path.isdir(second["directory"])
        db.close()

    def test_checkpoint_record_survives_manager_restart(self, tmp_path):
        db, _disk, _adir = make_primary(tmp_path)
        manager = CheckpointManager(db.archive, RetentionPolicy())
        manager.checkpoint(db)
        sequence = manager.stats.last_checkpoint_sequence
        reopened = CheckpointManager(db.archive, RetentionPolicy(),
                                     checkpoint_dir=manager.checkpoint_dir)
        assert reopened.stats.last_checkpoint_sequence == sequence
        assert reopened.latest_checkpoint()["sequence"] == sequence
        db.close()

    def test_enospc_during_checkpoint_leaves_no_half_record(
            self, tmp_path, monkeypatch):
        import errno as _errno

        import repro.storage.backup as backup_mod

        db, _disk, _adir = make_primary(tmp_path)
        manager = CheckpointManager(db.archive, RetentionPolicy())

        def full(_source, _dest):
            raise OSError(_errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(backup_mod, "hot_backup", full)
        with pytest.raises(DiskFullError):
            manager.checkpoint(db)
        assert manager.latest_checkpoint() is None
        assert not os.path.isdir(
            os.path.join(manager.checkpoint_dir, "ckpt-inprogress"))
        # A half-written checkpoint must never justify pruning.
        assert manager.prune() == 0
        db.close()


class TestEnospcInjection:
    def test_single_shot_enospc_fails_commit_cleanly(self, tmp_path):
        db, disk, _adir = make_primary(tmp_path)
        sequence = db.commit_sequence
        disk.fail_with_disk_full(1)
        db.add_document(XML, name="doomed")
        with pytest.raises(DiskFullError):
            db.flush()
        assert disk.enospc_injected == 1
        # Nothing durable, sequence not consumed, archive gap-free.
        assert db.commit_sequence == sequence
        assert db.archive.sequences() == list(range(1, sequence + 1))
        # Single-shot: the retry goes straight through and reuses the
        # sequence the failed commit gave back.
        db.flush()
        assert db.commit_sequence == sequence + 1
        assert db.archive.sequences() == list(range(1, sequence + 2))
        assert [n for _i, n in db.documents()][-1] == "doomed"
        db.close()

    def test_sticky_disk_full_until_freed(self, tmp_path):
        db, disk, _adir = make_primary(tmp_path)
        disk.fill_disk()
        assert disk.disk_full
        db.add_document(XML, name="waiting")
        for _ in range(3):
            with pytest.raises(DiskFullError):
                db.flush()
        assert disk.enospc_injected == 3
        disk.free_space()
        assert not disk.disk_full
        db.flush()
        assert [n for _i, n in db.documents()][-1] == "waiting"
        db.close()

    def test_is_disk_full_error_walks_causes(self):
        import errno as _errno

        chained = DiskFullError("outer")
        chained.__cause__ = OSError(_errno.ENOSPC, "No space")
        assert is_disk_full_error(chained)
        assert is_disk_full_error(OSError(_errno.ENOSPC, "No space"))
        assert is_disk_full_error(ReadOnlyError("read-only"))
        assert not is_disk_full_error(OSError(_errno.EIO, "I/O error"))
        assert not is_disk_full_error(ValueError("nope"))

    def test_no_partial_segment_left_behind(self, tmp_path):
        db, disk, archive_dir = make_primary(tmp_path)
        disk.fill_disk()
        db.add_document(XML, name="w")
        with pytest.raises(DiskFullError):
            db.flush()
        archive = Archive(archive_dir, PAGE_SIZE)
        for sequence in archive.sequences():
            assert archive.read(sequence) is not None   # all decodable
        disk.free_space()
        db.close()


class TestReadOnlyDegrade:
    def test_sticky_enospc_degrades_then_auto_resumes(self, tmp_path):
        """The dedicated ENOSPC ladder test: sticky disk-full flips the
        database read-only, reads keep working, writes raise the typed
        error, and freeing space auto-recovers on the next write."""
        db, disk, _adir = make_primary(tmp_path)
        disk.fill_disk()
        db.add_document(XML, name="stuck")
        with pytest.raises(DiskFullError):
            db.flush()
        assert not db.writable
        assert "ENOSPC" in db.degraded_reason

        # Reads keep answering from committed + staged state.
        assert len(db.query("//member/name").matches) >= 1
        assert db.ping() == db.commit_sequence

        # Writes are rejected with the typed error (and each attempt
        # retries the stuck commit underneath — still full, still fails).
        with pytest.raises(ReadOnlyError):
            db.add_document(XML, name="rejected")
        with pytest.raises(ReadOnlyError):
            db.remove_document(1)
        stats = db.stats()["disk_full"]
        assert stats["degraded"] and stats["commit_failures"] >= 3

        # Space returns: the very next write heals the database.
        disk.free_space()
        doc_id = db.add_document(XML, name="healed")
        db.flush()
        assert db.writable and db.degraded_reason is None
        names = [n for _i, n in db.documents()]
        assert "stuck" in names and "healed" in names and doc_id > 1
        stats = db.stats()["disk_full"]
        assert not stats["degraded"] and stats["recoveries"] == 1
        snap = db.metrics()
        assert snap["repro_disk_full_degraded"] == 0
        assert snap["repro_disk_full_recoveries"] == 1
        db.close()


def make_cluster(tmp_path, standbys=2, retention_policy=None,
                 **set_options):
    """A retention-enabled ReplicaSet over real files; returns
    ``(replica_set, client, primary_db, primary_fault_disk, replicas)``."""
    db, disk, archive_dir = make_primary(tmp_path)
    backup = str(tmp_path / "base.backup")
    db.hot_backup(backup)
    replicas = []
    for index in range(standbys):
        replicas.append(StandbyReplica.from_backup(
            backup, str(tmp_path / ("standby-%d.db" % index)),
            LocalDirShipper(archive_dir, PAGE_SIZE), page_size=PAGE_SIZE,
            buffer_pages=BUFFER_PAGES, backoff_seconds=0.001,
            max_backoff_seconds=0.01))
    scratch = str(tmp_path / "scratch")
    os.makedirs(scratch, exist_ok=True)
    set_options.setdefault("cooldown_seconds", 0.02)
    replica_set = ReplicaSet(db, replicas, scratch_dir=scratch,
                             retention_policy=retention_policy,
                             **set_options)
    return replica_set, ClusterClient(replica_set), db, disk, replicas


class TestClusterRetention:
    def test_sustained_writes_keep_the_archive_bounded(self, tmp_path):
        policy = RetentionPolicy(pitr_window=2, checkpoint_every=3,
                                 max_standby_lag=8)
        rs, client, db, _disk, _replicas = make_cluster(
            tmp_path, retention_policy=policy)
        bound = policy.pitr_window + policy.checkpoint_every + 2
        high_water = 0
        for index in range(20):
            client.add_document("<d><e>doc%d</e></d>" % index)
            rs.tick()
            _o, _n, count, _b = db.archive.replay_window()
            high_water = max(high_water, count)
        assert high_water <= bound
        status = rs.status()
        assert status["retention"]["prunes"] > 0
        assert status["retention"]["checkpoints"] > 0
        # Every standby kept up — retention never outran a healthy tail.
        for backend in status["backends"]:
            assert backend["applied_sequence"] == status["acked_sequence"]
        rs.close()

    def test_lag_budget_reseeds_straggler_which_converges(self, tmp_path):
        policy = RetentionPolicy(pitr_window=1, checkpoint_every=2,
                                 max_standby_lag=3)
        rs, client, db, _disk, replicas = make_cluster(
            tmp_path, retention_policy=policy)
        frozen = replicas[1]
        real_catch_up = frozen.catch_up
        frozen.catch_up = lambda limit=None: 0   # wedge the tail
        for index in range(6):
            client.add_document("<d><e>doc%d</e></d>" % index)
            rs.tick()
        snap = rs.observability.snapshot()
        assert snap["repro_cluster_lag_budget_marks_total"] >= 1
        assert snap["repro_cluster_reseeds_total"] >= 1
        assert frozen.stats.reseeds >= 1
        frozen.catch_up = real_catch_up
        client.add_document("<d><e>after</e></d>")
        for _ in range(3):
            rs.tick()
        status = rs.status()
        for backend in status["backends"]:
            assert backend["applied_sequence"] == status["acked_sequence"]
            assert not backend.get("needs_reseed")
        rs.close()

    def test_pruned_at_source_triggers_reseed_via_tick(self, tmp_path):
        """A standby that discovers the prune itself (fetch below the
        source's floor) marks needs_reseed; the next tick re-seeds it."""
        policy = RetentionPolicy(pitr_window=1, checkpoint_every=2)
        rs, client, db, _disk, replicas = make_cluster(
            tmp_path, standbys=1, retention_policy=policy)
        straggler = replicas[0]
        real_catch_up = straggler.catch_up
        straggler.catch_up = lambda limit=None: 0
        for index in range(6):
            client.add_document("<d><e>doc%d</e></d>" % index)
            rs.tick()
        # Retention pruned past the straggler (no lag budget: the floor
        # held only while the standby was healthy — wedged means its
        # floor froze, so force the situation by pruning directly).
        straggler.catch_up = real_catch_up
        db.retention.emergency_prune()           # cut to checkpoint floor
        assert straggler.catch_up() == 0
        assert straggler.needs_reseed
        assert straggler.stats.pruned_at_source == 1
        rs.tick()                                 # the healing tick
        assert not straggler.needs_reseed
        assert straggler.stats.reseeds == 1
        status = rs.status()
        assert (status["backends"][1]["applied_sequence"]
                == status["acked_sequence"])
        rs.close()

    def test_disk_full_primary_degrades_without_failover(self, tmp_path):
        policy = RetentionPolicy(pitr_window=2, checkpoint_every=2)
        rs, client, db, disk, _replicas = make_cluster(
            tmp_path, standbys=1, retention_policy=policy)
        for index in range(4):
            client.add_document("<d><e>doc%d</e></d>" % index)
            rs.tick()
        acked = rs.acked_sequence

        disk.fill_disk()
        with pytest.raises(ClusterWriteError) as info:
            client.add_document("<d><e>boom</e></d>")
        assert is_disk_full_error(info.value)
        for _ in range(3):
            rs.tick()         # degradation ticks: prune + retry, no failover
        status = rs.status()
        assert status["epoch"] == 1               # no failover
        assert status["primary"] == "node-0"
        assert status["writable"] is False
        assert status["retention"]["emergency_prunes"] >= 1
        # Reads still flow — from the primary and the standby.
        assert len(client.query("//d").rows) >= 4
        snap = rs.observability.snapshot()
        assert snap["repro_cluster_disk_full_degradations_total"] == 1
        assert snap["repro_cluster_failovers_total"] == 0

        disk.free_space()
        rs.tick()                                 # heals the stuck commit
        status = rs.status()
        assert status["writable"] is True
        ack = client.add_document("<d><e>recovered</e></d>")
        assert ack.sequence > acked
        snap = rs.observability.snapshot()
        assert snap["repro_cluster_disk_full_recoveries_total"] == 1
        assert snap["repro_cluster_failovers_total"] == 0
        rs.close()


def run_retention_schedule(tmp_path, rng, ordinal):
    """One seeded chaos schedule; returns its high-water mark.

    Random interleaving of acked writes with: single-shot ENOSPC on a
    commit, sticky disk-full windows (freed later), a wedged standby
    tail (unwedged later), and — in some schedules — a primary kill
    mid-run (failover + retention re-attach on the new primary).  The
    invariants checked at the end:

    * zero acked-commit loss — every acked write is queryable;
    * zero permanent stalls — every standby converges to the head
      (possibly via snapshot re-seed);
    * the archive high-water mark stays bounded.
    """
    policy = RetentionPolicy(pitr_window=rng.choice((1, 2, 3)),
                             checkpoint_every=rng.choice((2, 3)),
                             max_standby_lag=rng.choice((3, 5)))
    schedule_dir = tmp_path / ("schedule-%d" % ordinal)
    os.makedirs(str(schedule_dir), exist_ok=True)
    rs, client, db, disk, replicas = make_cluster(
        schedule_dir, standbys=2, retention_policy=policy, down_after=2)
    bound = (policy.pitr_window + policy.checkpoint_every
             + policy.max_standby_lag + 2)
    kill_at = rng.randrange(8, 16) if rng.random() < 0.3 else None
    acked_labels = []
    high_water = 0
    frozen = None
    frozen_until = -1
    sticky_until = -1
    try:
        for op in range(24):
            if op == kill_at:
                primary = rs.view.primary
                d = primary.database._context.disk
                d.kill_after = d.op_counts["physical-write"] + 1
                try:
                    client.add_document("<d><e>killer</e></d>")
                except Exception:
                    pass              # unacked by definition
                for _ in range(12):
                    rs.tick()
                    if (rs.status()["epoch"] > 1
                            and rs.view.primary is not None):
                        break
                assert rs.view.primary is not None, \
                    "failover did not complete (schedule %d)" % ordinal
            if frozen is not None and op >= frozen_until:
                frozen[0].catch_up = frozen[1]
                frozen = None
            if sticky_until >= 0 and op >= sticky_until:
                for node in rs.view.nodes:
                    if node.role == "primary":
                        d = node.database._context.disk
                        if hasattr(d, "free_space"):
                            d.free_space()
                sticky_until = -1
            roll = rng.random()
            if roll < 0.10 and frozen is None:
                replica = rng.choice(
                    [n.replica for n in rs.view.standbys] or [None])
                if replica is not None:
                    frozen = (replica, replica.catch_up)
                    replica.catch_up = lambda limit=None: 0
                    frozen_until = op + rng.randrange(3, 8)
            elif roll < 0.18:
                primary = rs.view.primary
                if primary is not None:
                    d = primary.database._context.disk
                    if hasattr(d, "fail_with_disk_full"):
                        d.fail_with_disk_full(1)
            elif roll < 0.24 and sticky_until < 0:
                primary = rs.view.primary
                if primary is not None:
                    d = primary.database._context.disk
                    if hasattr(d, "fill_disk"):
                        d.fill_disk()
                        sticky_until = op + rng.randrange(2, 5)
            label = "doc-%d-%d" % (ordinal, op)
            try:
                client.add_document("<d><e>%s</e></d>" % label, name=label)
                acked_labels.append(label)
            except Exception:
                pass          # unacked: allowed to be lost
            rs.tick()
            primary = rs.view.primary
            if primary is not None:
                archive = primary.database.archive
                if archive is not None:
                    high_water = max(high_water,
                                     archive.replay_window()[2])
        # Drain: free space, unwedge, tick to convergence.
        if frozen is not None:
            frozen[0].catch_up = frozen[1]
        for node in rs.view.nodes:
            d = getattr(node, "database", None)
            d = d._context.disk if d is not None else None
            if d is not None and hasattr(d, "free_space"):
                d.free_space()
        for _ in range(20):
            rs.tick()
            status = rs.status()
            if all(b["applied_sequence"] == status["acked_sequence"]
                   and not b.get("needs_reseed")
                   for b in status["backends"]):
                break
        status = rs.status()
        # Zero permanent stalls: every surviving standby converged.
        for backend in status["backends"]:
            assert backend["applied_sequence"] == status["acked_sequence"], \
                "%s stuck at %d vs acked %d (schedule %d)" % (
                    backend["id"], backend["applied_sequence"],
                    status["acked_sequence"], ordinal)
        # Zero acked-commit loss: every acked doc answers on the primary.
        primary = rs.view.primary
        assert primary is not None
        present = {name for _i, name in primary.database.documents()}
        lost = [label for label in acked_labels if label not in present]
        assert not lost, "acked writes lost: %r (schedule %d)" % (
            lost, ordinal)
        assert high_water <= bound, \
            "archive high-water %d above bound %d (schedule %d)" % (
                high_water, bound, ordinal)
        return high_water
    finally:
        rs.close()


class TestRetentionChaosSweep:
    def test_seeded_schedules_survive_with_bounded_archive(self, tmp_path):
        rng = random.Random(SEED)
        for ordinal in range(SCHEDULES):
            run_retention_schedule(tmp_path, rng, ordinal)
