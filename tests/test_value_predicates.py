"""Tests for attributes and value predicates (the paper's "combination of
value search and structure search")."""

import pytest

from repro.query import PathQueryEngine, parse_path
from repro.query.engine import QueryError
from repro.query.path import AttributePredicate, PathSyntaxError
from repro.xmldata.parser import parse_document, serialize_document

SOURCE = """
<dept>
  <emp id="e1" grade="senior"><name>w</name>
    <emp id="e2" grade="junior"><name>x</name></emp>
  </emp>
  <emp id="e3" grade="senior"><name>y</name></emp>
  <emp id="e4"><name>z</name></emp>
</dept>
"""


@pytest.fixture(scope="module")
def engine():
    return PathQueryEngine(parse_document(SOURCE))


class TestAttributeModel:
    def test_parser_stores_attributes(self):
        doc = parse_document(SOURCE)
        emps = doc.elements_by_tag("emp")
        assert emps[0].attributes == {"id": "e1", "grade": "senior"}
        assert emps[3].attributes == {"id": "e4"}

    def test_serializer_emits_attributes(self):
        doc = parse_document('<a x="1" y="a &amp; b"><b/></a>')
        again = parse_document(serialize_document(doc))
        assert again.root.attributes == {"x": "1", "y": "a & b"}

    def test_attribute_quotes_escaped(self):
        doc = parse_document("<a/>")
        doc.root.attributes["q"] = 'say "hi"'
        again = parse_document(serialize_document(doc))
        assert again.root.attributes["q"] == 'say "hi"'

    def test_node_at_roundtrip(self):
        doc = parse_document(SOURCE)
        entries = doc.entries_for_tag("emp")
        for entry in entries:
            node = doc.node_at(entry.ptr)
            assert node.tag == "emp"
            assert node.start == entry.start

    def test_generator_id_attributes(self):
        from repro.xmldata.dtd import DEPARTMENT_DTD
        from repro.xmldata.generator import GeneratorConfig, XmlGenerator

        config = GeneratorConfig(id_attributes=True)
        doc = XmlGenerator(DEPARTMENT_DTD, config, seed=1).generate(200)
        ids = [node.attributes.get("id") for node in doc
               if node.tag != "departments"]
        assert all(ids)
        assert len(set(ids)) == len(ids)  # unique


class TestParsingValuePredicates:
    def test_existence(self):
        step = parse_path("//emp[@grade]").steps[0]
        assert step.predicates == (AttributePredicate("grade"),)

    def test_equality_quoted(self):
        step = parse_path('//emp[@grade="senior"]').steps[0]
        assert step.predicates[0].value == "senior"

    def test_equality_bare(self):
        step = parse_path("//emp[@grade=senior]").steps[0]
        assert step.predicates[0].value == "senior"

    def test_mixed_with_structural(self):
        step = parse_path('//emp[@grade="senior"][name]').steps[0]
        assert isinstance(step.predicates[0], AttributePredicate)
        assert not isinstance(step.predicates[1], AttributePredicate)

    def test_str_roundtrip(self):
        for text in ('//emp[@grade="senior"]', "//emp[@id]",
                     '//emp[@a="1"]/name'):
            assert str(parse_path(text)) == text

    @pytest.mark.parametrize("bad", ["//a[@]", "//a[@=x]", '//a[@b="]',
                                     "//a[@b=]"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(PathSyntaxError):
            parse_path(bad)


class TestEvaluation:
    def test_existence_filter(self, engine):
        assert len(engine.evaluate("//emp[@grade]")) == 3
        assert len(engine.evaluate("//emp[@id]")) == 4

    def test_equality_filter(self, engine):
        assert len(engine.evaluate('//emp[@grade="senior"]')) == 2
        assert len(engine.evaluate('//emp[@grade="junior"]')) == 1
        assert len(engine.evaluate('//emp[@grade="none"]')) == 0

    def test_value_then_structure(self, engine):
        # Names of senior employees.
        result = engine.evaluate('//emp[@grade="senior"]/name')
        assert len(result) == 2

    def test_value_and_structure_conjunction(self, engine):
        # Senior employees that manage someone.
        result = engine.evaluate('//emp[@grade="senior"][emp]')
        assert len(result) == 1

    def test_specific_id(self, engine):
        result = engine.evaluate('//emp[@id="e2"]')
        assert len(result) == 1
        node = engine.document.node_at(result.matches[0].ptr)
        assert node.attributes["id"] == "e2"

    def test_holistic_executor_rejects_value_predicates(self):
        from repro.query.twigjoin import twig_from_path

        with pytest.raises(ValueError):
            twig_from_path('//emp[@grade="senior"]')

    def test_view_without_node_access_raises(self, engine):
        class _View:
            def entries_for_tag(self, tag):
                return engine.document.entries_for_tag(tag)

            def tags(self):
                return engine.document.tags()

        blind = PathQueryEngine(_View())
        with pytest.raises(QueryError):
            blind.evaluate("//emp[@grade]")
