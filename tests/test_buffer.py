"""Tests for the LRU buffer pool (repro.storage.buffer)."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.errors import BufferPoolError
from repro.storage.pages import RawPage


def new_raw(pool, payload):
    page = pool.new_page(RawPage(payload))
    pool.unpin(page, dirty=True)
    return page.page_id


class TestBasics:
    def test_new_page_assigns_id_and_pins(self, pool):
        page = pool.new_page(RawPage(b"a"))
        assert page.page_id is not None
        assert page.pin_count == 1
        assert page.dirty

    def test_fetch_hits_cached_page(self, pool):
        page_id = new_raw(pool, b"cached")
        pool.reset_stats()
        page = pool.fetch(page_id)
        assert page.payload == b"cached"
        assert pool.stats.hits == 1
        assert pool.stats.misses == 0
        pool.unpin(page)

    def test_fetch_after_eviction_is_a_miss(self):
        pool = BufferPool(InMemoryDisk(256), capacity=2)
        first = new_raw(pool, b"one")
        new_raw(pool, b"two")
        new_raw(pool, b"three")  # evicts "one"
        pool.reset_stats()
        page = pool.fetch(first)
        assert page.payload == b"one"
        assert pool.stats.misses == 1
        pool.unpin(page)

    def test_unpin_without_pin_raises(self, pool):
        page = pool.new_page(RawPage(b"x"))
        pool.unpin(page)
        with pytest.raises(BufferPoolError):
            pool.unpin(page)

    def test_new_page_with_existing_id_raises(self, pool):
        page = pool.new_page(RawPage(b"x"))
        pool.unpin(page, dirty=True)
        with pytest.raises(BufferPoolError):
            pool.new_page(page)

    def test_capacity_must_be_positive(self, disk):
        with pytest.raises(BufferPoolError):
            BufferPool(disk, capacity=0)


class TestEviction:
    def test_lru_order(self):
        pool = BufferPool(InMemoryDisk(256), capacity=2)
        a = new_raw(pool, b"a")
        b = new_raw(pool, b"b")
        # Touch a so b becomes the LRU victim.
        pool.unpin(pool.fetch(a))
        new_raw(pool, b"c")
        assert pool.resident_count == 2
        pool.reset_stats()
        pool.unpin(pool.fetch(a))  # hit
        assert pool.stats.hits == 1
        pool.unpin(pool.fetch(b))  # miss: b was evicted
        assert pool.stats.misses == 1

    def test_pinned_pages_are_not_evicted(self):
        pool = BufferPool(InMemoryDisk(256), capacity=2)
        pinned = pool.new_page(RawPage(b"pinned"))
        new_raw(pool, b"other")
        new_raw(pool, b"third")  # must evict "other", not the pinned page
        assert pool._frames[pinned.page_id] is pinned
        pool.unpin(pinned, dirty=True)

    def test_all_pinned_raises(self):
        pool = BufferPool(InMemoryDisk(256), capacity=2)
        pool.new_page(RawPage(b"a"))
        pool.new_page(RawPage(b"b"))
        with pytest.raises(BufferPoolError):
            pool.new_page(RawPage(b"c"))

    def test_dirty_eviction_writes_back(self):
        disk = InMemoryDisk(256)
        pool = BufferPool(disk, capacity=1)
        page_id = new_raw(pool, b"persist me")
        new_raw(pool, b"evictor")
        assert pool.stats.writebacks == 1
        # Data is durable on disk even though the frame is gone.
        fresh_pool = BufferPool(disk, capacity=1)
        page = fresh_pool.fetch(page_id)
        assert page.payload == b"persist me"
        fresh_pool.unpin(page)

    def test_clean_eviction_skips_writeback(self):
        disk = InMemoryDisk(256)
        pool = BufferPool(disk, capacity=1)
        page_id = new_raw(pool, b"v")
        pool.flush_all()  # one physical write; frame is now clean
        pool.reset_stats()
        # Evicting the clean frame must not write it again.
        new_raw(pool, b"w")
        assert pool.stats.evictions == 1
        assert pool.stats.writebacks == 0
        assert disk.stats.writes == 1
        # The evicted page is still intact on disk.
        page = pool.fetch(page_id)
        assert page.payload == b"v"
        pool.unpin(page)


class TestFlushAndClear:
    def test_flush_all_writes_dirty_pages(self, pool, disk):
        new_raw(pool, b"d1")
        new_raw(pool, b"d2")
        before = disk.stats.writes
        pool.flush_all()
        assert disk.stats.writes == before + 2
        pool.flush_all()  # now clean: no further writes
        assert disk.stats.writes == before + 2

    def test_clear_drops_frames(self, pool):
        page_id = new_raw(pool, b"x")
        pool.clear()
        assert pool.resident_count == 0
        page = pool.fetch(page_id)
        assert page.payload == b"x"
        pool.unpin(page)

    def test_clear_with_pinned_page_raises(self, pool):
        pool.new_page(RawPage(b"held"))
        with pytest.raises(BufferPoolError):
            pool.clear()

    def test_free_page_requires_single_pin(self, pool):
        page = pool.new_page(RawPage(b"bye"))
        pool.unpin(page, dirty=True)
        page = pool.fetch(page.page_id)
        fetched_again = pool.fetch(page.page_id)
        with pytest.raises(BufferPoolError):
            pool.free_page(page)
        pool.unpin(fetched_again)
        pool.free_page(page)
        assert page.page_id is None

    def test_pinned_context_manager(self, pool):
        page_id = new_raw(pool, b"ctx")
        with pool.pinned(page_id) as page:
            assert page.pin_count == 1
        assert page.pin_count == 0


class TestStats:
    def test_hit_ratio(self, pool):
        page_id = new_raw(pool, b"h")
        pool.clear()
        pool.reset_stats()
        pool.unpin(pool.fetch(page_id))   # miss
        pool.unpin(pool.fetch(page_id))   # hit
        pool.unpin(pool.fetch(page_id))   # hit
        assert pool.stats.requests == 3
        assert pool.stats.hit_ratio == pytest.approx(2 / 3)

    def test_hit_ratio_empty(self, pool):
        assert pool.stats.hit_ratio == 0.0

    def test_snapshot_delta(self, pool):
        page_id = new_raw(pool, b"s")
        pool.clear()
        before = pool.stats.snapshot()
        pool.unpin(pool.fetch(page_id))
        delta = pool.stats.delta(before)
        assert delta.misses == 1
        assert delta.hits == 0
