"""Integrity-scrubber sweep: injected bit-flips, quarantine, rebuild.

A seeded sweep flips random bits in persisted index pages (silent media
corruption, injected through ``FaultInjectingDisk.peek``/``poke``) and
checks the robustness contract end to end:

* the scrubber detects **every** injected flip (CRC-32 catches any
  single-bit change) and quarantines the owning structure;
* queries against a quarantined index fail fast with the typed
  :class:`IndexQuarantinedError` — never a raw mid-join checksum error;
* without a scrub, a mid-join :class:`ChecksumError` is wrapped into
  :class:`QueryError` carrying the query text and the failing tag;
* a quarantined XR-tree rebuilds from its surviving leaf records, passes
  ``check_xrtree``, and post-rebuild query results match the oracle join.

Set ``CHAOS_SEED`` to reproduce a CI failure locally.
"""

import os
import random

import pytest

from repro.core.api import oracle_join
from repro.core.database import XmlDatabase
from repro.query.engine import QueryError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.errors import ChecksumError
from repro.storage.faults import FaultInjectingDisk
from repro.storage.scrub import IndexQuarantinedError

SEED = int(os.environ.get("CHAOS_SEED", "20030306"))

PAGE_SIZE = 512
BUFFER_PAGES = 32

#: Enough ``item`` elements that the tag's XR-tree has internal nodes at
#: 512-byte pages (leaves hold ~20 entries), so flips can target either
#: tree level.
ITEMS = 120

XML = ("<r>" + "<item><x/></item>" * ITEMS + "</r>")


def _build_db():
    disk = FaultInjectingDisk(InMemoryDisk(PAGE_SIZE))
    db = XmlDatabase.create(disk=disk, page_size=PAGE_SIZE,
                            buffer_pages=BUFFER_PAGES)
    db.add_document(XML)
    db.flush()
    return db, disk


def _pages_by_type(disk, page_ids):
    """Split a tree's reachable pages into internal and leaf/other ids."""
    from repro.indexes.xrtree.pages import XRInternalPage, XRLeafPage

    pool = BufferPool(disk, capacity=BUFFER_PAGES)
    internal, leaves = [], []
    for page_id in page_ids:
        with pool.pinned(page_id) as page:
            if isinstance(page, XRInternalPage):
                internal.append(page_id)
            elif isinstance(page, XRLeafPage):
                leaves.append(page_id)
    return internal, leaves


def test_clean_database_scrubs_clean():
    db, _disk = _build_db()
    report = db.scrub()
    assert report.cycle_complete
    assert not report.corrupt and not report.quarantined
    assert set(report.clean) >= {"tag:r", "tag:item", "tag:x"}


def test_scrubber_detects_every_injected_bit_flip():
    """100% detection: any single flipped bit quarantines its structure."""
    rng = random.Random(SEED)
    for trial in range(8):
        db, disk = _build_db()
        name = rng.choice(["tag:item", "tag:x", "tag:r"])
        pages = db.scrubber.pages_of(name)
        assert pages, "tree %s has no pages" % name
        page_id = rng.choice(pages)
        disk.flip_bit(page_id, rng.randrange(PAGE_SIZE * 8))
        report = db.scrub()
        assert name in report.corrupt, (
            "trial %d: flip in page %d of %s went undetected"
            % (trial, page_id, name)
        )
        assert db.scrubber.is_quarantined(name)
        # A later cycle skips the quarantined entry instead of re-reading.
        again = db.scrub()
        assert name in again.skipped and name not in again.corrupt
        db.close()


def test_quarantined_index_fails_fast_with_typed_error():
    db, disk = _build_db()
    page_id = db.scrubber.pages_of("tag:item")[0]
    disk.flip_bit(page_id, 9)
    db.scrub()
    with pytest.raises(IndexQuarantinedError) as excinfo:
        db.query("//item//x")
    assert excinfo.value.name == "tag:item"
    assert not isinstance(excinfo.value, ChecksumError)
    with pytest.raises(IndexQuarantinedError):
        db.entries_for_tag("item")
    # Untouched indexes keep working.
    assert len(db.query("//r//x").matches) == ITEMS


def test_unscrubbed_checksum_error_is_wrapped_with_query_context():
    """Satellite: a mid-join ChecksumError surfaces as QueryError with the
    query text and the failing index's tag attached."""
    db, disk = _build_db()
    for page_id in db.scrubber.pages_of("tag:item"):
        disk.flip_bit(page_id, 3)
    db.close()  # drop the warm pool so the corrupt pages are re-read
    reopened = XmlDatabase.open(disk=disk, page_size=PAGE_SIZE,
                                buffer_pages=BUFFER_PAGES)
    with pytest.raises(QueryError) as excinfo:
        reopened.query("//item//x")
    assert excinfo.value.index_name == "item"
    assert excinfo.value.query == "//item//x"
    assert isinstance(excinfo.value.__cause__, ChecksumError)


def test_rebuild_after_internal_corruption_matches_oracle():
    """An internal-page flip is lossless: every leaf record survives, and
    post-rebuild query results equal the oracle join."""
    db, disk = _build_db()
    items = db.entries_for_tag("item")
    xs = db.entries_for_tag("x")
    expected = sorted({d.start for _a, d in oracle_join(items, xs)})
    internal, _leaves = _pages_by_type(disk, db.scrubber.pages_of("tag:item"))
    assert internal, "expected an internal level at this corpus size"
    disk.flip_bit(internal[0], 40)
    report = db.scrub()
    assert "tag:item" in report.quarantined
    result = db.rebuild_index("item")
    assert result.verified
    assert result.salvaged == ITEMS
    assert not db.scrubber.is_quarantined("tag:item")
    assert db.scrub().corrupt == []
    assert db.query("//item//x").starts() == expected


def test_rebuild_after_leaf_corruption_salvages_survivors():
    rng = random.Random(SEED + 1)
    db, disk = _build_db()
    _internal, leaves = _pages_by_type(disk, db.scrubber.pages_of("tag:item"))
    assert len(leaves) > 1
    disk.flip_bit(rng.choice(leaves), rng.randrange(PAGE_SIZE * 8))
    assert "tag:item" in db.scrub().quarantined
    result = db.rebuild_index("item")
    assert result.verified
    assert result.lost_pages >= 1
    assert 0 < result.salvaged < ITEMS
    assert db.element_count("item") == result.salvaged
    # The rebuilt tree is internally consistent and queryable; every
    # surviving item still finds its x descendant.
    assert db.verify() >= 1
    matches = db.query("//item//x").matches
    assert len(matches) == result.salvaged


def test_scrub_budget_makes_incremental_progress():
    db, _disk = _build_db()
    entries = len(db.scrubber._catalog.names())
    steps = 0
    checked = 0
    while True:
        report = db.scrub(io_budget=2)
        steps += 1
        checked += report.entries_checked
        if report.cycle_complete:
            break
        assert steps < 100
    assert checked == entries
    assert steps > 1, "budget of 2 pages should split the cycle"
