"""Cross-component chaos test.

One seeded end-to-end sweep: random documents → derived workloads → every
join implementation and every query executor, all cross-checked against
each other and against brute force.  The final safety net over the whole
stack — if any two components disagree about anything, this fails.
"""

import random

import pytest

from repro.core.api import (
    ALGORITHMS,
    StorageContext,
    build_bplus_tree,
    build_element_list,
    oracle_join,
    structural_join,
)
from repro.indexes.rtree import RTree, rtree_sync_join
from repro.joins import (
    bplus_psp_join,
    bplus_sp_join,
    with_containment_pointers,
)
from repro.joins.base import sort_pairs
from repro.query import PathQueryEngine, evaluate_path_stack
from repro.query.twigjoin import twig_from_path, twig_stack_join
from repro.workloads.datasets import JoinDataset
from repro.workloads.selectivity import (
    vary_ancestor_selectivity,
    vary_both_selectivity,
)
from repro.xmldata.dtd import AUCTION_DTD, DEPARTMENT_DTD
from repro.xmldata.generator import GeneratorConfig, XmlGenerator


def _random_dataset(rng):
    dtd, a_tag, d_tag = rng.choice((
        (DEPARTMENT_DTD, "employee", "name"),
        (DEPARTMENT_DTD, "employee", "email"),
        (AUCTION_DTD, "parlist", "text"),
        (AUCTION_DTD, "item", "name"),
    ))
    config = GeneratorConfig(
        mean_repeat=rng.uniform(1.5, 2.5),
        recursion_decay=rng.uniform(0.5, 0.9),
        max_depth=rng.randrange(8, 24),
    )
    document = XmlGenerator(dtd, config, seed=rng.randrange(10 ** 6)) \
        .generate(rng.randrange(300, 1200))
    return JoinDataset("chaos", document.entries_for_tag(a_tag),
                       document.entries_for_tag(d_tag), document)


@pytest.mark.parametrize("trial", range(6))
def test_every_component_agrees(trial):
    rng = random.Random(1000 + trial)
    dataset = _random_dataset(rng)
    if not dataset.ancestors or not dataset.descendants:
        pytest.skip("degenerate draw")
    workload = rng.choice((
        lambda: vary_ancestor_selectivity(dataset, rng.choice((0.7, 0.2)),
                                          seed=trial),
        lambda: vary_both_selectivity(dataset, rng.choice((0.6, 0.1)),
                                      seed=trial),
        lambda: dataset,
    ))()
    ancestors = list(workload.ancestors)
    descendants = list(workload.descendants)
    expected = oracle_join(ancestors, descendants)

    # 1. The five public join algorithms.
    for algorithm in ALGORITHMS:
        outcome = structural_join(ancestors, descendants,
                                  algorithm=algorithm)
        assert sort_pairs(outcome.pairs) == expected, algorithm

    # 2. The pointer-enhanced variants.
    context = StorageContext(page_size=1024, buffer_pages=64)
    a_tree = build_bplus_tree(with_containment_pointers(ancestors),
                              context.pool)
    d_tree = build_bplus_tree(descendants, context.pool)
    for variant in (bplus_sp_join, bplus_psp_join):
        pairs, _ = variant(a_tree, d_tree)
        assert sort_pairs(pairs) == expected, variant.__name__

    # 3. The R-tree synchronized traversal.
    r_context = StorageContext(page_size=1024, buffer_pages=64)
    ar = RTree(r_context.pool)
    ar.bulk_load(ancestors)
    dr = RTree(r_context.pool)
    dr.bulk_load(descendants)
    pairs, _ = rtree_sync_join(ar, dr)
    assert sort_pairs(pairs) == expected

    # 4. Query executors over the source document.
    document = dataset.document
    engine = PathQueryEngine(document)
    fallback = PathQueryEngine(document, strategy="stack-tree")
    tags = sorted(document.tags())
    outer, inner = rng.sample(tags, 2) if len(tags) >= 2 else (tags[0],
                                                               tags[0])
    path = "//%s//%s" % (outer, inner)
    fast = engine.evaluate(path)
    slow = fallback.evaluate(path)
    assert fast.starts() == slow.starts(), path
    holistic = evaluate_path_stack(document, path)
    assert [e.start for e in holistic.last_elements()] == fast.starts()
    twig = "//%s[%s]" % (outer, inner)
    root, output = twig_from_path(twig)
    solutions = twig_stack_join(document.entries_for_tag, root)
    assert [e.start for e in solutions.bindings_of(output.index)] == \
        engine.evaluate(twig).starts(), twig
