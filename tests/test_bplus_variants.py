"""Tests for the B+sp / B+psp pointer-enhanced joins."""

import pytest

from repro.core.api import StorageContext, build_bplus_tree
from repro.joins import nested_loop_join
from repro.joins.base import sort_pairs
from repro.joins.bplus_variants import (
    bplus_psp_join,
    bplus_sp_join,
    pack_pointers,
    unpack_pointers,
    with_containment_pointers,
)
from tests.conftest import entry
from tests.test_xrtree_property import tree_shape_to_entries


def run_variant(join, ancestors, descendants, parent_child=False):
    context = StorageContext(page_size=512, buffer_pages=64)
    a_tree = build_bplus_tree(with_containment_pointers(ancestors),
                              context.pool)
    d_tree = build_bplus_tree(descendants, context.pool)
    return join(a_tree, d_tree, parent_child=parent_child)


class TestPointerPacking:
    def test_roundtrip(self):
        packed = pack_pointers(123456, 789012)
        assert unpack_pointers(packed) == (123456, 789012)

    def test_zero_pointers(self):
        assert unpack_pointers(pack_pointers(0, 0)) == (0, 0)

    def test_max_start_values(self):
        big = 2 ** 31 - 1
        assert unpack_pointers(pack_pointers(big, big)) == (big, big)


class TestWithContainmentPointers:
    def test_sibling_points_past_subtree(self):
        entries = [entry(1, 100), entry(2, 50), entry(3, 10),
                   entry(20, 40), entry(60, 90), entry(200, 300)]
        augmented = with_containment_pointers(entries)
        siblings = [unpack_pointers(e.ptr)[1] for e in augmented]
        assert siblings == [200, 60, 20, 60, 200, 0]

    def test_parent_is_nearest_container(self):
        entries = [entry(1, 100), entry(2, 50), entry(3, 10),
                   entry(20, 40), entry(60, 90), entry(200, 300)]
        augmented = with_containment_pointers(entries)
        parents = [unpack_pointers(e.ptr)[0] for e in augmented]
        assert parents == [0, 1, 2, 2, 1, 0]

    def test_regions_preserved(self, dept_data):
        augmented = with_containment_pointers(dept_data.ancestors)
        assert [(e.start, e.end) for e in augmented] == \
            [(e.start, e.end) for e in dept_data.ancestors]


class TestVariantCorrectness:
    @pytest.mark.parametrize("join", [bplus_sp_join, bplus_psp_join])
    def test_department_matches_oracle(self, join, dept_data):
        pairs, _ = run_variant(join, dept_data.ancestors,
                               dept_data.descendants)
        assert sort_pairs(pairs) == nested_loop_join(
            dept_data.ancestors, dept_data.descendants
        )

    @pytest.mark.parametrize("join", [bplus_sp_join, bplus_psp_join])
    def test_conference_matches_oracle(self, join, conf_data):
        pairs, _ = run_variant(join, conf_data.ancestors,
                               conf_data.descendants)
        assert sort_pairs(pairs) == nested_loop_join(
            conf_data.ancestors, conf_data.descendants
        )

    @pytest.mark.parametrize("join", [bplus_sp_join, bplus_psp_join])
    def test_parent_child(self, join, dept_data):
        pairs, _ = run_variant(join, dept_data.ancestors,
                               dept_data.descendants, parent_child=True)
        assert sort_pairs(pairs) == nested_loop_join(
            dept_data.ancestors, dept_data.descendants, parent_child=True
        )

    @pytest.mark.parametrize("join", [bplus_sp_join, bplus_psp_join])
    def test_empty_inputs(self, join):
        pairs, stats = run_variant(join, [], [entry(1, 2)])
        assert pairs == []
        pairs, _ = run_variant(join, [entry(1, 10)], [])
        assert pairs == []

    @pytest.mark.parametrize("join", [bplus_sp_join, bplus_psp_join])
    def test_random_trees_match_oracle(self, join):
        for shape in ([1, 2, 3, 1], [3, 3, 3], [2, 0, 2, 1, 2],
                      [1] * 20, [3, 2, 1, 0, 1, 2, 3]):
            entries = tree_shape_to_entries(shape)
            ancestors = entries[::2]
            descendants = entries[1::2]
            pairs, _ = run_variant(join, ancestors, descendants)
            assert sort_pairs(pairs) == nested_loop_join(
                ancestors, descendants
            )

    def test_self_join_overlap(self, dept_data):
        emps = dept_data.ancestors
        context = StorageContext(page_size=512, buffer_pages=64)
        a_tree = build_bplus_tree(with_containment_pointers(emps),
                                  context.pool)
        d_tree = build_bplus_tree(emps, context.pool)
        pairs, _ = bplus_psp_join(a_tree, d_tree)
        assert sort_pairs(pairs) == nested_loop_join(emps, emps)


class TestPredecessor:
    def test_predecessor_within_leaf(self, pool):
        from repro.indexes.bptree import BPlusTree

        tree = BPlusTree(pool)
        tree.bulk_load([entry(k, k + 100) for k in (10, 20, 30)])
        assert tree.predecessor(25).start == 20
        assert tree.predecessor(20).start == 10

    def test_predecessor_crosses_leaves(self, pool):
        from repro.indexes.bptree import BPlusTree

        tree = BPlusTree(pool)
        tree.bulk_load([entry(k, k + 5000) for k in range(1, 500)])
        for probe in (2, 50, 123, 499, 10000):
            expected = max((k for k in range(1, 500) if k < probe),
                           default=None)
            got = tree.predecessor(probe)
            assert (got.start if got else None) == expected

    def test_predecessor_before_everything(self, pool):
        from repro.indexes.bptree import BPlusTree

        tree = BPlusTree(pool)
        tree.bulk_load([entry(10, 20)])
        assert tree.predecessor(10) is None
        assert tree.predecessor(1) is None

    def test_predecessor_empty_tree(self, pool):
        from repro.indexes.bptree import BPlusTree

        assert BPlusTree(pool).predecessor(5) is None


class TestScanBehaviour:
    def test_sp_skips_like_basic_bplus(self, dept_data):
        from repro.joins import bplus_join

        context = StorageContext(page_size=512, buffer_pages=64)
        augmented = with_containment_pointers(dept_data.ancestors)
        a_tree = build_bplus_tree(augmented, context.pool)
        d_tree = build_bplus_tree(dept_data.descendants, context.pool)
        _, sp_stats = bplus_sp_join(a_tree, d_tree, collect=False)
        context2 = StorageContext(page_size=512, buffer_pages=64)
        a2 = build_bplus_tree(dept_data.ancestors, context2.pool)
        d2 = build_bplus_tree(dept_data.descendants, context2.pool)
        _, basic_stats = bplus_join(a2, d2, collect=False)
        # Same skipping decisions, so the same number of elements scanned.
        assert sp_stats.elements_scanned == basic_stats.elements_scanned
        assert sp_stats.pairs == basic_stats.pairs
