"""Property-based tests for the B+-tree against a sorted-dict oracle."""

from bisect import bisect_left, bisect_right

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.indexes.bptree import BPlusTree, BPlusTreeError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from tests.conftest import entry

keys_strategy = st.lists(st.integers(min_value=1, max_value=10000),
                         unique=True, min_size=0, max_size=300)


class TestAgainstOracle:
    @given(keys_strategy)
    @settings(max_examples=50, deadline=None)
    def test_bulk_load_then_scan(self, keys):
        pool = BufferPool(InMemoryDisk(256), capacity=16)
        tree = BPlusTree(pool)
        tree.bulk_load([entry(k, k + 50000) for k in sorted(keys)])
        assert [e.start for e in tree.items()] == sorted(keys)
        tree.check()

    @given(keys_strategy, st.integers(min_value=0, max_value=10001),
           st.integers(min_value=0, max_value=10001))
    @settings(max_examples=50, deadline=None)
    def test_range_scan_matches_oracle(self, keys, a, b):
        low, high = min(a, b), max(a, b)
        pool = BufferPool(InMemoryDisk(256), capacity=16)
        tree = BPlusTree(pool)
        for k in keys:
            tree.insert(entry(k, k + 50000))
        got = [e.start for e in tree.range_scan(low, high)]
        assert got == sorted(k for k in keys if low <= k <= high)

    @given(keys_strategy, st.integers(min_value=0, max_value=10001))
    @settings(max_examples=50, deadline=None)
    def test_seek_matches_bisect(self, keys, probe):
        pool = BufferPool(InMemoryDisk(256), capacity=16)
        tree = BPlusTree(pool)
        tree.bulk_load([entry(k, k + 50000) for k in sorted(keys)])
        ordered = sorted(keys)
        cursor = tree.seek(probe)
        index = bisect_left(ordered, probe)
        if index == len(ordered):
            assert cursor.at_end
        else:
            assert cursor.current.start == ordered[index]
        cursor = tree.seek_after(probe)
        index = bisect_right(ordered, probe)
        if index == len(ordered):
            assert cursor.at_end
        else:
            assert cursor.current.start == ordered[index]


class BPlusTreeMachine(RuleBasedStateMachine):
    """Random interleavings of insert/delete/search with full validation."""

    def __init__(self):
        super().__init__()
        self.pool = BufferPool(InMemoryDisk(256), capacity=16)
        self.tree = BPlusTree(self.pool)
        self.oracle = {}

    @rule(key=st.integers(min_value=1, max_value=500))
    def insert(self, key):
        if key in self.oracle:
            try:
                self.tree.insert(entry(key, key + 1000))
                raise AssertionError("duplicate accepted")
            except BPlusTreeError:
                pass
        else:
            self.tree.insert(entry(key, key + 1000))
            self.oracle[key] = key + 1000

    @rule(key=st.integers(min_value=1, max_value=500))
    def delete(self, key):
        removed = self.tree.delete(key)
        if key in self.oracle:
            assert removed is not None and removed.start == key
            del self.oracle[key]
        else:
            assert removed is None

    @rule(key=st.integers(min_value=1, max_value=500))
    def search(self, key):
        found = self.tree.search(key)
        if key in self.oracle:
            assert found is not None and found.end == self.oracle[key]
        else:
            assert found is None

    @invariant()
    def structure_is_valid(self):
        self.tree.check()
        assert self.tree.size == len(self.oracle)
        assert self.pool.pinned_count == 0

    @invariant()
    def scan_matches_oracle(self):
        assert [e.start for e in self.tree.items()] == sorted(self.oracle)


TestBPlusTreeStateMachine = BPlusTreeMachine.TestCase
TestBPlusTreeStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
