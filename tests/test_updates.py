"""Tests for sparse numbering and in-place document updates
(repro.xmldata.update)."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.xmldata.model import Document, Element, XmlModelError, \
    annotate_regions
from repro.xmldata.parser import parse_document
from repro.xmldata.update import (
    GapExhausted,
    IndexedDocument,
    available_gap,
    delete_leaf_element,
    entry_for,
    insert_leaf_element,
)


def sparse_document(spacing=8):
    root = Element("dept")
    emp = root.add_child(Element("emp"))
    emp.add_child(Element("name", text="w"))
    root.add_child(Element("office"))
    annotate_regions(root, spacing=spacing)
    return Document(root)


class TestSparseNumbering:
    def test_spacing_spreads_boundaries(self):
        dense = sparse_document(spacing=1)
        sparse = sparse_document(spacing=8)
        assert sparse.root.end == (dense.root.end - 1) * 8 + 1
        assert sparse.validate()

    def test_spacing_one_unchanged_semantics(self):
        doc = sparse_document(spacing=1)
        assert doc.validate()

    def test_bad_spacing_rejected(self):
        with pytest.raises(XmlModelError):
            annotate_regions(Element("a"), spacing=0)


class TestGapArithmetic:
    def test_gap_between_siblings(self):
        doc = sparse_document(spacing=8)
        low, high = available_gap(doc.root, 1)  # between emp and office
        emp, office = doc.root.children
        assert (low, high) == (emp.end, office.start)
        assert high - low > 2

    def test_gap_at_edges(self):
        doc = sparse_document(spacing=8)
        first_low, _ = available_gap(doc.root, 0)
        assert first_low == doc.root.start
        _, last_high = available_gap(doc.root, 2)
        assert last_high == doc.root.end


class TestInsertDelete:
    def test_insert_preserves_existing_regions(self):
        doc = sparse_document(spacing=8)
        before = [(n.tag, n.start, n.end) for n in doc]
        node = insert_leaf_element(doc, doc.root, 1, "notice")
        assert doc.validate()
        after = [(n.tag, n.start, n.end) for n in doc if n is not node]
        assert after == before

    def test_inserted_element_is_queryable(self):
        doc = sparse_document(spacing=8)
        emp = doc.root.children[0]
        node = insert_leaf_element(doc, emp, 1, "email", text="x@y")
        assert node.level == emp.level + 1
        assert emp.start < node.start and node.end < emp.end
        assert doc.node_at(entry_for(doc, node).ptr) is node

    def test_gap_exhaustion_raises(self):
        doc = sparse_document(spacing=2)  # one free number per boundary
        emp = doc.root.children[0]
        with pytest.raises(GapExhausted):
            insert_leaf_element(doc, emp, 0, "x", text="needs three")

    def test_repeated_inserts_until_exhaustion(self):
        doc = sparse_document(spacing=16)
        inserted = 0
        try:
            while True:
                insert_leaf_element(doc, doc.root, 1, "pad")
                inserted += 1
                doc.validate()
        except GapExhausted:
            pass
        assert inserted >= 2  # a 16-spacing gap fits several elements

    def test_delete_leaf(self):
        doc = sparse_document(spacing=8)
        office = doc.root.children[1]
        delete_leaf_element(doc, office)
        assert [c.tag for c in doc.root.children] == ["emp"]
        assert doc.validate()

    def test_delete_non_leaf_rejected(self):
        doc = sparse_document(spacing=8)
        with pytest.raises(XmlModelError):
            delete_leaf_element(doc, doc.root.children[0])

    def test_delete_root_rejected(self):
        doc = sparse_document(spacing=8)
        with pytest.raises(XmlModelError):
            delete_leaf_element(doc, doc.root)

    def test_bad_position_rejected(self):
        doc = sparse_document(spacing=8)
        with pytest.raises(XmlModelError):
            insert_leaf_element(doc, doc.root, 9, "x")


class TestIndexedDocument:
    @pytest.fixture
    def indexed(self):
        from repro.xmldata.dtd import DEPARTMENT_DTD
        from repro.xmldata.generator import XmlGenerator

        document = XmlGenerator(DEPARTMENT_DTD, seed=13).generate(400)
        # Re-number sparsely so updates have room.
        annotate_regions(document.root, spacing=6)
        pool = BufferPool(InMemoryDisk(1024), capacity=64)
        return IndexedDocument(document, pool)

    def test_initial_state_consistent(self, indexed):
        assert indexed.check()

    def test_inserts_keep_indexes_in_sync(self, indexed):
        root = indexed.document.root
        target = root.children[0]
        # Insert at both ends of the child list: distinct gaps, both roomy.
        indexed.insert(target, 0, "email", text="t")
        indexed.insert(target, len(target.children), "email", text="t")
        assert indexed.check()
        # The new emails are findable through the index.
        tree = indexed.tree("email")
        expected = sorted(n.start for n in indexed.document
                          if n.tag == "email")
        assert [e.start for e in tree.items()] == expected

    def test_deletes_keep_indexes_in_sync(self, indexed):
        victim = next(n for n in indexed.document
                      if n.tag == "name" and not n.children)
        indexed.delete(victim)
        assert indexed.check()
        assert indexed.tree("name").search(victim.start) is None

    def test_churn(self, indexed):
        import random

        rng = random.Random(5)
        inserted = []
        for _ in range(40):
            if inserted and rng.random() < 0.4:
                indexed.delete(inserted.pop())
            else:
                parents = [n for n in indexed.document
                           if n.tag in ("employee", "department")]
                parent = rng.choice(parents)
                position = rng.randrange(len(parent.children) + 1)
                try:
                    inserted.append(
                        indexed.insert(parent, position, "email")
                    )
                except GapExhausted:
                    pass
        assert indexed.check()

    def test_structural_queries_after_updates(self, indexed):
        root = indexed.document.root
        employee = next(n for n in indexed.document if n.tag == "employee")
        node = indexed.insert(employee, 0, "email")
        tree = indexed.tree("email")
        ancestors = indexed.tree("employee").find_ancestors(node.start)
        assert any(a.start == employee.start for a in ancestors)
