"""Tests for the getNext-optimized TwigStack (repro.query.twigjoin)."""

import pytest

from repro.query.twigjoin import twig_from_path, twig_join, twig_stack_join
from repro.xmldata.parser import parse_document
from tests.test_twigjoin import SOURCE, oracle_twig_matches


def run_twig_stack(document, path_text):
    root, _ = twig_from_path(path_text)
    solutions = twig_stack_join(document.entries_for_tag, root)
    return sorted(
        tuple((e.start, e.end) for e in match)
        for match in solutions.matches
    )


@pytest.fixture(scope="module")
def document():
    return parse_document(SOURCE)


class TestCorrectness:
    @pytest.mark.parametrize("path", [
        "//emp[email]//name",
        "//emp[email]/name",
        "//emp[name]/email",
        "//dept[office]//emp//name",
        "//emp[emp[email]]/name",
        "//emp[name][email]",
        "//emp//emp[name]",
        "//dept//name",
        "//emp//name",
    ])
    def test_small_document(self, document, path):
        assert run_twig_stack(document, path) == \
            oracle_twig_matches(document, path)

    def test_generated_documents(self):
        from repro.workloads import department_dataset

        for seed in (63, 64, 65):
            doc = department_dataset(400, seed=seed).document
            for path in ("//employee[email]/name",
                         "//department[name]//employee",
                         "//employee[employee]/name",
                         "//department//employee//name"):
                assert run_twig_stack(doc, path) == \
                    oracle_twig_matches(doc, path), (seed, path)

    def test_auction_document(self):
        from repro.workloads import auction_dataset

        doc = auction_dataset(600, seed=31).document
        for path in ("//item[name]//parlist",
                     "//parlist//listitem//text",
                     "//item[description[parlist]]/name"):
            assert run_twig_stack(doc, path) == \
                oracle_twig_matches(doc, path), path

    def test_matches_unoptimized_twig_join(self):
        from repro.workloads import department_dataset

        doc = department_dataset(900, seed=66).document
        for path in ("//employee[email]/name",
                     "//department//employee[employee]",
                     "//department[employee[email]]/name"):
            root, _ = twig_from_path(path)
            base = twig_join(doc.entries_for_tag, root)
            root2, _ = twig_from_path(path)
            optimized = twig_stack_join(doc.entries_for_tag, root2)
            key = lambda m: tuple(e.start for e in m)
            assert sorted(base.matches, key=key) == \
                sorted(optimized.matches, key=key), path


class TestRegressions:
    def test_sibling_branch_out_of_order_cleaning(self):
        """Regression: getNext may process a deep branch element before a
        sibling leaf element with a *smaller* start.  Cleaning any stack
        beyond q's own and its parent's at that moment pops ancestor
        frames the sibling still needs (here, a=(10,17) for b=(15,16))."""
        from tests.test_holistic_property import (
            multi_tag_document,
            oracle_matches,
        )

        doc = multi_tag_document([3, 0, 0, 3, 0, 1, 0, 2, 1])
        root, _ = twig_from_path("//a[b][b/c]")
        result = twig_stack_join(doc.entries_for_tag, root)
        got = sorted({tuple(e.start for e in m) for m in result.matches})
        assert got == oracle_matches(doc, "//a[b][b/c]")
        assert (10, 15, 11, 12) in got  # the match the bug dropped


class TestSkipping:
    def test_skips_elements_on_selective_twigs(self):
        """On a twig whose branch is rare, getNext must examine fewer
        elements than the scan-everything variant."""
        from repro.workloads import department_dataset

        doc = department_dataset(3000, seed=67).document
        # email is optional: employees without email make //employee[email]
        # selective on the employee stream.
        path = "//department//employee[email]"
        root, _ = twig_from_path(path)
        base = twig_join(doc.entries_for_tag, root)
        root2, _ = twig_from_path(path)
        optimized = twig_stack_join(doc.entries_for_tag, root2)
        key = lambda m: tuple(e.start for e in m)
        assert sorted(base.matches, key=key) == \
            sorted(optimized.matches, key=key)
        assert optimized.stats.elements_scanned <= \
            base.stats.elements_scanned

    def test_disjoint_streams_short_circuit(self, document):
        # No emp contains an office: the inert branch ends the run early.
        assert run_twig_stack(document, "//emp[office]/name") == []

    def test_empty_stream(self, document):
        assert run_twig_stack(document, "//emp[ghost]") == []

    def test_count_only(self, document):
        root, _ = twig_from_path("//emp[email]//name")
        collected = twig_stack_join(document.entries_for_tag, root)
        root2, _ = twig_from_path("//emp[email]//name")
        counted = twig_stack_join(document.entries_for_tag, root2,
                                  collect=False)
        assert counted.count == collected.count
        assert counted.matches == []
