"""Tests for the pluggable replacement policies (LRU vs CLOCK)."""

import pytest

from repro.storage.buffer import BufferPool, ClockPolicy, LruPolicy
from repro.storage.disk import InMemoryDisk
from repro.storage.errors import BufferPoolError
from repro.storage.pages import RawPage


def fill(pool, count):
    ids = []
    for index in range(count):
        page = pool.new_page(RawPage(b"p%d" % index))
        ids.append(page.page_id)
        pool.unpin(page, dirty=True)
    return ids


class TestPolicySelection:
    def test_default_is_lru(self, disk):
        assert BufferPool(disk).policy_name == "lru"

    def test_unknown_policy_rejected(self, disk):
        with pytest.raises(BufferPoolError):
            BufferPool(disk, policy="fifo")

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_basic_operation(self, policy):
        pool = BufferPool(InMemoryDisk(256), capacity=3, policy=policy)
        ids = fill(pool, 10)  # 7 evictions
        assert pool.stats.evictions == 7
        for page_id in ids:   # everything still readable
            page = pool.fetch(page_id)
            pool.unpin(page)

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_pinned_frames_never_evicted(self, policy):
        pool = BufferPool(InMemoryDisk(256), capacity=3, policy=policy)
        held = pool.new_page(RawPage(b"held"))
        fill(pool, 8)
        assert held.page_id in pool._frames
        pool.unpin(held, dirty=True)

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_all_pinned_raises(self, policy):
        pool = BufferPool(InMemoryDisk(256), capacity=2, policy=policy)
        pool.new_page(RawPage(b"a"))
        pool.new_page(RawPage(b"b"))
        with pytest.raises(BufferPoolError):
            pool.new_page(RawPage(b"c"))

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_clear_resets_policy_state(self, policy):
        pool = BufferPool(InMemoryDisk(256), capacity=4, policy=policy)
        ids = fill(pool, 4)
        pool.clear()
        assert pool.resident_count == 0
        fill(pool, 6)  # must not trip over stale policy entries
        page = pool.fetch(ids[0])
        pool.unpin(page)


class TestClockSemantics:
    def test_second_chance(self):
        pool = BufferPool(InMemoryDisk(256), capacity=3, policy="clock")
        a, b, c = fill(pool, 3)
        # One eviction sweeps the ring and clears every reference bit.
        fill(pool, 1)
        assert a not in pool._frames  # first under the hand, bit cleared
        # Now b and c have clear bits; touching b grants it a second
        # chance, so the next eviction must take c.
        pool.unpin(pool.fetch(b))
        fill(pool, 1)
        assert b in pool._frames
        assert c not in pool._frames

    def test_removed_keeps_ring_consistent(self):
        policy = ClockPolicy()

        class _Frame:
            pin_count = 0

        frames = {}
        for page_id in (1, 2, 3, 4, 5):
            policy.admitted(page_id)
            frames[page_id] = _Frame()
        policy.removed(3)
        policy.removed(1)
        victims = set()
        for _ in range(3):
            victim = policy.choose_victim(frames)
            victims.add(victim)
            policy.removed(victim)
        assert victims == {2, 4, 5}

    def test_empty_ring(self):
        assert ClockPolicy().choose_victim({}) is None


class TestLruSemantics:
    def test_exact_lru_order(self):
        policy = LruPolicy()

        class _Frame:
            pin_count = 0

        frames = {}
        for page_id in (1, 2, 3):
            policy.admitted(page_id)
            frames[page_id] = _Frame()
        policy.touched(1)
        assert policy.choose_victim(frames) == 2


class TestWorkloadEquivalence:
    def test_join_results_identical_across_policies(self, dept_data):
        from repro.core.api import StorageContext, structural_join

        outcomes = {}
        for policy in ("lru", "clock"):
            context = StorageContext(page_size=1024, buffer_pages=20)
            context.pool._policy = \
                {"lru": LruPolicy, "clock": ClockPolicy}[policy]()
            context.pool.policy_name = policy
            outcome = structural_join(dept_data.ancestors,
                                      dept_data.descendants,
                                      algorithm="xr-stack",
                                      context=context, collect=False)
            outcomes[policy] = outcome
        assert outcomes["lru"].pair_count == outcomes["clock"].pair_count
        # Miss counts may differ slightly, but not wildly, on this ordered
        # access pattern.
        lru, clock = (outcomes["lru"].page_misses,
                      outcomes["clock"].page_misses)
        assert clock <= lru * 2 + 10
