"""Structural tests for the XR-tree (Definition 4), including the paper's
Figure 1 running example."""

import pytest

from repro.indexes.xrtree import XRTree, XRTreeError, check_xrtree
from repro.indexes.xrtree.checker import XRTreeInvariantError
from repro.indexes.xrtree.pages import NIL, XRInternalPage, XRLeafPage
from repro.indexes.xrtree.stablist import StabList
from tests.conftest import entry

#: The emp element set of the paper's Figure 1.
FIGURE_1_EMPS = [
    (2, 15), (8, 12), (10, 11), (20, 75), (22, 35), (25, 30),
    (40, 65), (45, 60), (46, 47), (50, 55), (80, 91), (85, 90),
]


def figure1_entries():
    return [entry(s, e) for s, e in FIGURE_1_EMPS]


def small_tree(pool, leaf=4, internal=3, bulk=True, optimize=True):
    tree = XRTree(pool, leaf_capacity=leaf, internal_capacity=internal,
                  optimize_split_keys=optimize)
    if bulk:
        tree.bulk_load(figure1_entries())
    else:
        for e in figure1_entries():
            tree.insert(e)
    return tree


class TestFigure1:
    def test_bulk_load_is_valid(self, pool):
        tree = small_tree(pool)
        assert check_xrtree(tree)
        assert tree.size == 12
        assert tree.height >= 2

    def test_dynamic_build_is_valid(self, pool):
        tree = small_tree(pool, bulk=False)
        assert check_xrtree(tree)
        assert tree.size == 12

    def test_items_in_start_order(self, pool):
        tree = small_tree(pool)
        assert [e.start for e in tree.items()] == \
            sorted(s for s, _ in FIGURE_1_EMPS)

    def test_nested_region_20_75_is_stabbed(self, pool):
        # With 12 elements over 4-entry leaves there are internal keys
        # between 20 and 75, so (20, 75) must carry the InStabList flag.
        tree = small_tree(pool)
        found = tree.search(20)
        assert found.in_stab_list

    def test_find_ancestors_of_50(self, pool):
        # Element (50, 55): its emp ancestors in Figure 1 are (20, 75),
        # (40, 65) and (45, 60).
        tree = small_tree(pool)
        ancestors = tree.find_ancestors(50)
        assert [(a.start, a.end) for a in ancestors] == \
            [(20, 75), (40, 65), (45, 60)]

    def test_find_descendants_of_40_65(self, pool):
        tree = small_tree(pool)
        descendants = tree.find_descendants(40, 65)
        assert [(d.start, d.end) for d in descendants] == \
            [(45, 60), (46, 47), (50, 55)]

    def test_same_answers_regardless_of_build_path(self, pool, big_pool):
        bulk = small_tree(pool)
        dynamic = small_tree(big_pool, bulk=False)
        for point in range(1, 95):
            assert [a.start for a in bulk.find_ancestors(point)] == \
                [a.start for a in dynamic.find_ancestors(point)]


class TestSplitKeyChoice:
    def test_gap_uses_predecessor_of_right_start(self, pool):
        # Paper, Section 3.2: prefer 79 over 80 so (80, 91) is not stabbed.
        tree = XRTree(pool, leaf_capacity=4, internal_capacity=4)
        assert tree._choose_separator(71, 80) == 79

    def test_adjacent_start_forces_right_start(self, pool):
        # Paper: "We have to use key 46 ... since 45 is the start position
        # of another region."
        tree = XRTree(pool, leaf_capacity=4, internal_capacity=4)
        assert tree._choose_separator(45, 46) == 46

    def test_optimization_can_be_disabled(self, pool):
        tree = XRTree(pool, optimize_split_keys=False)
        assert tree._choose_separator(71, 80) == 80

    def test_unoptimized_tree_still_valid(self, pool):
        tree = small_tree(pool, bulk=False, optimize=False)
        assert check_xrtree(tree)

    def test_optimization_never_increases_stabbed_count(self, pool, big_pool):
        def stabbed_count(tree):
            return sum(1 for e in tree.items() if e.in_stab_list)

        optimized = small_tree(pool, bulk=False, optimize=True)
        plain = small_tree(big_pool, bulk=False, optimize=False)
        assert stabbed_count(optimized) <= stabbed_count(plain)


class TestDefinitionInvariants:
    def test_stab_flags_match_stab_lists(self, pool):
        tree = small_tree(pool)
        flagged = {e.start for e in tree.items() if e.in_stab_list}
        in_lists = set()
        for node_id in _internal_ids(tree):
            with pool.pinned(node_id) as node:
                in_lists.update(
                    r.start for r in StabList(pool, node).iter_all()
                )
        assert flagged == in_lists

    def test_pspe_points_at_psl_heads(self, pool):
        tree = small_tree(pool)
        for node_id in _internal_ids(tree):
            with pool.pinned(node_id) as node:
                stab = StabList(pool, node)
                for j, key in enumerate(node.keys):
                    head = next(iter(stab.iter_psl(j)), None)
                    if head is None:
                        assert node.ps[j] == NIL and node.pe[j] == NIL
                    else:
                        assert (node.ps[j], node.pe[j]) == \
                            (head.start, head.end)

    def test_checker_catches_corrupt_flag(self, pool):
        tree = small_tree(pool)
        cursor = tree.first()
        leaf = pool.fetch(cursor._leaf_id)
        # Flip a flag without touching any stab list.
        leaf.records[0] = leaf.records[0].with_flag(
            not leaf.records[0].in_stab_list
        )
        pool.unpin(leaf, dirty=True)
        with pytest.raises(XRTreeInvariantError):
            check_xrtree(tree)

    def test_checker_catches_bad_pspe(self, pool):
        tree = small_tree(pool)
        node_ids = _internal_ids(tree)
        for node_id in node_ids:
            with pool.pinned(node_id) as node:
                if node.sl_count:
                    node.ps[0] = 99999
                    node.pe[0] = 999999
                    node.mark_dirty()
                    break
        else:
            pytest.skip("no stabbed nodes in this build")
        with pytest.raises(XRTreeInvariantError):
            check_xrtree(tree)

    def test_duplicate_key_rejected(self, pool):
        tree = small_tree(pool)
        with pytest.raises(XRTreeError):
            tree.insert(entry(20, 99))

    def test_bulk_load_requires_sorted_unique(self, pool):
        tree = XRTree(pool)
        with pytest.raises(XRTreeError):
            tree.bulk_load([entry(5, 10), entry(3, 4)])

    def test_bulk_load_twice_rejected(self, pool):
        tree = small_tree(pool)
        with pytest.raises(XRTreeError):
            tree.bulk_load([entry(200, 300)])

    def test_empty_tree_valid(self, pool):
        assert check_xrtree(XRTree(pool))


class TestCapacities:
    def test_capacity_from_page_size(self):
        assert XRLeafPage.capacity(4096) > 100
        assert XRInternalPage.capacity(4096) > 100
        # An XR internal key entry (key, ps, pe, child) is bigger than a
        # B+-tree key entry (key, child): fewer keys fit per page, the
        # overhead the paper mentions in Section 6.3.
        from repro.indexes.bptree import BPlusInternalPage

        assert XRInternalPage.capacity(4096) < BPlusInternalPage.capacity(4096)

    def test_tiny_capacity_rejected(self, pool):
        with pytest.raises(XRTreeError):
            XRTree(pool, leaf_capacity=1)


class TestPageCodecs:
    def test_internal_page_roundtrip(self, pool):
        from repro.storage.pages import Page

        node = XRInternalPage(
            keys=[10, 20], children=[3, 4, 5],
            ps=[2, NIL], pe=[25, NIL], sl_head=9, sl_dir=8, sl_count=4,
        )
        decoded = Page.decode(node.encode(512), 512)
        assert decoded.keys == [10, 20]
        assert decoded.children == [3, 4, 5]
        assert decoded.ps == [2, NIL]
        assert decoded.pe == [25, NIL]
        assert (decoded.sl_head, decoded.sl_dir, decoded.sl_count) == (9, 8, 4)

    def test_leaf_page_roundtrip(self, pool):
        from repro.storage.pages import Page

        page = XRLeafPage([entry(1, 9, flag=True), entry(3, 4)], next_id=6)
        decoded = Page.decode(page.encode(512), 512)
        assert decoded.records[0].in_stab_list
        assert decoded.next_id == 6

    def test_key_helpers(self):
        node = XRInternalPage(keys=[10, 20, 30], children=[1, 2, 3, 4])
        assert node.child_index_for(5) == 0
        assert node.child_index_for(10) == 1
        assert node.child_index_for(25) == 2
        assert node.child_index_for(99) == 3
        assert node.primary_key_index(15) == 1
        assert node.primary_key_index(31) is None
        assert node.stabs(15, 25)       # key 20 in [15, 25]
        assert not node.stabs(11, 19)   # no key inside
        assert node.psl_bounds(1) == (10, 20)


def _internal_ids(tree):
    ids = []
    frontier = [tree.root_id]
    while frontier:
        page_id = frontier.pop()
        with tree.pool.pinned(page_id) as page:
            if isinstance(page, XRInternalPage):
                ids.append(page_id)
                frontier.extend(page.children)
    return ids
