"""Tests for the DTD model and parser (repro.xmldata.dtd)."""

import pytest

from repro.xmldata.dtd import (
    CONFERENCE_DTD,
    DEPARTMENT_DTD,
    Cardinality,
    DtdError,
    parse_dtd,
)


class TestCardinality:
    def test_minimums(self):
        assert Cardinality.ONE.minimum == 1
        assert Cardinality.ONE_OR_MORE.minimum == 1
        assert Cardinality.OPTIONAL.minimum == 0
        assert Cardinality.ZERO_OR_MORE.minimum == 0

    def test_repeatable(self):
        assert Cardinality.ZERO_OR_MORE.repeatable
        assert Cardinality.ONE_OR_MORE.repeatable
        assert not Cardinality.ONE.repeatable
        assert not Cardinality.OPTIONAL.repeatable


class TestParsing:
    def test_simple_sequence(self):
        dtd = parse_dtd("""
            <!ELEMENT a (b, c?, d*)>
            <!ELEMENT b (#PCDATA)>
            <!ELEMENT c (#PCDATA)>
            <!ELEMENT d (#PCDATA)>
        """)
        decl = dtd.declaration("a")
        assert [(s.tag, s.cardinality) for s in decl.children] == [
            ("b", Cardinality.ONE),
            ("c", Cardinality.OPTIONAL),
            ("d", Cardinality.ZERO_OR_MORE),
        ]

    def test_first_declaration_is_root(self):
        dtd = parse_dtd("<!ELEMENT x (y*)>\n<!ELEMENT y (#PCDATA)>")
        assert dtd.root_tag == "x"

    def test_explicit_root_override(self):
        dtd = parse_dtd("<!ELEMENT x (y*)>\n<!ELEMENT y (#PCDATA)>",
                        root_tag="y")
        assert dtd.root_tag == "y"

    def test_pcdata_is_text_leaf(self):
        dtd = parse_dtd("<!ELEMENT t (#PCDATA)>")
        assert dtd.declaration("t").is_text
        assert dtd.declaration("t").children == ()

    def test_empty_content_model(self):
        dtd = parse_dtd("<!ELEMENT hr EMPTY>")
        assert not dtd.declaration("hr").is_text

    def test_undeclared_child_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT a (ghost)>")

    def test_no_declarations_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("plain text")

    def test_unknown_root_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT a (#PCDATA)>", root_tag="zzz")

    def test_unknown_tag_lookup_raises(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA)>")
        with pytest.raises(DtdError):
            dtd.declaration("b")


class TestRecursion:
    def test_direct_recursion_detected(self):
        dtd = parse_dtd("""
            <!ELEMENT e (f?, e*)>
            <!ELEMENT f (#PCDATA)>
        """)
        assert dtd.is_recursive("e")
        assert not dtd.is_recursive("f")

    def test_indirect_recursion_detected(self):
        dtd = parse_dtd("""
            <!ELEMENT a (b*)>
            <!ELEMENT b (a?)>
        """)
        assert dtd.is_recursive("a")
        assert dtd.is_recursive("b")


class TestPaperDtds:
    def test_department_structure(self):
        decl = DEPARTMENT_DTD.declaration("employee")
        tags = [s.tag for s in decl.children]
        assert tags == ["name", "email", "employee"]
        assert DEPARTMENT_DTD.is_recursive("employee")
        assert DEPARTMENT_DTD.root_tag == "departments"

    def test_conference_structure(self):
        decl = CONFERENCE_DTD.declaration("paper")
        assert [s.tag for s in decl.children] == ["title", "author"]
        assert not CONFERENCE_DTD.is_recursive("paper")
        assert CONFERENCE_DTD.root_tag == "conferences"

    def test_conference_author_required(self):
        decl = CONFERENCE_DTD.declaration("paper")
        author = [s for s in decl.children if s.tag == "author"][0]
        assert author.cardinality is Cardinality.ONE_OR_MORE

    def test_tags_listing(self):
        assert DEPARTMENT_DTD.tags() == [
            "department", "departments", "email", "employee", "name",
        ]
