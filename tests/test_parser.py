"""Tests for the from-scratch XML parser (repro.xmldata.parser)."""

import pytest

from repro.xmldata.generator import GeneratorConfig, XmlGenerator
from repro.xmldata.dtd import DEPARTMENT_DTD
from repro.xmldata.parser import XmlParseError, parse_document, serialize_document


class TestBasicParsing:
    def test_single_element(self):
        doc = parse_document("<a/>")
        assert doc.root.tag == "a"
        assert (doc.root.start, doc.root.end) == (1, 2)

    def test_nested_elements_region_numbering(self):
        doc = parse_document("<a><b/><c><d/></c></a>")
        tags = {n.tag: (n.start, n.end) for n in doc}
        assert tags["a"] == (1, 8)
        assert tags["b"] == (2, 3)
        assert tags["c"] == (4, 7)
        assert tags["d"] == (5, 6)

    def test_levels(self):
        doc = parse_document("<a><b><c/></b></a>")
        levels = {n.tag: n.level for n in doc}
        assert levels == {"a": 0, "b": 1, "c": 2}

    def test_text_content_collected(self):
        doc = parse_document("<a>hello <b>world</b> again</a>")
        assert "hello" in doc.root.text
        assert "again" in doc.root.text
        assert doc.root.children[0].text == "world"

    def test_text_advances_counter(self):
        with_text = parse_document("<a>x<b/></a>")
        without = parse_document("<a><b/></a>")
        assert with_text.root.children[0].start == \
            without.root.children[0].start + 1

    def test_text_numbers_can_be_disabled(self):
        doc = parse_document("<a>x<b/></a>", text_numbers=False)
        assert doc.root.children[0].start == 2

    def test_attributes_parsed(self):
        doc = parse_document('<a id="1" name=\'x y\'><b k="&lt;"/></a>')
        assert doc.root.tag == "a"  # attributes accepted, structure intact
        assert doc.validate()

    def test_whitespace_between_elements_ignored(self):
        doc = parse_document("<a>\n  <b/>\n  <c/>\n</a>")
        assert [c.tag for c in doc.root.children] == ["b", "c"]

    def test_doc_id(self):
        assert parse_document("<a/>", doc_id=4).doc_id == 4


class TestMarkupForms:
    def test_comments_skipped(self):
        doc = parse_document("<a><!-- note --><b/></a>")
        assert [c.tag for c in doc.root.children] == ["b"]

    def test_processing_instruction_skipped(self):
        doc = parse_document("<?xml version='1.0'?><a/>")
        assert doc.root.tag == "a"

    def test_doctype_skipped(self):
        doc = parse_document(
            "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>t</a>"
        )
        assert doc.root.tag == "a"

    def test_cdata_becomes_text(self):
        doc = parse_document("<a><![CDATA[<not & markup>]]></a>")
        assert doc.root.text == "<not & markup>"

    def test_entities_decoded(self):
        doc = parse_document("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.text == "<>&'\""

    def test_numeric_character_references(self):
        doc = parse_document("<a>&#65;&#x42;</a>")
        assert doc.root.text == "AB"


class TestErrors:
    @pytest.mark.parametrize("source", [
        "",
        "<a>",
        "<a></b>",
        "<a/><b/>",
        "text only",
        "<a><b></a></b>",
        "<a>&unknown;</a>",
        "<a><!-- unterminated </a>",
        "<1bad/>",
    ])
    def test_malformed_inputs_raise(self, source):
        with pytest.raises(XmlParseError):
            parse_document(source)

    def test_error_carries_offset(self):
        with pytest.raises(XmlParseError) as err:
            parse_document("<a></b>")
        assert err.value.offset >= 0


class TestSerializeRoundtrip:
    def test_simple_roundtrip(self):
        source = "<a><b>text</b><c/></a>"
        doc = parse_document(source)
        again = parse_document(serialize_document(doc))
        assert [(n.tag, n.start, n.end) for n in doc] == \
            [(n.tag, n.start, n.end) for n in again]

    def test_escaping_roundtrip(self):
        doc = parse_document("<a>a &lt; b &amp; c</a>")
        again = parse_document(serialize_document(doc))
        assert again.root.text == doc.root.text

    def test_generated_document_roundtrip(self):
        generator = XmlGenerator(
            DEPARTMENT_DTD, GeneratorConfig(max_depth=12), seed=9
        )
        doc = generator.generate(400)
        again = parse_document(serialize_document(doc))
        assert [(n.tag, n.level) for n in doc] == \
            [(n.tag, n.level) for n in again]
        # Region codes agree because both assign numbers in document order
        # with one number per text payload.
        assert [(n.start, n.end) for n in doc] == \
            [(n.start, n.end) for n in again]

    def test_roundtrip_validates(self):
        doc = parse_document("<x><y>t</y><y/><z><y/></z></x>")
        assert doc.validate()
        assert parse_document(serialize_document(doc)).validate()

    def test_indented_output_roundtrips_structure(self):
        doc = parse_document("<x><y><z/></y><y/></x>")
        pretty = serialize_document(doc, indent=True)
        assert "\n" in pretty
        again = parse_document(pretty)
        assert [(n.tag, n.level) for n in doc] == \
            [(n.tag, n.level) for n in again]

    def test_doctype_with_nested_brackets(self):
        source = ("<!DOCTYPE a [<!ELEMENT a (b)*>"
                  "<!ENTITY x \"[bracketed]\">]><a><b/></a>")
        doc = parse_document(source)
        assert [n.tag for n in doc] == ["a", "b"]

    def test_deeply_nested_serialization(self):
        # Serialization must survive documents deeper than the recursion
        # limit headroom (it raises the limit temporarily).
        from repro.xmldata.model import Document, Element, annotate_regions

        root = Element("n")
        node = root
        for _ in range(2000):
            node = node.add_child(Element("n"))
        annotate_regions(root)
        text = serialize_document(Document(root))
        assert text.count("<n>") + text.count("<n/>") == 2001
