"""Tests for the R-tree baseline (repro.indexes.rtree)."""

import random

import pytest

from repro.core.api import StorageContext
from repro.indexes.rtree import Rect, RTree, RTreeError, rtree_sync_join
from repro.joins import nested_loop_join
from repro.joins.base import sort_pairs
from tests.conftest import entry
from tests.test_xrtree_property import tree_shape_to_entries


@pytest.fixture
def rpool():
    return StorageContext(page_size=512, buffer_pages=64).pool


class TestRect:
    def test_union(self):
        a = Rect(1, 5, 10, 20)
        b = Rect(3, 8, 5, 15)
        assert a.union(b) == Rect(1, 8, 5, 20)

    def test_area_and_enlargement(self):
        a = Rect(0, 9, 0, 9)
        assert a.area() == 100
        assert a.enlargement(Rect(0, 9, 0, 9)) == 0
        assert a.enlargement(Rect(0, 19, 0, 9)) == 100

    def test_window_intersection(self):
        rect = Rect(10, 20, 30, 40)
        assert rect.intersects_window(15, 25, 35, 45)
        assert not rect.intersects_window(21, 30, 30, 40)
        assert not rect.intersects_window(10, 20, 41, 50)

    def test_of_entry_and_contains(self):
        rect = Rect.of_entry(entry(5, 9))
        assert rect.contains_point(5, 9)
        assert not rect.contains_point(5, 10)


class TestBuild:
    def test_bulk_load_and_items(self, rpool):
        entries = tree_shape_to_entries([2, 2, 2, 1, 1])
        tree = RTree(rpool, leaf_capacity=4, internal_capacity=3)
        tree.bulk_load(entries)
        tree.check()
        assert [e.start for e in tree.items()] == [e.start for e in entries]

    def test_dynamic_insert(self, rpool):
        rng = random.Random(4)
        entries = tree_shape_to_entries([3] * 40)
        rng.shuffle(entries)
        tree = RTree(rpool, leaf_capacity=4, internal_capacity=4)
        for e in entries:
            tree.insert(e)
        tree.check()
        assert tree.size == len(entries)
        assert sorted(e.start for e in tree.items()) == \
            sorted(e.start for e in entries)

    def test_empty_tree(self, rpool):
        tree = RTree(rpool)
        tree.check()
        assert tree.items() == []
        assert tree.find_ancestors(5) == []

    def test_bulk_load_twice_rejected(self, rpool):
        tree = RTree(rpool)
        tree.bulk_load([entry(1, 2)])
        with pytest.raises(RTreeError):
            tree.bulk_load([entry(5, 6)])

    def test_tiny_capacity_rejected(self, rpool):
        with pytest.raises(RTreeError):
            RTree(rpool, leaf_capacity=1)


class TestQueries:
    @pytest.fixture
    def loaded(self, rpool, dept_data):
        entries = sorted(dept_data.ancestors + dept_data.descendants,
                         key=lambda e: e.start)
        tree = RTree(rpool)
        tree.bulk_load(entries)
        return tree, entries

    def test_find_ancestors_matches_oracle(self, loaded):
        tree, entries = loaded
        rng = random.Random(5)
        for probe in rng.sample(entries, 60):
            got = [a.start for a in tree.find_ancestors(probe.start)]
            expected = [a.start for a in entries
                        if a.start < probe.start < a.end]
            assert got == expected

    def test_find_descendants_matches_oracle(self, loaded):
        tree, entries = loaded
        rng = random.Random(6)
        for probe in rng.sample(entries, 60):
            got = [d.start for d in tree.find_descendants(probe.start,
                                                          probe.end)]
            expected = [d.start for d in entries
                        if probe.start < d.start < probe.end]
            assert got == expected

    def test_window_counter(self, loaded):
        from repro.joins.base import JoinStats

        tree, entries = loaded
        stats = JoinStats()
        tree.find_ancestors(entries[len(entries) // 2].start, counter=stats)
        assert stats.elements_scanned > 0

    def test_dynamic_tree_answers_match_bulk(self, rpool, big_pool):
        entries = tree_shape_to_entries([2, 1, 3, 2, 1, 0, 2])
        bulk = RTree(rpool, leaf_capacity=4, internal_capacity=3)
        bulk.bulk_load(entries)
        dynamic = RTree(big_pool, leaf_capacity=4, internal_capacity=3)
        for e in entries:
            dynamic.insert(e)
        for probe in entries:
            assert bulk.find_ancestors(probe.start) == \
                dynamic.find_ancestors(probe.start)


class TestSyncJoin:
    def run(self, ancestors, descendants, parent_child=False):
        context = StorageContext(page_size=512, buffer_pages=64)
        a_tree = RTree(context.pool)
        a_tree.bulk_load(ancestors)
        d_tree = RTree(context.pool)
        d_tree.bulk_load(descendants)
        return rtree_sync_join(a_tree, d_tree, parent_child=parent_child)

    def test_department_matches_oracle(self, dept_data):
        pairs, _ = self.run(dept_data.ancestors, dept_data.descendants)
        assert sort_pairs(pairs) == nested_loop_join(
            dept_data.ancestors, dept_data.descendants
        )

    def test_conference_matches_oracle(self, conf_data):
        pairs, _ = self.run(conf_data.ancestors, conf_data.descendants)
        assert sort_pairs(pairs) == nested_loop_join(
            conf_data.ancestors, conf_data.descendants
        )

    def test_parent_child(self, dept_data):
        pairs, _ = self.run(dept_data.ancestors, dept_data.descendants,
                            parent_child=True)
        assert sort_pairs(pairs) == nested_loop_join(
            dept_data.ancestors, dept_data.descendants, parent_child=True
        )

    def test_random_trees(self):
        for shape in ([1, 2, 3], [3, 3, 3, 3], [2, 0, 1, 2, 0, 1]):
            entries = tree_shape_to_entries(shape)
            ancestors, descendants = entries[::2], entries[1::2]
            pairs, _ = self.run(ancestors, descendants)
            assert sort_pairs(pairs) == nested_loop_join(ancestors,
                                                         descendants)

    def test_empty_sides(self):
        pairs, _ = self.run([], [entry(1, 2)])
        assert pairs == []
        pairs, _ = self.run([entry(1, 10)], [])
        assert pairs == []

    def test_count_only(self, dept_data):
        _, stats = self.run(dept_data.ancestors, dept_data.descendants)
        context = StorageContext(page_size=512, buffer_pages=64)
        a_tree = RTree(context.pool)
        a_tree.bulk_load(dept_data.ancestors)
        d_tree = RTree(context.pool)
        d_tree.bulk_load(dept_data.descendants)
        pairs, stats2 = rtree_sync_join(a_tree, d_tree, collect=False)
        assert pairs is None
        assert stats2.pairs == stats.pairs
