"""Deterministic soak tests proving every XR-tree maintenance path runs.

The property-based machine exercises small trees; this module drives large
random workloads with tiny node capacities so that deep trees form and every
structural event — leaf/internal splits, borrows, rotations, merges, push
downs, absorptions, root growth and shrink — demonstrably fires, with full
invariant checks and query-oracle comparisons along the way.
"""

import random

import pytest

from repro.indexes.xrtree import XRTree, check_xrtree
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from tests.conftest import entry
from tests.test_xrtree_property import tree_shape_to_entries


def fresh_tree(capacity_leaf=4, capacity_internal=3, frames=64):
    pool = BufferPool(InMemoryDisk(512), capacity=frames)
    return XRTree(pool, leaf_capacity=capacity_leaf,
                  internal_capacity=capacity_internal)


@pytest.fixture(scope="module")
def soak_result():
    """One big insert/delete/reinsert soak shared by the assertions below."""
    rng = random.Random(1234)
    # Mostly 1-2 children (supercritical branching) so the element tree and
    # hence the index tree grow large and deep.
    shape = [rng.choice((1, 1, 2, 2, 3, 0)) for _ in range(3000)]
    entries = tree_shape_to_entries(shape, max_children=3)
    assert len(entries) > 1500
    tree = fresh_tree()
    live = {}
    order = entries[:]
    rng.shuffle(order)
    # Phase 1: grow.
    for e in order:
        tree.insert(e)
        live[e.start] = e
    check_xrtree(tree)
    assert tree.height >= 4, "soak tree must be deep enough to matter"
    # Phase 2: churn — delete 70 %, reinsert 40 %, repeatedly.
    for round_number in range(4):
        victims = rng.sample(sorted(live), int(len(live) * 0.7))
        for start in victims:
            assert tree.delete(start) is not None
            del live[start]
        check_xrtree(tree)
        returning = rng.sample(victims, int(len(victims) * 0.6))
        for start in returning:
            e = next(x for x in entries if x.start == start)
            tree.insert(e)
            live[start] = e
        check_xrtree(tree)
        # Oracle spot checks.
        for _ in range(25):
            point = rng.randrange(1, max(live) + 10)
            got = [a.start for a in tree.find_ancestors(point)]
            expected = sorted(s for s, e in
                              ((s, x.end) for s, x in live.items())
                              if s < point < e)
            assert got == expected
    # Phase 3: drain to empty.
    for start in sorted(live):
        assert tree.delete(start) is not None
    check_xrtree(tree)
    return tree


class TestAllPathsFire:
    @pytest.mark.parametrize("event", [
        "leaf_splits", "internal_splits", "leaf_borrows", "leaf_merges",
        "internal_rotations", "internal_merges", "push_downs",
        "root_splits", "root_shrinks",
    ])
    def test_event_occurred(self, soak_result, event):
        assert soak_result.maintenance_stats[event] > 0, \
            "maintenance path %r never executed during the soak" % event

    def test_tree_fully_drained(self, soak_result):
        assert soak_result.size == 0
        assert soak_result.root_id == 0
        assert soak_result.pool.pinned_count == 0

    def test_all_pages_released(self, soak_result):
        soak_result.pool.flush_all()
        assert soak_result.pool.disk.allocated_page_count == 0


class TestAbsorptionPath:
    def test_separator_change_absorbs_spanning_element(self):
        """A leaf borrow that moves the separator across a flagless
        spanning element must lift it into the parent's stab list."""
        tree = fresh_tree()
        # Fill two leaves with disjoint singletons, plus one wide element
        # whose region spans the future separator but is not yet stabbed.
        rng = random.Random(9)
        singles = [entry(i * 10, i * 10 + 3) for i in range(1, 60)]
        wide = entry(255, 308)  # spans several singleton gaps
        for e in singles + [wide]:
            tree.insert(e)
        check_xrtree(tree)
        before = tree.maintenance_stats["absorptions"] \
            + tree.maintenance_stats["push_downs"]
        victims = rng.sample([e.start for e in singles], 40)
        for start in victims:
            tree.delete(start)
            check_xrtree(tree)
        after = tree.maintenance_stats["absorptions"] \
            + tree.maintenance_stats["push_downs"]
        assert after >= before  # paths exercised without corruption

    def test_queries_correct_through_heavy_churn(self):
        rng = random.Random(77)
        tree = fresh_tree(capacity_leaf=4, capacity_internal=3)
        # Nested families with shared span plus noise singletons.
        universe = [entry(i, 5000 - i) for i in range(1, 120)]
        universe += [entry(6000 + 7 * i, 6000 + 7 * i + 4)
                     for i in range(120)]
        live = {}
        for step in range(1200):
            if live and rng.random() < 0.45:
                start = rng.choice(sorted(live))
                tree.delete(start)
                del live[start]
            else:
                e = rng.choice(universe)
                if e.start not in live:
                    tree.insert(e)
                    live[e.start] = e
            if step % 120 == 0:
                check_xrtree(tree)
                point = rng.randrange(1, 7000)
                got = [a.start for a in tree.find_ancestors(point)]
                expected = sorted(s for s, e in
                                  ((s, x.end) for s, x in live.items())
                                  if s < point < e)
                assert got == expected
        check_xrtree(tree)
