"""A persistent XML index database: build, close, reopen, query.

Shows the storage-engine face of the library: a file-backed storage
context, a catalog page recording every structure's metadata, and XR-tree /
B+-tree indexes that survive process restarts byte-for-byte.  Reopening
goes through an :class:`~repro.storage.indexmanager.IndexManager`, so
repeated access to the same index reuses one live handle instead of
re-deserializing it from the catalog.

Run:  python examples/persistent_database.py
"""

import os
import tempfile

from repro.core import StorageContext
from repro.indexes.bptree import BPlusTree
from repro.indexes.xrtree import XRTree, check_xrtree
from repro.storage.catalog import Catalog
from repro.storage.indexmanager import IndexManager
from repro.storage.pagedlist import PagedElementList
from repro.workloads import department_dataset


def build_database(path, data):
    with StorageContext(page_size=2048, buffer_pages=64,
                        path=path) as context:
        catalog = Catalog.create(context.pool)

        employees = XRTree(context.pool)
        employees.bulk_load(data.ancestors)
        catalog.save_xrtree("employees", employees)

        names = BPlusTree(context.pool)
        names.bulk_load(data.descendants)
        catalog.save_bptree("names", names)

        raw = PagedElementList.build(context.pool, data.descendants)
        catalog.save_element_list("names_raw", raw)

        context.pool.flush_all()
        print("built %s: %d pages, %d bytes"
              % (os.path.basename(path),
                 context.disk.allocated_page_count,
                 os.path.getsize(path)))


def reopen_and_query(path, data):
    with StorageContext(page_size=2048, buffer_pages=64,
                        path=path) as context:
        catalog = Catalog.open(context.pool)
        print("catalog:", catalog.names())
        manager = context.attach_index_manager(
            IndexManager(catalog, pool=context.pool)
        )

        employees = manager.get_xrtree("employees")
        check_xrtree(employees)
        print("employees index intact: %d elements, height %d"
              % (employees.size, employees.height))

        probe = data.descendants[len(data.descendants) // 2]
        ancestors = employees.find_ancestors(probe.start)
        print("name at %d has %d employee ancestors: %s"
              % (probe.start, len(ancestors),
                 [a.start for a in ancestors]))

        names = manager.get_bptree("names")
        found = names.search(probe.start)
        print("B+-tree lookup of that name:", (found.start, found.end))

        # Re-fetching goes through the handle cache, not the catalog.
        assert manager.get_xrtree("employees") is employees
        stats = context.index_stats
        print("index handles: %d loads, %d hits (hit rate %.2f)"
              % (stats.loads, stats.hits, stats.hit_rate))

        misses = context.pool.stats.misses
        print("all of the above cost %d page reads from a cold cache"
              % misses)


def main():
    data = department_dataset(3000, seed=41)
    path = os.path.join(tempfile.mkdtemp(prefix="xrdb-"), "corpus.db")
    build_database(path, data)
    reopen_and_query(path, data)


if __name__ == "__main__":
    main()
