"""A persistent XML index database: build, close, reopen, query.

Shows the storage-engine face of the library: a file-backed disk, a catalog
page recording every structure's metadata, and XR-tree / B+-tree indexes that
survive process restarts byte-for-byte.

Run:  python examples/persistent_database.py
"""

import os
import tempfile

from repro.indexes.bptree import BPlusTree
from repro.indexes.xrtree import XRTree, check_xrtree
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.disk import FileDisk
from repro.storage.pagedlist import PagedElementList
from repro.workloads import department_dataset


def build_database(path, data):
    with FileDisk(path, page_size=2048) as disk:
        pool = BufferPool(disk, capacity=64)
        catalog = Catalog.create(pool)

        employees = XRTree(pool)
        employees.bulk_load(data.ancestors)
        catalog.save_xrtree("employees", employees)

        names = BPlusTree(pool)
        names.bulk_load(data.descendants)
        catalog.save_bptree("names", names)

        raw = PagedElementList.build(pool, data.descendants)
        catalog.save_element_list("names_raw", raw)

        pool.flush_all()
        print("built %s: %d pages, %d bytes"
              % (os.path.basename(path), disk.allocated_page_count,
                 os.path.getsize(path)))


def reopen_and_query(path, data):
    with FileDisk(path, page_size=2048) as disk:
        pool = BufferPool(disk, capacity=64)
        catalog = Catalog.open(pool)
        print("catalog:", catalog.names())

        employees = catalog.load_xrtree("employees")
        check_xrtree(employees)
        print("employees index intact: %d elements, height %d"
              % (employees.size, employees.height))

        probe = data.descendants[len(data.descendants) // 2]
        ancestors = employees.find_ancestors(probe.start)
        print("name at %d has %d employee ancestors: %s"
              % (probe.start, len(ancestors),
                 [a.start for a in ancestors]))

        names = catalog.load_bptree("names")
        found = names.search(probe.start)
        print("B+-tree lookup of that name:", (found.start, found.end))

        misses = pool.stats.misses
        print("all of the above cost %d page reads from a cold cache"
              % misses)


def main():
    data = department_dataset(3000, seed=41)
    path = os.path.join(tempfile.mkdtemp(prefix="xrdb-"), "corpus.db")
    build_database(path, data)
    reopen_and_query(path, data)


if __name__ == "__main__":
    main()
