"""Twig pattern matching over a multi-document corpus.

Combines three extensions of the core reproduction: the path engine with
existential predicates (structural semi-joins), evaluation over a corpus of
several documents with disjoint region spaces, and the comparison between
the XR-stack plan and the no-index plan.

Run:  python examples/twig_queries.py [docs] [elements-per-doc]
"""

import sys

from repro.query import PathQueryEngine
from repro.xmldata.corpus import Corpus
from repro.xmldata.dtd import DEPARTMENT_DTD
from repro.xmldata.generator import XmlGenerator
from repro.xmldata.model import Document

QUERIES = (
    "//employee[email]",                 # employees with an email child
    "//employee[employee]/name",         # names of managers
    "//department[employee[employee]]",  # departments with nested employees
    "//employee[email][employee]",       # conjunctive predicate
    "//department//employee[name]//employee",
)


def merged_corpus_document(corpus):
    """View the corpus as one virtual document for the query engine.

    The engine only needs ``entries_for_tag`` and ``tags``; the corpus
    provides both with globally unique starts, so a thin adapter suffices.
    """

    class _CorpusView:
        def entries_for_tag(self, tag):
            return corpus.entries_for_tag(tag)

        def tags(self):
            return corpus.tags()

    return _CorpusView()


def main():
    docs = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    per_doc = int(sys.argv[2]) if len(sys.argv) > 2 else 2500
    corpus = Corpus()
    generator = XmlGenerator(DEPARTMENT_DTD, seed=19)
    for document in generator.generate_corpus(docs, per_doc):
        corpus.add(document)
    print("corpus: %d documents, %d elements total"
          % (len(corpus), corpus.element_count()))

    view = merged_corpus_document(corpus)
    engine = PathQueryEngine(view)
    fallback = PathQueryEngine(view, strategy="stack-tree")

    print("\n%-42s %8s %7s %11s %11s"
          % ("twig", "matches", "joins", "xr scan", "nidx scan"))
    for query in QUERIES:
        fast = engine.evaluate(query)
        slow = fallback.evaluate(query)
        assert fast.starts() == slow.starts(), "plans disagree"
        print("%-42s %8d %7d %11d %11d"
              % (query, len(fast), fast.joins_run,
                 fast.stats.elements_scanned, slow.stats.elements_scanned))

    # The holistic TwigStack executor agrees and reports full twig matches.
    from repro.query.twigjoin import twig_from_path, twig_stack_join

    print("\nholistic TwigStack on the same twigs:")
    for query in QUERIES[:3]:
        root, output = twig_from_path(query)
        solutions = twig_stack_join(view.entries_for_tag, root)
        pipeline = engine.evaluate(query)
        bindings = solutions.bindings_of(output.index)
        assert [e.start for e in bindings] == pipeline.starts()
        print("  %-40s %6d full matches, %5d scanned"
              % (query, solutions.count,
                 solutions.stats.elements_scanned))

    # Show that matches map back to their source documents.
    sample = engine.evaluate("//employee[employee]/name").matches[:3]
    print("\nfirst matches located back in their documents:")
    for match in sample:
        doc_id, start, end = corpus.locate(match)
        print("  doc %d, local region (%d, %d)" % (doc_id, start, end))


if __name__ == "__main__":
    main()
