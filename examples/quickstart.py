"""Quickstart: index an XML document with XR-trees and run a structural join.

Run:  python examples/quickstart.py
"""

from repro import StorageContext, XRTreeIndex, structural_join
from repro.xmldata.parser import parse_document

DOCUMENT = """
<dept>
  <emp><name>w</name>
    <emp><emp/></emp>
  </emp>
  <emp><name>x</name>
    <emp><name>y</name>
      <emp><emp/></emp>
    </emp>
  </emp>
  <emp><name>z</name></emp>
  <office/>
</dept>
"""


def main():
    # Parse XML into a region-encoded document (the paper's Figure 1 style:
    # every element carries a (start, end) pair assigned in document order).
    document = parse_document(DOCUMENT)
    document.validate()
    for element in list(document)[:4]:
        print("%-6s region=(%d, %d) level=%d"
              % (element.tag, element.start, element.end, element.level))

    # Extract the two element sets of the join "emp//name".
    emps = document.entries_for_tag("emp")
    names = document.entries_for_tag("name")

    # Index the emp set with an XR-tree and ask structural questions.
    context = StorageContext()  # in-memory disk + 100-page buffer pool
    index = XRTreeIndex.build(emps, context)
    probe = names[1]  # some name element
    print("\nname at %d has emp ancestors:" % probe.start,
          [a.start for a in index.ancestors_of(probe)])
    top = emps[0]
    print("emp at %d has emp descendants:" % top.start,
          [d.start for d in index.descendants_of(top)])

    # One-call structural join: all (emp, name) ancestor-descendant pairs.
    outcome = structural_join(emps, names, algorithm="xr-stack")
    print("\nemp//name pairs:", outcome.stats.pairs)
    for ancestor, descendant in outcome.pairs:
        print("  emp(%d,%d) contains name(%d,%d)"
              % (ancestor.start, ancestor.end,
                 descendant.start, descendant.end))
    print("elements scanned:", outcome.stats.elements_scanned,
          "| page misses:", outcome.page_misses)

    # Parent-child variant ("emp/name").
    outcome_pc = structural_join(emps, names, algorithm="xr-stack",
                                 parent_child=True)
    print("emp/name (parent-child) pairs:", outcome_pc.stats.pairs)


if __name__ == "__main__":
    main()
