"""Three query evaluation strategies for the same path expressions.

The paper's Section 7 future work — "query evaluation strategies for complex
XML queries (i.e. a combination of multiple structural joins)" — compared
head to head:

1. the binary XR-stack **pipeline** (left-to-right, indexed per step);
2. the **greedy-ordered** pipeline (most selective joins first);
3. the **holistic** PathStack pass (all streams at once).

All three must return identical matches; their element-scan counts differ.

Run:  python examples/query_strategies.py [scale]
"""

import sys

from repro.query import (
    GreedyPlanner,
    LeftToRightPlanner,
    PathQueryEngine,
    evaluate_path_stack,
    execute_plan,
)
from repro.workloads import department_dataset

PATHS = (
    "//department//employee//name",
    "//department//employee//email",
    "//employee//employee//name",
    "//department/employee/name",
)


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    document = department_dataset(scale, seed=23).document
    engine = PathQueryEngine(document)

    print("%-34s %8s | %10s %10s %10s"
          % ("path", "matches", "pipeline", "greedy", "holistic"))
    for path in PATHS:
        pipeline = engine.evaluate(path)
        greedy = execute_plan(document, path, GreedyPlanner())
        ordered = execute_plan(document, path, LeftToRightPlanner())
        holistic = evaluate_path_stack(document, path, collect=False)
        holistic_matches = evaluate_path_stack(document, path)

        assert [e.start for e in greedy.matches] == pipeline.starts()
        assert [e.start for e in ordered.matches] == pipeline.starts()
        assert [e.start for e in
                holistic_matches.last_elements()] == pipeline.starts()

        print("%-34s %8d | %10d %10d %10d"
              % (path, len(pipeline),
                 pipeline.stats.elements_scanned,
                 greedy.stats.elements_scanned,
                 holistic.stats.elements_scanned))
        if greedy.order:
            print("  greedy join order: "
                  + " , ".join("%s-%s" % pair for pair in greedy.order))
    print("\nAll strategies agree on every result; the scan counts show "
          "where each pays its cost (the holistic pass is bounded by the "
          "total stream length, the pipelines by their intermediate sizes).")


if __name__ == "__main__":
    main()
