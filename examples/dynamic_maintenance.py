"""Dynamic XR-tree maintenance with a file-backed disk.

Demonstrates Section 4: the XR-tree is a *dynamic* index — elements are
inserted and deleted online while stab lists, (ps, pe) fields and ps
directories stay consistent (verified with the structural checker), at an
amortized cost close to a plain B+-tree update.  The index lives in a real
file on disk, showing the whole stack round-trips through bytes.

Run:  python examples/dynamic_maintenance.py
"""

import os
import random
import tempfile

from repro.core import StorageContext
from repro.indexes.xrtree import XRTree, check_xrtree
from repro.workloads import department_dataset


def main():
    rng = random.Random(2003)
    data = department_dataset(4000, seed=17)
    entries = sorted(data.ancestors + data.descendants,
                     key=lambda entry: entry.start)
    rng.shuffle(entries)

    path = os.path.join(tempfile.mkdtemp(prefix="xrtree-"), "index.pages")
    # The context-manager form closes (and flushes) the file-backed disk on
    # exit — no bare close() bookkeeping.
    with StorageContext(page_size=2048, buffer_pages=64, path=path) as context:
        tree = XRTree(context.pool)

        print("inserting %d employee+name elements in random order..."
              % len(entries))
        context.reset_stats()
        for entry in entries:
            tree.insert(entry)
        context.pool.flush_all()
        io = context.disk.stats
        print("height=%d size=%d | %.2f page transfers per insert"
              % (tree.height, tree.size,
                 io.total_transfers / len(entries)))
        check_xrtree(tree)
        print("invariants hold after the insert storm")

        victims = rng.sample([entry.start for entry in entries],
                             len(entries) // 2)
        context.reset_stats()
        for start in victims:
            removed = tree.delete(start)
            assert removed is not None
        context.pool.flush_all()
        io = context.disk.stats
        print("deleted %d elements | %.2f page transfers per delete"
              % (len(victims), io.total_transfers / len(victims)))
        check_xrtree(tree)
        print("invariants hold after interleaved deletions")

        # The index still answers structural queries correctly.
        survivor = next(tree.items())
        print("first surviving element: (%d, %d); it has %d indexed "
              "descendants"
              % (survivor.start, survivor.end,
                 len(tree.find_descendants(survivor.start, survivor.end))))
        print("index file: %s (%d bytes)" % (path, os.path.getsize(path)))

    # Source-document updates: with sparse numbering, insertions take
    # unused region numbers, so only the touched elements hit the indexes.
    from repro.xmldata.model import annotate_regions
    from repro.xmldata.update import IndexedDocument
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import InMemoryDisk

    document = department_dataset(1200, seed=3).document
    annotate_regions(document.root, spacing=6)  # leave insertion room
    indexed = IndexedDocument(document,
                              BufferPool(InMemoryDisk(1024), capacity=64))
    employee = next(n for n in document if n.tag == "employee")
    added = indexed.insert(employee, 0, "email", text="new@corp")
    print("\ninserted <email> at region (%d, %d) without renumbering; "
          "all indexes verified: %s"
          % (added.start, added.end, indexed.check()))
    indexed.delete(added)
    print("deleted it again; indexes verified: %s" % indexed.check())


if __name__ == "__main__":
    main()
