"""Evaluate multi-step path expressions as pipelines of structural joins.

This exercises the paper's stated future work (Section 7): complex queries
combining multiple structural joins over XR-tree indexed element sets.

Run:  python examples/path_queries.py [scale]
"""

import sys

from repro.query import PathQueryEngine
from repro.workloads import department_dataset

QUERIES = (
    "//department//employee",
    "//employee//name",
    "//employee/name",          # parent-child step
    "//department//employee//employee/name",
    "/departments/department/name",
    "//employee/email",
)


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    data = department_dataset(scale)
    print("document: %d elements, employee nesting depth %d"
          % (data.document.element_count(),
             data.document.max_nesting("employee")))

    engine = PathQueryEngine(data.document)
    fallback = PathQueryEngine(data.document, strategy="stack-tree")
    print("\n%-44s %9s %7s %12s %12s"
          % ("path", "matches", "joins", "xr scanned", "nidx scanned"))
    for query in QUERIES:
        fast = engine.evaluate(query)
        slow = fallback.evaluate(query)
        assert fast.starts() == slow.starts(), "plans disagree!"
        print("%-44s %9d %7d %12d %12d"
              % (query, len(fast), fast.joins_run,
                 fast.stats.elements_scanned, slow.stats.elements_scanned))
    print("\nBoth strategies return identical matches; the XR-stack plan "
          "scans fewer elements whenever a step is selective.")


if __name__ == "__main__":
    main()
