"""Compare all four structural-join algorithms on the paper's workloads.

Generates the Department-DTD (highly nested) and Conference-DTD (flat)
datasets of Section 6.1, sweeps join selectivity on the ancestor set as in
Section 6.2, and prints a Table 2 / Figure 8(a)-style comparison.

Run:  python examples/department_workload.py [scale]
"""

import sys

from repro.core import structural_join
from repro.workloads import (
    conference_dataset,
    department_dataset,
    vary_ancestor_selectivity,
)

ALGORITHMS = ("stack-tree", "mpmgjn", "b+", "xr-stack")
LABELS = {"stack-tree": "NIDX", "mpmgjn": "MPMGJN", "b+": "B+",
          "xr-stack": "XR"}
STEPS = (0.90, 0.55, 0.25, 0.05, 0.01)


def sweep(dataset):
    print("\n=== %s: %d ancestors, %d descendants ==="
          % (dataset.name, dataset.ancestor_count, dataset.descendant_count))
    header = "%-8s" % "Join-A"
    for algorithm in ALGORITHMS:
        header += "%18s" % ("%s scan/miss" % LABELS[algorithm])
    print(header)
    for step in STEPS:
        workload = vary_ancestor_selectivity(dataset, step)
        row = "%-8s" % ("%d%%" % round(step * 100))
        for algorithm in ALGORITHMS:
            outcome = structural_join(workload.ancestors,
                                      workload.descendants,
                                      algorithm=algorithm, collect=False)
            row += "%18s" % ("%d/%d" % (outcome.stats.elements_scanned,
                                        outcome.page_misses))
        print(row)


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    sweep(department_dataset(scale))
    sweep(conference_dataset(scale))
    print("\nExpected shape (paper, Tables 2a/2b): XR scans least and its "
          "advantage grows as Join-A falls; B+ skips ancestors only on the "
          "nested employee set and equals NIDX on the flat paper set.")


if __name__ == "__main__":
    main()
