"""Machine validation of exported trace JSONL against the documented schema.

Usable as a library (:func:`validate_records`, :func:`validate_jsonl`) and
as a command line tool::

    python -m repro.obs.validate trace.jsonl

Exit status 0 means every record conforms; 1 means violations were found
(each printed).  The schema being enforced is the one documented in
``docs/OBSERVABILITY.md``:

* the first line is a ``trace-meta`` header carrying ``v``, ``capacity``,
  ``emitted`` and ``dropped``;
* every record has integer ``v`` == the schema version, a numeric
  non-negative ``ts``, a non-empty string ``kind`` and a ``phase`` in
  ``begin`` / ``end`` / ``event``;
* ``begin``/``end`` records carry an integer ``span``; ``end`` records a
  non-negative ``dur``;
* ``fields``, when present, is a string-keyed object;
* when the header reports ``dropped == 0`` (no ring wraparound), spans
  must pair up: every ``end`` has a matching earlier ``begin`` and parent
  references point at spans that began earlier.  With drops, pairing is
  not checkable (the begins may have been overwritten) and only
  record-level checks apply.
"""

import json
import sys

from repro.obs.trace import TRACE_SCHEMA_VERSION


def validate_records(records, strict_pairing=None):
    """Validate decoded trace records; returns a list of problem strings.

    ``records`` includes the meta header when present.  ``strict_pairing``
    forces span-pairing checks on/off; by default it follows the header's
    ``dropped`` count (strict only when nothing was dropped).
    """
    problems = []
    records = list(records)
    if not records:
        return ["empty trace: no records at all"]
    meta = records[0] if records[0].get("kind") == "trace-meta" else None
    body = records[1:] if meta is not None else records
    if meta is None:
        problems.append("first record is not a trace-meta header")
    else:
        for key in ("v", "capacity", "emitted", "dropped"):
            if not isinstance(meta.get(key), int):
                problems.append("trace-meta: missing/invalid %r" % key)
        if meta.get("v") != TRACE_SCHEMA_VERSION:
            problems.append("trace-meta: schema version %r, expected %d"
                            % (meta.get("v"), TRACE_SCHEMA_VERSION))
    if strict_pairing is None:
        strict_pairing = bool(meta) and meta.get("dropped") == 0

    begun = {}
    ended = set()
    last_ts = None
    for index, record in enumerate(body):
        where = "record %d" % (index + 1)
        if not isinstance(record, dict):
            problems.append("%s: not an object" % where)
            continue
        if record.get("v") != TRACE_SCHEMA_VERSION:
            problems.append("%s: bad schema version %r"
                            % (where, record.get("v")))
        ts = record.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: bad ts %r" % (where, ts))
        elif last_ts is not None and ts + 1e-6 < last_ts:
            problems.append("%s: timestamps went backwards (%r after %r)"
                            % (where, ts, last_ts))
        else:
            last_ts = ts
        kind = record.get("kind")
        if not isinstance(kind, str) or not kind:
            problems.append("%s: bad kind %r" % (where, kind))
        phase = record.get("phase")
        if phase not in ("begin", "end", "event"):
            problems.append("%s: bad phase %r" % (where, phase))
            continue
        span = record.get("span")
        parent = record.get("parent")
        if phase in ("begin", "end") and not isinstance(span, int):
            problems.append("%s: %s record without integer span"
                            % (where, phase))
        if parent is not None and not isinstance(parent, int):
            problems.append("%s: non-integer parent %r" % (where, parent))
        if phase == "end":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("%s: end record with bad dur %r"
                                % (where, dur))
        fields = record.get("fields")
        if fields is not None:
            if not isinstance(fields, dict) or any(
                    not isinstance(key, str) for key in fields):
                problems.append("%s: fields is not a string-keyed object"
                                % where)
        if strict_pairing and isinstance(span, int):
            if phase == "begin":
                if span in begun:
                    problems.append("%s: span %d began twice"
                                    % (where, span))
                begun[span] = kind
            elif phase == "end":
                if span not in begun:
                    problems.append("%s: end of span %d with no begin"
                                    % (where, span))
                elif span in ended:
                    problems.append("%s: span %d ended twice"
                                    % (where, span))
                elif begun[span] != kind:
                    problems.append(
                        "%s: span %d began as %r but ended as %r"
                        % (where, span, begun[span], kind))
                ended.add(span)
        if strict_pairing and isinstance(parent, int) and parent not in begun:
            problems.append("%s: parent %d never began" % (where, parent))
    if strict_pairing:
        for span in sorted(set(begun) - ended):
            problems.append("span %d began but never ended" % span)
    return problems


def validate_jsonl(text, strict_pairing=None):
    """Validate JSONL text; returns a list of problem strings."""
    records = []
    problems = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            problems.append("line %d: invalid JSON (%s)" % (number, exc))
    return problems + validate_records(records, strict_pairing)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.jsonl>",
              file=sys.stderr)
        return 2
    with open(argv[0], "r", encoding="utf-8") as handle:
        text = handle.read()
    problems = validate_jsonl(text)
    records = sum(1 for line in text.splitlines() if line.strip())
    if problems:
        for problem in problems:
            print("INVALID: %s" % problem)
        return 1
    print("OK: %d records conform to trace schema v%d"
          % (records, TRACE_SCHEMA_VERSION))
    return 0


if __name__ == "__main__":
    sys.exit(main())
