"""Machine validation of exported trace JSONL against the documented schema.

Usable as a library (:func:`validate_records`, :func:`validate_jsonl`) and
as a command line tool::

    python -m repro.obs.validate trace.jsonl

Exit status 0 means every record conforms; 1 means violations were found
(each printed).  The schema being enforced is the one documented in
``docs/OBSERVABILITY.md``.  Two versions are accepted — **v1** (the PR 4
per-process schema) and **v2** (the cluster-wide schema) — with a file
validated against the version its ``trace-meta`` header declares:

* the first line is a ``trace-meta`` header carrying ``v``, ``capacity``,
  ``emitted`` and ``dropped`` (v2 adds a numeric ``wall_epoch`` for
  cross-node clock alignment, and optionally the emitting ``node``);
* every record has integer ``v`` == the header's version, a numeric
  non-negative ``ts``, a non-empty string ``kind`` and a ``phase`` in
  ``begin`` / ``end`` / ``event``;
* ``begin``/``end`` records carry an integer ``span``; ``end`` records a
  non-negative ``dur``;
* ``fields``, when present, is a string-keyed object;
* **v2 only**: ``trace`` (when present) is a non-empty string, ``node``
  a non-empty string, ``attempt`` a positive integer, and ``link`` — a
  cross-node parent reference — an object with a string ``trace``, an
  integer ``span`` and optionally a string ``node``;
* when the header reports ``dropped == 0`` (no ring wraparound), spans
  must pair up: every ``end`` has a matching earlier ``begin`` and parent
  references point at spans that began earlier.  With drops, pairing is
  not checkable (the begins may have been overwritten) and only
  record-level checks apply.
"""

import json
import sys

from repro.obs.trace import SUPPORTED_SCHEMA_VERSIONS, TRACE_SCHEMA_VERSION


def _check_v2_fields(record, where, problems):
    """The cluster-propagation fields added by schema v2."""
    trace = record.get("trace")
    if trace is not None and (not isinstance(trace, str) or not trace):
        problems.append("%s: bad trace id %r" % (where, trace))
    node = record.get("node")
    if node is not None and (not isinstance(node, str) or not node):
        problems.append("%s: bad node id %r" % (where, node))
    attempt = record.get("attempt")
    if attempt is not None and (not isinstance(attempt, int)
                                or attempt < 1):
        problems.append("%s: bad attempt %r" % (where, attempt))
    link = record.get("link")
    if link is not None:
        if not isinstance(link, dict):
            problems.append("%s: link is not an object" % where)
        else:
            if not isinstance(link.get("trace"), str) or not link["trace"]:
                problems.append("%s: link without a string trace id"
                                % where)
            if not isinstance(link.get("span"), int):
                problems.append("%s: link without an integer span"
                                % where)
            if "node" in link and not isinstance(link["node"], str):
                problems.append("%s: link with a non-string node %r"
                                % (where, link["node"]))


def validate_records(records, strict_pairing=None):
    """Validate decoded trace records; returns a list of problem strings.

    ``records`` includes the meta header when present.  ``strict_pairing``
    forces span-pairing checks on/off; by default it follows the header's
    ``dropped`` count (strict only when nothing was dropped).
    """
    problems = []
    records = list(records)
    if not records:
        return ["empty trace: no records at all"]
    meta = records[0] if records[0].get("kind") == "trace-meta" else None
    body = records[1:] if meta is not None else records
    version = TRACE_SCHEMA_VERSION
    if meta is None:
        problems.append("first record is not a trace-meta header")
    else:
        for key in ("v", "capacity", "emitted", "dropped"):
            if not isinstance(meta.get(key), int):
                problems.append("trace-meta: missing/invalid %r" % key)
        if meta.get("v") not in SUPPORTED_SCHEMA_VERSIONS:
            problems.append(
                "trace-meta: schema version %r, expected one of %s"
                % (meta.get("v"),
                   "/".join(map(str, SUPPORTED_SCHEMA_VERSIONS))))
        else:
            version = meta["v"]
        if version >= 2:
            wall = meta.get("wall_epoch")
            if not isinstance(wall, (int, float)) or wall < 0:
                problems.append("trace-meta: missing/invalid wall_epoch %r"
                                % (wall,))
            node = meta.get("node")
            if node is not None and (not isinstance(node, str) or not node):
                problems.append("trace-meta: bad node id %r" % (node,))
            if not isinstance(meta.get("live", False), bool):
                problems.append("trace-meta: non-boolean live flag %r"
                                % (meta.get("live"),))
    if strict_pairing is None:
        # A "live" capture (a flight-recorder dump taken mid-flight) may
        # legitimately hold open spans; pairing is only checkable on a
        # complete, drop-free export.
        strict_pairing = (bool(meta) and meta.get("dropped") == 0
                          and not meta.get("live", False))

    begun = {}
    ended = set()
    last_ts = None
    for index, record in enumerate(body):
        where = "record %d" % (index + 1)
        if not isinstance(record, dict):
            problems.append("%s: not an object" % where)
            continue
        if record.get("v") != version:
            problems.append("%s: bad schema version %r"
                            % (where, record.get("v")))
        ts = record.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: bad ts %r" % (where, ts))
        elif last_ts is not None and ts + 1e-6 < last_ts:
            problems.append("%s: timestamps went backwards (%r after %r)"
                            % (where, ts, last_ts))
        else:
            last_ts = ts
        kind = record.get("kind")
        if not isinstance(kind, str) or not kind:
            problems.append("%s: bad kind %r" % (where, kind))
        phase = record.get("phase")
        if phase not in ("begin", "end", "event"):
            problems.append("%s: bad phase %r" % (where, phase))
            continue
        span = record.get("span")
        parent = record.get("parent")
        if phase in ("begin", "end") and not isinstance(span, int):
            problems.append("%s: %s record without integer span"
                            % (where, phase))
        if parent is not None and not isinstance(parent, int):
            problems.append("%s: non-integer parent %r" % (where, parent))
        if phase == "end":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("%s: end record with bad dur %r"
                                % (where, dur))
        fields = record.get("fields")
        if fields is not None:
            if not isinstance(fields, dict) or any(
                    not isinstance(key, str) for key in fields):
                problems.append("%s: fields is not a string-keyed object"
                                % where)
        if version >= 2:
            _check_v2_fields(record, where, problems)
        if strict_pairing and isinstance(span, int):
            if phase == "begin":
                if span in begun:
                    problems.append("%s: span %d began twice"
                                    % (where, span))
                begun[span] = kind
            elif phase == "end":
                if span not in begun:
                    problems.append("%s: end of span %d with no begin"
                                    % (where, span))
                elif span in ended:
                    problems.append("%s: span %d ended twice"
                                    % (where, span))
                elif begun[span] != kind:
                    problems.append(
                        "%s: span %d began as %r but ended as %r"
                        % (where, span, begun[span], kind))
                ended.add(span)
        if strict_pairing and isinstance(parent, int) and parent not in begun:
            problems.append("%s: parent %d never began" % (where, parent))
    if strict_pairing:
        for span in sorted(set(begun) - ended):
            problems.append("span %d began but never ended" % span)
    return problems


def validate_jsonl(text, strict_pairing=None):
    """Validate JSONL text; returns a list of problem strings."""
    records = []
    problems = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            problems.append("line %d: invalid JSON (%s)" % (number, exc))
    return problems + validate_records(records, strict_pairing)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.jsonl>",
              file=sys.stderr)
        return 2
    with open(argv[0], "r", encoding="utf-8") as handle:
        text = handle.read()
    problems = validate_jsonl(text)
    records = 0
    version = TRACE_SCHEMA_VERSION
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        records += 1
        if records == 1:
            try:
                header = json.loads(line)
            except ValueError:
                header = {}
            if header.get("v") in SUPPORTED_SCHEMA_VERSIONS:
                version = header["v"]
    if problems:
        for problem in problems:
            print("INVALID: %s" % problem)
        return 1
    print("OK: %d records conform to trace schema v%d"
          % (records, version))
    return 0


if __name__ == "__main__":
    sys.exit(main())
