"""Structured tracing: nested spans and point events in a bounded ring.

The paper's cost claims are *per-operation* claims — one ``FindAncestors``
probe costs ``O(log_F N + R)`` I/Os — so proving them in a running system
needs the causal chain from a query down to the individual page fetch.
:class:`Tracer` records that chain as structured events:

    query  →  plan  →  join operator  →  index op  →  page fetch

Spans (``tracer.span(kind, **fields)``) nest via a context-manager API and
emit a *begin* record on entry and an *end* record (with ``dur``) on exit;
point events (``tracer.event(kind, **fields)``) attach to the innermost
open span.  Records land in a bounded ring buffer — a fixed-capacity
overwrite ring, so a tracer left enabled forever costs bounded memory and
the newest records always survive (``dropped`` counts the overwritten
ones).

Cost discipline: a **disabled tracer is a no-op costing one predicate
check**.  Instrumentation sites follow the pattern::

    if tracer is not None and tracer.enabled:
        tracer.event("page-fetch", page=page_id, hit=True)

so the hot path pays a single attribute load and branch.  ``span()`` on a
disabled tracer returns one shared null span object (no allocation).

Export is JSONL (:meth:`Tracer.export_jsonl`): one JSON object per line,
first a ``trace-meta`` header (schema version, capacity, dropped count),
then the ring's records oldest-first.  The schema is documented in
``docs/OBSERVABILITY.md`` and machine-checked by :mod:`repro.obs.validate`.

Schema **v2** makes traces cluster-wide.  A tracer may carry a
``node_id`` (stamped as ``node`` on every record), and a thread-local
**trace context** — entered with :class:`trace_context` and read with
:func:`current_trace_id` — stamps ``trace`` (one id per logical
operation), ``attempt`` (which retry/hedge leg emitted the record) and
``link`` (a remote parent: the span/node on another process that caused
this work, carried over the wire by :mod:`repro.net.frames`).  Because
the context is thread-local and process-global, one ``trace_context``
covers spans emitted on *every* hub the thread touches — a cluster read
that fails over through three backends leaves records on three tracers,
all joined by one ``trace`` id.  ``meta()`` additionally records
``wall_epoch`` (wall-clock seconds at tracer creation) so per-node
monotonic timestamps can be aligned across machines
(:mod:`repro.obs.postmortem`).
"""

import io
import json
import threading
import time
import uuid

#: Schema version stamped on every record (bump on incompatible change).
TRACE_SCHEMA_VERSION = 2

#: Versions :mod:`repro.obs.validate` accepts (old exports stay valid).
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

#: Default ring capacity (records, not bytes).
DEFAULT_TRACE_CAPACITY = 4096

#: Record phases.
PHASES = ("begin", "end", "event", "meta")

#: The thread-local trace context: ``(trace_id, attempt, link)`` or
#: absent.  Module-global so one context covers every tracer a thread
#: emits into (cluster hub, per-node hubs, net transport).
_CONTEXT = threading.local()


def new_trace_id():
    """A fresh globally unique trace id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


def current_trace_id():
    """The thread's active trace id, or None outside any context."""
    ctx = getattr(_CONTEXT, "ctx", None)
    return ctx[0] if ctx is not None else None


def current_context():
    """The thread's ``(trace_id, attempt, link)`` triple, or None."""
    return getattr(_CONTEXT, "ctx", None)


class trace_context:
    """Bind a trace id (and optionally an attempt id and a remote
    ``link`` parent) to the current thread for the duration of a block.

    Every record any tracer emits from this thread while the block is
    open carries the context.  Contexts nest: the previous one is
    restored on exit, so a failover running inside a client read keeps
    its own trace without clobbering the caller's.  ``trace_id=None``
    clears the context (records revert to context-free).
    """

    __slots__ = ("trace_id", "attempt", "link", "_prev")

    def __init__(self, trace_id, attempt=None, link=None):
        self.trace_id = trace_id
        self.attempt = attempt
        self.link = link
        self._prev = None

    def __enter__(self):
        self._prev = getattr(_CONTEXT, "ctx", None)
        if self.trace_id is None:
            _CONTEXT.ctx = None
        else:
            _CONTEXT.ctx = (self.trace_id, self.attempt, self.link)
        return self

    def __exit__(self, exc_type, exc, tb):
        _CONTEXT.ctx = self._prev
        return False


class _NullSpan:
    """The shared span returned by a disabled tracer — a pure no-op."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def note(self, **fields):
        """Ignore attached fields (the enabled variant records them)."""


NULL_SPAN = _NullSpan()


class Span:
    """One open span: emits *begin* on ``__enter__``, *end* on ``__exit__``.

    ``note(**fields)`` attaches fields after the fact; they ride the end
    record (e.g. result sizes known only when the operation finishes).
    """

    __slots__ = ("_tracer", "kind", "span_id", "parent_id", "fields",
                 "_started")

    def __init__(self, tracer, kind, parent_id, fields):
        self._tracer = tracer
        self.kind = kind
        self.span_id = tracer._next_span_id()
        self.parent_id = parent_id
        self.fields = fields
        self._started = None

    def note(self, **fields):
        self.fields.update(fields)

    def __enter__(self):
        tracer = self._tracer
        self._started = tracer._now()
        tracer._push(self)
        tracer._emit(self.kind, "begin", self.span_id, self.parent_id,
                     dict(self.fields), None)
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self._tracer
        duration = tracer._now() - self._started
        if exc_type is not None:
            self.fields["error"] = exc_type.__name__
        tracer._pop(self)
        tracer._emit(self.kind, "end", self.span_id, self.parent_id,
                     dict(self.fields), duration)
        return False


class Tracer:
    """A bounded-ring structured-event recorder.

    ``capacity`` bounds resident records; when full, the oldest record is
    overwritten and ``dropped`` incremented.  ``enabled`` gates every
    entry point: a disabled tracer's :meth:`span` returns the shared
    :data:`NULL_SPAN` and :meth:`event` returns immediately.

    Timestamps (``ts``) are seconds since the tracer was created, from a
    monotonic clock — stable across records, meaningless across tracers
    until aligned through ``wall_epoch`` (wall-clock seconds at tracer
    creation, carried in :meth:`meta`).  The span stack is thread-local
    (each thread nests its own spans); the ring itself is guarded by a
    lock so concurrent emitters interleave safely and ring order stays
    timestamp-ordered.

    ``node_id`` names the process/backend this tracer belongs to; when
    set, every record carries it as ``node`` so merged multi-node traces
    stay attributable.  **Sinks** (:meth:`add_sink`) are callbacks fed a
    copy of every emitted record — how the
    :class:`~repro.obs.flight.FlightRecorder` persists history beyond
    the ring — and cost nothing until one is attached.
    """

    def __init__(self, capacity=DEFAULT_TRACE_CAPACITY, enabled=True,
                 node_id=None):
        if capacity < 1:
            raise ValueError("tracer capacity must be at least 1")
        self.capacity = capacity
        self.enabled = enabled
        self.node_id = node_id
        self.dropped = 0
        self.emitted = 0
        self._epoch = time.monotonic()
        self._wall_epoch = time.time()
        self._ring = []
        self._write = 0          # next overwrite slot once the ring is full
        self._span_counter = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sinks = []

    # -- recording -----------------------------------------------------------

    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def span(self, kind, **fields):
        """A nested span context manager (or the null span when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, kind, self._current_span_id(), fields)

    def event(self, kind, **fields):
        """A point event attached to the innermost open span."""
        if not self.enabled:
            return
        self._emit(kind, "event", None, self._current_span_id(), fields,
                   None)

    # -- ring access ---------------------------------------------------------

    def records(self):
        """The resident records, oldest first (list of dicts)."""
        with self._lock:
            if len(self._ring) < self.capacity:
                return list(self._ring)
            return self._ring[self._write:] + self._ring[:self._write]

    def clear(self):
        """Drop every record and reset the drop counter."""
        with self._lock:
            self._ring = []
            self._write = 0
            self.dropped = 0
            self.emitted = 0

    def __len__(self):
        return len(self._ring)

    def meta(self):
        """The ``trace-meta`` header record describing this export."""
        header = {
            "v": TRACE_SCHEMA_VERSION,
            "kind": "trace-meta",
            "phase": "meta",
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "wall_epoch": round(self._wall_epoch, 6),
        }
        if self.node_id is not None:
            header["node"] = self.node_id
        return header

    # -- sinks ---------------------------------------------------------------

    def add_sink(self, fn):
        """Feed every future record (a dict) to ``fn`` as it is emitted.

        Sinks run outside the ring lock, in the emitting thread; a sink
        that raises is detached rather than poisoning instrumentation
        sites.  Returns ``fn`` for decorator use.
        """
        self._sinks.append(fn)
        return fn

    def remove_sink(self, fn):
        try:
            self._sinks.remove(fn)
        except ValueError:
            pass

    def export_jsonl(self, target=None):
        """Serialize the ring as JSONL: meta header, then records.

        ``target`` may be a path or a writable text file object; with no
        target the JSONL text is returned.
        """
        lines = [json.dumps(self.meta(), sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True)
                     for record in self.records())
        text = "\n".join(lines) + "\n"
        if target is None:
            return text
        if isinstance(target, (str, bytes)):
            with io.open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            target.write(text)
        return None

    # -- internals -----------------------------------------------------------

    def _now(self):
        return time.monotonic() - self._epoch

    def _next_span_id(self):
        with self._lock:
            self._span_counter += 1
            return self._span_counter

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self):
        """The open span id on the calling thread (None outside a span).

        What a transport puts in an outgoing trace context so the
        remote node can link its spans back to this one.
        """
        return self._current_span_id()

    def _current_span_id(self):
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _push(self, span):
        self._stack().append(span)

    def _pop(self, span):
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits
            stack.remove(span)

    def _emit(self, kind, phase, span_id, parent_id, fields, duration):
        record = {
            "v": TRACE_SCHEMA_VERSION,
            "kind": kind,
            "phase": phase,
        }
        if span_id is not None:
            record["span"] = span_id
        if parent_id is not None:
            record["parent"] = parent_id
        if duration is not None:
            record["dur"] = round(duration, 9)
        if self.node_id is not None:
            record["node"] = self.node_id
        ctx = getattr(_CONTEXT, "ctx", None)
        if ctx is not None:
            trace_id, attempt, link = ctx
            record["trace"] = trace_id
            if attempt is not None:
                record["attempt"] = attempt
            if link is not None:
                record["link"] = link
        if fields:
            record["fields"] = fields
        with self._lock:
            # The timestamp is taken under the lock so ring order is
            # timestamp order even with concurrent emitters.
            record["ts"] = round(self._now(), 9)
            self.emitted += 1
            if len(self._ring) < self.capacity:
                self._ring.append(record)
            else:
                self._ring[self._write] = record
                self._write = (self._write + 1) % self.capacity
                self.dropped += 1
        if self._sinks:
            for sink in list(self._sinks):
                try:
                    sink(record)
                except Exception:
                    self.remove_sink(sink)


#: A module-level disabled tracer for call sites that want a never-None
#: default without paying for a ring.
NULL_TRACER = Tracer(capacity=1, enabled=False)
