"""Structured tracing: nested spans and point events in a bounded ring.

The paper's cost claims are *per-operation* claims — one ``FindAncestors``
probe costs ``O(log_F N + R)`` I/Os — so proving them in a running system
needs the causal chain from a query down to the individual page fetch.
:class:`Tracer` records that chain as structured events:

    query  →  plan  →  join operator  →  index op  →  page fetch

Spans (``tracer.span(kind, **fields)``) nest via a context-manager API and
emit a *begin* record on entry and an *end* record (with ``dur``) on exit;
point events (``tracer.event(kind, **fields)``) attach to the innermost
open span.  Records land in a bounded ring buffer — a fixed-capacity
overwrite ring, so a tracer left enabled forever costs bounded memory and
the newest records always survive (``dropped`` counts the overwritten
ones).

Cost discipline: a **disabled tracer is a no-op costing one predicate
check**.  Instrumentation sites follow the pattern::

    if tracer is not None and tracer.enabled:
        tracer.event("page-fetch", page=page_id, hit=True)

so the hot path pays a single attribute load and branch.  ``span()`` on a
disabled tracer returns one shared null span object (no allocation).

Export is JSONL (:meth:`Tracer.export_jsonl`): one JSON object per line,
first a ``trace-meta`` header (schema version, capacity, dropped count),
then the ring's records oldest-first.  The schema is documented in
``docs/OBSERVABILITY.md`` and machine-checked by :mod:`repro.obs.validate`.
"""

import io
import json
import threading
import time

#: Schema version stamped on every record (bump on incompatible change).
TRACE_SCHEMA_VERSION = 1

#: Default ring capacity (records, not bytes).
DEFAULT_TRACE_CAPACITY = 4096

#: Record phases.
PHASES = ("begin", "end", "event", "meta")


class _NullSpan:
    """The shared span returned by a disabled tracer — a pure no-op."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def note(self, **fields):
        """Ignore attached fields (the enabled variant records them)."""


NULL_SPAN = _NullSpan()


class Span:
    """One open span: emits *begin* on ``__enter__``, *end* on ``__exit__``.

    ``note(**fields)`` attaches fields after the fact; they ride the end
    record (e.g. result sizes known only when the operation finishes).
    """

    __slots__ = ("_tracer", "kind", "span_id", "parent_id", "fields",
                 "_started")

    def __init__(self, tracer, kind, parent_id, fields):
        self._tracer = tracer
        self.kind = kind
        self.span_id = tracer._next_span_id()
        self.parent_id = parent_id
        self.fields = fields
        self._started = None

    def note(self, **fields):
        self.fields.update(fields)

    def __enter__(self):
        tracer = self._tracer
        self._started = tracer._now()
        tracer._push(self)
        tracer._emit(self.kind, "begin", self.span_id, self.parent_id,
                     dict(self.fields), None)
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self._tracer
        duration = tracer._now() - self._started
        if exc_type is not None:
            self.fields["error"] = exc_type.__name__
        tracer._pop(self)
        tracer._emit(self.kind, "end", self.span_id, self.parent_id,
                     dict(self.fields), duration)
        return False


class Tracer:
    """A bounded-ring structured-event recorder.

    ``capacity`` bounds resident records; when full, the oldest record is
    overwritten and ``dropped`` incremented.  ``enabled`` gates every
    entry point: a disabled tracer's :meth:`span` returns the shared
    :data:`NULL_SPAN` and :meth:`event` returns immediately.

    Timestamps (``ts``) are seconds since the tracer was created, from a
    monotonic clock — stable across records, meaningless across tracers.
    The span stack is thread-local (each thread nests its own spans); the
    ring itself is guarded by a lock so concurrent emitters interleave
    safely.
    """

    def __init__(self, capacity=DEFAULT_TRACE_CAPACITY, enabled=True):
        if capacity < 1:
            raise ValueError("tracer capacity must be at least 1")
        self.capacity = capacity
        self.enabled = enabled
        self.dropped = 0
        self.emitted = 0
        self._epoch = time.monotonic()
        self._ring = []
        self._write = 0          # next overwrite slot once the ring is full
        self._span_counter = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording -----------------------------------------------------------

    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def span(self, kind, **fields):
        """A nested span context manager (or the null span when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, kind, self._current_span_id(), fields)

    def event(self, kind, **fields):
        """A point event attached to the innermost open span."""
        if not self.enabled:
            return
        self._emit(kind, "event", None, self._current_span_id(), fields,
                   None)

    # -- ring access ---------------------------------------------------------

    def records(self):
        """The resident records, oldest first (list of dicts)."""
        with self._lock:
            if len(self._ring) < self.capacity:
                return list(self._ring)
            return self._ring[self._write:] + self._ring[:self._write]

    def clear(self):
        """Drop every record and reset the drop counter."""
        with self._lock:
            self._ring = []
            self._write = 0
            self.dropped = 0
            self.emitted = 0

    def __len__(self):
        return len(self._ring)

    def meta(self):
        """The ``trace-meta`` header record describing this export."""
        return {
            "v": TRACE_SCHEMA_VERSION,
            "kind": "trace-meta",
            "phase": "meta",
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
        }

    def export_jsonl(self, target=None):
        """Serialize the ring as JSONL: meta header, then records.

        ``target`` may be a path or a writable text file object; with no
        target the JSONL text is returned.
        """
        lines = [json.dumps(self.meta(), sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True)
                     for record in self.records())
        text = "\n".join(lines) + "\n"
        if target is None:
            return text
        if isinstance(target, (str, bytes)):
            with io.open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            target.write(text)
        return None

    # -- internals -----------------------------------------------------------

    def _now(self):
        return time.monotonic() - self._epoch

    def _next_span_id(self):
        with self._lock:
            self._span_counter += 1
            return self._span_counter

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_span_id(self):
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _push(self, span):
        self._stack().append(span)

    def _pop(self, span):
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits
            stack.remove(span)

    def _emit(self, kind, phase, span_id, parent_id, fields, duration):
        record = {
            "v": TRACE_SCHEMA_VERSION,
            "ts": round(self._now(), 9),
            "kind": kind,
            "phase": phase,
        }
        if span_id is not None:
            record["span"] = span_id
        if parent_id is not None:
            record["parent"] = parent_id
        if duration is not None:
            record["dur"] = round(duration, 9)
        if fields:
            record["fields"] = fields
        with self._lock:
            self.emitted += 1
            if len(self._ring) < self.capacity:
                self._ring.append(record)
            else:
                self._ring[self._write] = record
                self._write = (self._write + 1) % self.capacity
                self.dropped += 1


#: A module-level disabled tracer for call sites that want a never-None
#: default without paying for a ring.
NULL_TRACER = Tracer(capacity=1, enabled=False)
