"""A metrics registry: named counters, gauges and fixed-bucket histograms.

Before this module the system's counters were per-subsystem islands —
``BufferStats`` on the pool, ``IndexManagerStats`` on the handle cache,
``AdmissionStats`` on the controller, recovery and scrub reports on their
owners — each with its own field names and no single place to read them
all.  :class:`MetricsRegistry` is that place: one namespace of named
instruments plus *collectors* (pull callbacks that refresh gauges from the
existing stats objects at snapshot time), so the islands keep their cheap
in-place increments and the registry pays only at read time.

Three instrument kinds, Prometheus-shaped:

* :class:`Counter` — a monotonically increasing total (``inc``);
* :class:`Gauge` — a point-in-time value (``set``);
* :class:`Histogram` — observations bucketed by fixed upper edges
  (cumulative ``le`` semantics: an observation lands in every bucket
  whose edge is >= the value, plus the implicit ``+Inf``).

``snapshot()`` returns one plain dict (JSON-friendly);
``render_prometheus()`` emits the text exposition format, so a scrape
endpoint is one ``write()`` away.
"""

import math
import re
import threading

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default latency bucket edges in seconds (sub-millisecond to seconds).
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default logical page-I/O bucket edges (requests per query).
DEFAULT_PAGE_IO_BUCKETS = (4, 16, 64, 256, 1024, 4096, 16384, 65536)


class MetricsError(Exception):
    """Registry misuse: bad names, kind conflicts, bad bucket edges."""


class Counter:
    """A monotonically increasing total.

    Safe to increment from any thread: server worker threads bump the
    same query counters concurrently, and ``x += n`` on a plain attribute
    is not atomic under the interpreter.
    """

    kind = "counter"
    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        if amount < 0:
            raise MetricsError("counter %r cannot decrease" % self.name)
        with self._lock:
            self.value += amount

    def snapshot_value(self):
        return self.value


class Gauge:
    """A point-in-time value (settable both ways, thread-safe)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        with self._lock:
            self.value += amount

    def dec(self, amount=1):
        with self._lock:
            self.value -= amount

    def snapshot_value(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with cumulative ``le`` semantics.

    ``buckets`` are the finite upper edges, strictly ascending; an
    implicit ``+Inf`` bucket catches the rest.  ``bucket_counts`` are
    *per-bucket* (non-cumulative) counts, one per finite edge plus the
    overflow slot; ``cumulative()`` derives the Prometheus view.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count",
                 "_lock")

    def __init__(self, name, help="", buckets=DEFAULT_LATENCY_BUCKETS):
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise MetricsError("histogram %r needs at least one bucket"
                               % name)
        if any(earlier >= later
               for earlier, later in zip(edges, edges[1:])):
            raise MetricsError(
                "histogram %r bucket edges must be strictly ascending: %r"
                % (name, edges)
            )
        if any(math.isinf(edge) or math.isnan(edge) for edge in edges):
            raise MetricsError(
                "histogram %r edges must be finite (the +Inf bucket is "
                "implicit)" % name
            )
        self.name = name
        self.help = help
        self.buckets = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value):
        """Record one observation (``value <= edge`` lands in that bucket).

        Thread-safe: concurrent server workers observe into the same
        latency histograms.
        """
        with self._lock:
            self.sum += value
            self.count += 1
            for index, edge in enumerate(self.buckets):
                if value <= edge:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    def cumulative(self):
        """``[(upper_edge, cumulative_count), ...]`` ending with +Inf."""
        running = 0
        out = []
        for edge, count in zip(self.buckets, self.bucket_counts):
            running += count
            out.append((edge, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def quantile(self, q):
        """Estimate the ``q``-quantile (``0 < q <= 1``) by linear
        interpolation within the containing bucket — the standard
        Prometheus ``histogram_quantile`` estimate, computed locally.

        Returns None with no observations.  A quantile landing in the
        overflow (+Inf) bucket returns the largest finite edge — the
        honest answer is "at least this much".
        """
        if not 0.0 < q <= 1.0:
            raise MetricsError("quantile %r outside (0, 1]" % (q,))
        with self._lock:
            total = self.count
            if total == 0:
                return None
            rank = q * total
            running = 0
            lower = 0.0
            for edge, count in zip(self.buckets, self.bucket_counts):
                if count and running + count >= rank:
                    fraction = (rank - running) / count
                    return lower + (edge - lower) * fraction
                running += count
                lower = edge
            return self.buckets[-1]

    def snapshot_value(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": [[edge, count] for edge, count in self.cumulative()],
        }


class MetricsRegistry:
    """One namespace of instruments plus pull-time collectors.

    ``counter``/``gauge``/``histogram`` get-or-create by name (re-requesting
    an existing name returns the same instrument; a kind conflict raises).
    ``register_collector(fn)`` adds a callback invoked with the registry at
    the start of every :meth:`snapshot` / :meth:`render_prometheus`, which
    is how existing stats objects are absorbed without rewriting their
    increment sites.  :meth:`mirror` is the declarative form: a spec of
    ``(metric_name, stats_key, help)`` rows refreshed from one stats
    object, with each mirrored name **claimed** by its collector — two
    collectors claiming the same name is a wiring bug (one would silently
    overwrite the other at every snapshot) and raises.
    """

    def __init__(self):
        self._instruments = {}
        self._collectors = []
        self._owners = {}
        self._lock = threading.Lock()

    # -- instrument creation ---------------------------------------------------

    def _get_or_create(self, cls, name, help, **options):
        if not _NAME_RE.match(name or ""):
            raise MetricsError("invalid metric name %r" % (name,))
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is not None:
                if not isinstance(instrument, cls):
                    raise MetricsError(
                        "metric %r already registered as a %s"
                        % (name, instrument.kind)
                    )
                return instrument
            instrument = cls(name, help, **options)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name, help=""):
        return self._get_or_create(Counter, name, help)

    def gauge(self, name, help=""):
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name, help="", buckets=DEFAULT_LATENCY_BUCKETS):
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def register_collector(self, fn, owns=(), name=None):
        """Add a pull callback ``fn(registry)`` run before every snapshot.

        ``owns`` lists metric names this collector exclusively refreshes;
        a second collector claiming an owned name raises (see
        :meth:`claim`).  ``name`` labels the collector in ownership
        errors and :meth:`collector_owners`.
        """
        owner = name or getattr(fn, "__qualname__", repr(fn))
        for metric in owns:
            self.claim(metric, owner)
        self._collectors.append(fn)
        return fn

    def claim(self, metric_name, owner):
        """Record ``owner`` as the sole refresher of ``metric_name``.

        Idempotent for the same owner; a different owner raises
        :class:`MetricsError` — the hygiene guarantee behind "no metric
        is fed by two collectors".
        """
        with self._lock:
            holder = self._owners.setdefault(metric_name, owner)
        if holder != owner:
            raise MetricsError(
                "metric %r is already refreshed by collector %r "
                "(refusing a second claim by %r)"
                % (metric_name, holder, owner))

    def collector_owners(self):
        """``{metric_name: collector_name}`` for every claimed metric."""
        with self._lock:
            return dict(self._owners)

    def mirror(self, stats, spec, name=None):
        """Absorb a stats object into pull-refreshed gauges.

        ``stats`` is the object (or a zero-argument callable returning
        the object) whose attributes — or keys, when it is a dict — hold
        the live counters; ``spec`` is an iterable of
        ``(metric_name, stats_key, help)`` rows.  Creates one gauge per
        row, claims each name for this collector, and registers a
        collector copying ``stats`` into the gauges at snapshot time.
        Returns the collector function (useful for tests).
        """
        rows = [(metric, key, help_text) for metric, key, help_text in spec]
        gauges = {key: self.gauge(metric, help_text)
                  for metric, key, help_text in rows}
        getter = stats if callable(stats) else (lambda: stats)

        def refresh(_registry):
            source = getter()
            if isinstance(source, dict):
                for key, gauge in gauges.items():
                    gauge.set(source.get(key, 0))
            else:
                for key, gauge in gauges.items():
                    gauge.set(getattr(source, key))

        self.register_collector(
            refresh, owns=[metric for metric, _key, _help in rows],
            name=name or "mirror:%s" % rows[0][0])
        return refresh

    # -- reading ---------------------------------------------------------------

    def collect(self):
        """Run every registered collector (refreshing pull-based gauges)."""
        for fn in self._collectors:
            fn(self)

    def names(self):
        return sorted(self._instruments)

    def get(self, name):
        return self._instruments.get(name)

    def snapshot(self):
        """One plain dict: name → number (counter/gauge) or histogram dict."""
        self.collect()
        return {name: instrument.snapshot_value()
                for name, instrument in sorted(self._instruments.items())}

    def render_prometheus(self):
        """The text exposition format (one block per instrument)."""
        self.collect()
        lines = []
        for name, instrument in sorted(self._instruments.items()):
            if instrument.help:
                lines.append("# HELP %s %s" % (name, instrument.help))
            lines.append("# TYPE %s %s" % (name, instrument.kind))
            if instrument.kind == "histogram":
                for edge, count in instrument.cumulative():
                    label = "+Inf" if math.isinf(edge) else _format(edge)
                    lines.append('%s_bucket{le="%s"} %d'
                                 % (name, label, count))
                lines.append("%s_sum %s" % (name, _format(instrument.sum)))
                lines.append("%s_count %d" % (name, instrument.count))
            else:
                lines.append("%s %s" % (name, _format(instrument.value)))
        return "\n".join(lines) + "\n"


def _format(value):
    """Render a metric number without trailing float noise."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text):
    """Parse Prometheus text exposition into a structured dict.

    Returns ``{"samples": [(name, labels_dict, value), ...],
    "help": {name: help}, "type": {name: kind}}``.  Raises
    :class:`MetricsError` on a line that is neither a comment, blank,
    nor a well-formed sample — the shared parser behind the
    :mod:`repro.obs.aggregate` merger and the metric-hygiene lint.
    """
    samples = []
    helps = {}
    types = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):].split(None, 1)
            helps[rest[0]] = rest[1] if len(rest) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):].split(None, 1)
            types[rest[0]] = rest[1] if len(rest) > 1 else ""
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise MetricsError(
                "exposition line %d is not a valid sample: %r"
                % (number, line))
        labels = {}
        if match.group("labels"):
            labels = {key: value.replace('\\"', '"')
                      for key, value
                      in _LABEL_RE.findall(match.group("labels"))}
        raw = match.group("value")
        try:
            if raw in ("+Inf", "Inf"):
                value = float("inf")
            elif raw == "-Inf":
                value = float("-inf")
            elif raw == "NaN":
                value = float("nan")
            else:
                value = float(raw)
        except ValueError:
            raise MetricsError(
                "exposition line %d has a non-numeric value %r"
                % (number, raw))
        samples.append((match.group("name"), labels, value))
    return {"samples": samples, "help": helps, "type": types}
