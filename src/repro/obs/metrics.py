"""A metrics registry: named counters, gauges and fixed-bucket histograms.

Before this module the system's counters were per-subsystem islands —
``BufferStats`` on the pool, ``IndexManagerStats`` on the handle cache,
``AdmissionStats`` on the controller, recovery and scrub reports on their
owners — each with its own field names and no single place to read them
all.  :class:`MetricsRegistry` is that place: one namespace of named
instruments plus *collectors* (pull callbacks that refresh gauges from the
existing stats objects at snapshot time), so the islands keep their cheap
in-place increments and the registry pays only at read time.

Three instrument kinds, Prometheus-shaped:

* :class:`Counter` — a monotonically increasing total (``inc``);
* :class:`Gauge` — a point-in-time value (``set``);
* :class:`Histogram` — observations bucketed by fixed upper edges
  (cumulative ``le`` semantics: an observation lands in every bucket
  whose edge is >= the value, plus the implicit ``+Inf``).

``snapshot()`` returns one plain dict (JSON-friendly);
``render_prometheus()`` emits the text exposition format, so a scrape
endpoint is one ``write()`` away.
"""

import math
import re
import threading

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default latency bucket edges in seconds (sub-millisecond to seconds).
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default logical page-I/O bucket edges (requests per query).
DEFAULT_PAGE_IO_BUCKETS = (4, 16, 64, 256, 1024, 4096, 16384, 65536)


class MetricsError(Exception):
    """Registry misuse: bad names, kind conflicts, bad bucket edges."""


class Counter:
    """A monotonically increasing total.

    Safe to increment from any thread: server worker threads bump the
    same query counters concurrently, and ``x += n`` on a plain attribute
    is not atomic under the interpreter.
    """

    kind = "counter"
    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        if amount < 0:
            raise MetricsError("counter %r cannot decrease" % self.name)
        with self._lock:
            self.value += amount

    def snapshot_value(self):
        return self.value


class Gauge:
    """A point-in-time value (settable both ways, thread-safe)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        with self._lock:
            self.value += amount

    def dec(self, amount=1):
        with self._lock:
            self.value -= amount

    def snapshot_value(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with cumulative ``le`` semantics.

    ``buckets`` are the finite upper edges, strictly ascending; an
    implicit ``+Inf`` bucket catches the rest.  ``bucket_counts`` are
    *per-bucket* (non-cumulative) counts, one per finite edge plus the
    overflow slot; ``cumulative()`` derives the Prometheus view.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count",
                 "_lock")

    def __init__(self, name, help="", buckets=DEFAULT_LATENCY_BUCKETS):
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise MetricsError("histogram %r needs at least one bucket"
                               % name)
        if any(earlier >= later
               for earlier, later in zip(edges, edges[1:])):
            raise MetricsError(
                "histogram %r bucket edges must be strictly ascending: %r"
                % (name, edges)
            )
        if any(math.isinf(edge) or math.isnan(edge) for edge in edges):
            raise MetricsError(
                "histogram %r edges must be finite (the +Inf bucket is "
                "implicit)" % name
            )
        self.name = name
        self.help = help
        self.buckets = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value):
        """Record one observation (``value <= edge`` lands in that bucket).

        Thread-safe: concurrent server workers observe into the same
        latency histograms.
        """
        with self._lock:
            self.sum += value
            self.count += 1
            for index, edge in enumerate(self.buckets):
                if value <= edge:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    def cumulative(self):
        """``[(upper_edge, cumulative_count), ...]`` ending with +Inf."""
        running = 0
        out = []
        for edge, count in zip(self.buckets, self.bucket_counts):
            running += count
            out.append((edge, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def snapshot_value(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": [[edge, count] for edge, count in self.cumulative()],
        }


class MetricsRegistry:
    """One namespace of instruments plus pull-time collectors.

    ``counter``/``gauge``/``histogram`` get-or-create by name (re-requesting
    an existing name returns the same instrument; a kind conflict raises).
    ``register_collector(fn)`` adds a callback invoked with the registry at
    the start of every :meth:`snapshot` / :meth:`render_prometheus`, which
    is how existing stats objects are absorbed without rewriting their
    increment sites.
    """

    def __init__(self):
        self._instruments = {}
        self._collectors = []
        self._lock = threading.Lock()

    # -- instrument creation ---------------------------------------------------

    def _get_or_create(self, cls, name, help, **options):
        if not _NAME_RE.match(name or ""):
            raise MetricsError("invalid metric name %r" % (name,))
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is not None:
                if not isinstance(instrument, cls):
                    raise MetricsError(
                        "metric %r already registered as a %s"
                        % (name, instrument.kind)
                    )
                return instrument
            instrument = cls(name, help, **options)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name, help=""):
        return self._get_or_create(Counter, name, help)

    def gauge(self, name, help=""):
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name, help="", buckets=DEFAULT_LATENCY_BUCKETS):
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def register_collector(self, fn):
        """Add a pull callback ``fn(registry)`` run before every snapshot."""
        self._collectors.append(fn)
        return fn

    # -- reading ---------------------------------------------------------------

    def collect(self):
        """Run every registered collector (refreshing pull-based gauges)."""
        for fn in self._collectors:
            fn(self)

    def names(self):
        return sorted(self._instruments)

    def get(self, name):
        return self._instruments.get(name)

    def snapshot(self):
        """One plain dict: name → number (counter/gauge) or histogram dict."""
        self.collect()
        return {name: instrument.snapshot_value()
                for name, instrument in sorted(self._instruments.items())}

    def render_prometheus(self):
        """The text exposition format (one block per instrument)."""
        self.collect()
        lines = []
        for name, instrument in sorted(self._instruments.items()):
            if instrument.help:
                lines.append("# HELP %s %s" % (name, instrument.help))
            lines.append("# TYPE %s %s" % (name, instrument.kind))
            if instrument.kind == "histogram":
                for edge, count in instrument.cumulative():
                    label = "+Inf" if math.isinf(edge) else _format(edge)
                    lines.append('%s_bucket{le="%s"} %d'
                                 % (name, label, count))
                lines.append("%s_sum %s" % (name, _format(instrument.sum)))
                lines.append("%s_count %d" % (name, instrument.count))
            else:
                lines.append("%s %s" % (name, _format(instrument.value)))
        return "\n".join(lines) + "\n"


def _format(value):
    """Render a metric number without trailing float noise."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)
