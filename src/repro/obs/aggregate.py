"""Merge N per-node metric expositions into one node-labelled exposition.

Each node of a cluster exposes its own registry at ``/metrics`` (see
:mod:`repro.obs.ops`); this module is the scrape side::

    python -m repro.obs.aggregate node-0=http://127.0.0.1:9100 \\
                                  node-1=http://127.0.0.1:9101

fetches every endpoint and prints a single Prometheus text exposition in
which every sample carries a ``node="..."`` label, so one dashboard (or
one grep) sees the whole set: ``repro_cluster_epoch{node="node-0"}``
next to ``repro_net_server_requests{node="node-2"}``.  ``# HELP`` /
``# TYPE`` headers are emitted once per metric family (first node to
define one wins).

Also usable as a library: :func:`aggregate_expositions` merges already
fetched ``(node_name, exposition_text)`` pairs — what the in-process
tests and the CI smoke use — and :func:`scrape` fetches one endpoint.
"""

import sys
import urllib.error
import urllib.request

from repro.obs.metrics import parse_exposition

DEFAULT_TIMEOUT = 5.0


def _format_value(value):
    if value != value:                      # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels):
    return ",".join('%s="%s"' % (key, str(value).replace('"', '\\"'))
                    for key, value in labels)


def aggregate_expositions(named_texts):
    """Merge ``[(node_name, exposition_text), ...]`` into one exposition.

    Every sample gains a leading ``node`` label; HELP/TYPE comments are
    deduplicated per metric family.  Raises
    :class:`~repro.obs.metrics.MetricsError` on unparseable input.
    """
    helps = {}
    types = {}
    samples = []                 # (family, rendered_sample_line)
    for node, text in named_texts:
        parsed = parse_exposition(text)
        for name, help_text in parsed["help"].items():
            helps.setdefault(name, help_text)
        for name, kind in parsed["type"].items():
            types.setdefault(name, kind)
        for name, labels, value in parsed["samples"]:
            family = _family(name, types)
            merged = [("node", node)] + sorted(labels.items())
            samples.append((family, "%s{%s} %s" % (
                name, _render_labels(merged), _format_value(value))))

    lines = []
    seen_families = []
    for family, _line in samples:
        if family not in seen_families:
            seen_families.append(family)
    for family in seen_families:
        if family in helps:
            lines.append("# HELP %s %s" % (family, helps[family]))
        if family in types:
            lines.append("# TYPE %s %s" % (family, types[family]))
        lines.extend(line for fam, line in samples if fam == family)
    return "\n".join(lines) + "\n"


def _family(sample_name, types):
    """Map a histogram's ``_bucket``/``_sum``/``_count`` samples back to
    their family name so they group under one TYPE header."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if types.get(base) == "histogram":
                return base
    return sample_name


def scrape(url, timeout=DEFAULT_TIMEOUT):
    """Fetch one node's ``/metrics`` text (appends the path if the URL
    has none)."""
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.aggregate",
        description="Scrape N node /metrics endpoints and print one "
                    "node-labelled Prometheus exposition "
                    "(see docs/OBSERVABILITY.md).")
    parser.add_argument(
        "endpoints", nargs="+", metavar="NAME=URL",
        help="node endpoints as name=url (bare urls get node-N names)")
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT,
                        metavar="S", help="per-scrape timeout")
    parser.add_argument(
        "--skip-unreachable", action="store_true",
        help="warn and continue when a node cannot be scraped "
             "(default: fail)")
    args = parser.parse_args(argv)

    named = []
    for index, spec in enumerate(args.endpoints):
        if "=" in spec and not spec.split("=", 1)[0].startswith("http"):
            name, url = spec.split("=", 1)
        else:
            name, url = "node-%d" % index, spec
        named.append((name, url))

    texts = []
    for name, url in named:
        try:
            texts.append((name, scrape(url, timeout=args.timeout)))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print("aggregate: cannot scrape %s (%s): %s"
                  % (name, url, exc), file=sys.stderr)
            if not args.skip_unreachable:
                return 1
    if not texts:
        print("aggregate: no node could be scraped", file=sys.stderr)
        return 1
    sys.stdout.write(aggregate_expositions(texts))
    return 0


if __name__ == "__main__":
    sys.exit(main())
