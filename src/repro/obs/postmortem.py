"""Render a flight-recorder bundle as one merged, clock-aligned timeline.

A bundle (see :mod:`repro.obs.flight`) holds one ``trace.jsonl`` per
node, each timestamped on that node's private monotonic clock.  The v2
``trace-meta`` header carries ``wall_epoch`` — wall-clock seconds at
tracer creation — so every record can be placed on one shared axis::

    absolute = wall_epoch + ts

``python -m repro.obs.postmortem <bundle_dir>`` prints the merged
timeline (oldest first, relative to the first record), one line per
record with the emitting node, the trace id joining cross-node work,
and the span fields — the fence → elect → promote → rebuild chain of a
failover reads top to bottom across every node that took part, followed
by each backend's health-state transitions.

Library surface: :func:`load_bundle`, :func:`merge_timeline`,
:func:`render` — what the tests and CI smoke drive directly.
"""

import json
import os
import sys


def load_bundle(bundle_dir):
    """Read a bundle directory into one dict.

    Returns ``{"manifest": ..., "health": ... or None,
    "nodes": {node_id: {"meta": header, "records": [...]}}}``.
    Raises :class:`FileNotFoundError` on a directory without a
    manifest.
    """
    with open(os.path.join(bundle_dir, "manifest.json"),
              encoding="utf-8") as handle:
        manifest = json.load(handle)
    health = None
    health_path = os.path.join(bundle_dir, "health.json")
    if os.path.exists(health_path):
        with open(health_path, encoding="utf-8") as handle:
            health = json.load(handle)
    nodes = {}
    for node_id in manifest.get("nodes", []):
        trace_path = os.path.join(bundle_dir, node_id, "trace.jsonl")
        if not os.path.exists(trace_path):
            continue
        records = []
        with open(trace_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        meta = (records[0] if records
                and records[0].get("kind") == "trace-meta" else {})
        body = records[1:] if meta else records
        nodes[node_id] = {"meta": meta, "records": body}
    return {"manifest": manifest, "health": health, "nodes": nodes}


def merge_timeline(bundle):
    """Every node's records on one absolute axis, oldest first.

    Each returned record is a copy with ``abs`` (wall-clock seconds)
    and ``node`` (falling back to the bundle directory name when the
    record itself carries none) added.  Records from a v1 trace (no
    ``wall_epoch``) sort by their raw ``ts`` — aligned only with
    themselves.
    """
    merged = []
    for node_id, data in bundle["nodes"].items():
        epoch = data["meta"].get("wall_epoch", 0.0)
        for record in data["records"]:
            entry = dict(record)
            entry["abs"] = epoch + record.get("ts", 0.0)
            entry.setdefault("node", node_id)
            merged.append(entry)
    merged.sort(key=lambda entry: entry["abs"])
    return merged


def _fields_text(record):
    fields = record.get("fields") or {}
    parts = []
    if record.get("trace"):
        parts.append("trace=%s" % record["trace"])
    if record.get("attempt"):
        parts.append("attempt=%d" % record["attempt"])
    if record.get("dur") is not None:
        parts.append("dur=%.6fs" % record["dur"])
    parts.extend("%s=%s" % (key, fields[key]) for key in sorted(fields))
    return " ".join(parts)


def render(bundle, trace_id=None, limit=None):
    """The human-readable post-mortem text for one loaded bundle.

    ``trace_id`` restricts the timeline to one trace; ``limit`` keeps
    only the newest N records (the manifest and health sections always
    print in full).
    """
    manifest = bundle["manifest"]
    lines = []
    lines.append("== post-mortem: %s ==" % manifest.get("reason", "?"))
    for key in sorted(manifest):
        if key not in ("reason", "nodes"):
            lines.append("   %s: %s" % (key, manifest[key]))
    lines.append("   nodes: %s" % ", ".join(manifest.get("nodes", [])))

    merged = merge_timeline(bundle)
    if trace_id is not None:
        merged = [record for record in merged
                  if record.get("trace") == trace_id]
    total = len(merged)
    if limit is not None and total > limit:
        lines.append("   (showing newest %d of %d records)"
                     % (limit, total))
        merged = merged[-limit:]
    lines.append("")
    if merged:
        origin = merged[0]["abs"]
        width = max(len(record.get("node", "?")) for record in merged)
        for record in merged:
            lines.append("t+%10.6f  %-*s  %-24s %-5s %s" % (
                record["abs"] - origin, width, record.get("node", "?"),
                record.get("kind", "?"), record.get("phase", "?"),
                _fields_text(record)))
    else:
        lines.append("(no trace records)")

    health = bundle.get("health")
    if health:
        lines.append("")
        lines.append("-- backend health transitions --")
        for backend in sorted(health):
            entry = health[backend]
            lines.append("%s: state=%s failures=%s"
                         % (backend, entry.get("state"),
                            entry.get("failures")))
            for transition in entry.get("transitions", []):
                lines.append("    at=%.6f %s -> %s (%s)" % (
                    transition.get("at", 0.0), transition.get("from"),
                    transition.get("to"), transition.get("reason")))
    return "\n".join(lines) + "\n"


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.postmortem",
        description="Render a flight-recorder bundle as one merged, "
                    "clock-aligned failover timeline "
                    "(see docs/OBSERVABILITY.md).")
    parser.add_argument("bundle_dir", help="bundle directory to render")
    parser.add_argument("--trace", default=None, metavar="ID",
                        help="show only records of this trace id")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="show only the newest N records")
    args = parser.parse_args(argv)
    try:
        bundle = load_bundle(args.bundle_dir)
    except (OSError, ValueError) as exc:
        print("postmortem: cannot load %s: %s"
              % (args.bundle_dir, exc), file=sys.stderr)
        return 1
    sys.stdout.write(render(bundle, trace_id=args.trace,
                            limit=args.limit))
    return 0


if __name__ == "__main__":
    sys.exit(main())
