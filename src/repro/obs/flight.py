"""Failover flight recorder: a bounded on-disk ring of recent spans,
events and metrics snapshots, dumped as a post-mortem bundle on demand.

The in-memory :class:`~repro.obs.trace.Tracer` ring answers "what just
happened in this process *while it is still alive*".  A failover is the
opposite case: the interesting node is dying, the interesting window is
the seconds *before* the trigger, and the operator arrives after the
fact.  :class:`FlightRecorder` closes that gap:

* it attaches to a hub's tracer as a **sink** (every emitted record is
  appended to a rotating chunk file under ``<dir>/<node_id>/``), so
  recent history survives on disk continuously, bounded by
  ``chunk_records × max_chunks`` records per node — a ring of files
  instead of a ring of dicts;
* every ``snapshot_interval_seconds`` it also persists a full metrics
  snapshot, giving the post-mortem counter deltas around the incident;
* :func:`write_bundle` freezes the state of N recorders (plus the
  cluster's :class:`~repro.cluster.health.BackendHealth` transition
  logs) into one **bundle directory** — ``manifest.json``,
  ``health.json``, and per-node ``trace.jsonl`` / ``metrics.json`` —
  which ``python -m repro.obs.validate`` checks and
  ``python -m repro.obs.postmortem`` renders as a merged, clock-aligned
  timeline.

:meth:`~repro.cluster.replicaset.ReplicaSet` wires this in when given a
``flight_dir``: every failover (and every fatal backend error) triggers
a dump automatically.
"""

import io
import json
import os
import threading
import time

#: Records per chunk file before rotation.
DEFAULT_CHUNK_RECORDS = 512
#: Chunk files retained per node (the on-disk ring bound).
DEFAULT_MAX_CHUNKS = 8
#: Seconds between persisted metrics snapshots.
DEFAULT_SNAPSHOT_INTERVAL = 1.0


class _JsonlRing:
    """A bounded ring of rotating JSONL chunk files in one directory."""

    def __init__(self, directory, prefix, chunk_lines, max_chunks):
        self.directory = directory
        self.prefix = prefix
        self.chunk_lines = chunk_lines
        self.max_chunks = max_chunks
        self.dropped_chunks = 0
        self._sequence = 0
        self._lines_in_chunk = 0
        self._handle = None
        os.makedirs(directory, exist_ok=True)

    def _chunk_path(self, sequence):
        return os.path.join(self.directory,
                            "%s-%06d.jsonl" % (self.prefix, sequence))

    def append(self, obj):
        if self._handle is None or self._lines_in_chunk >= self.chunk_lines:
            self._rotate()
        self._handle.write(json.dumps(obj, sort_keys=True, default=str))
        self._handle.write("\n")
        self._lines_in_chunk += 1

    def _rotate(self):
        if self._handle is not None:
            self._handle.close()
        self._sequence += 1
        self._handle = io.open(self._chunk_path(self._sequence), "w",
                               encoding="utf-8")
        self._lines_in_chunk = 0
        stale = self._sequence - self.max_chunks
        if stale >= 1:
            try:
                os.remove(self._chunk_path(stale))
                self.dropped_chunks += 1
            except OSError:
                pass

    def flush(self):
        if self._handle is not None:
            self._handle.flush()

    def lines(self):
        """Every retained line, oldest chunk first."""
        self.flush()
        out = []
        first = max(1, self._sequence - self.max_chunks + 1)
        for sequence in range(first, self._sequence + 1):
            path = self._chunk_path(sequence)
            try:
                with io.open(path, "r", encoding="utf-8") as handle:
                    out.extend(line.rstrip("\n")
                               for line in handle if line.strip())
            except OSError:
                continue
        return out

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class FlightRecorder:
    """Continuously persist one hub's recent records and metrics.

    ``directory`` is the shared flight directory (each recorder writes
    under ``<directory>/<node_id>/``); ``observability`` is the hub
    whose tracer this recorder taps.  Recording starts immediately —
    provided the hub's tracer is *enabled*; the recorder never enables
    it itself (that cost decision stays with the owner).
    """

    def __init__(self, directory, node_id, observability,
                 chunk_records=DEFAULT_CHUNK_RECORDS,
                 max_chunks=DEFAULT_MAX_CHUNKS,
                 snapshot_interval_seconds=DEFAULT_SNAPSHOT_INTERVAL):
        self.directory = directory
        self.node_id = node_id
        self.observability = observability
        self.snapshot_interval_seconds = snapshot_interval_seconds
        node_dir = os.path.join(directory, node_id)
        self._traces = _JsonlRing(node_dir, "trace", chunk_records,
                                  max_chunks)
        self._metrics = _JsonlRing(node_dir, "metrics",
                                   max(8, chunk_records // 8), 2)
        self._last_snapshot = 0.0
        self._lock = threading.Lock()
        self._closed = False
        observability.tracer.add_sink(self._on_record)

    # -- the tracer sink -----------------------------------------------------

    def _on_record(self, record):
        with self._lock:
            if self._closed:
                return
            self._traces.append(record)
            now = time.time()
            if now - self._last_snapshot >= self.snapshot_interval_seconds:
                self._last_snapshot = now
                try:
                    snapshot = self.observability.metrics.snapshot()
                except Exception:
                    return
                self._metrics.append({"wall": round(now, 6),
                                      "snapshot": snapshot})

    # -- reading/dumping -----------------------------------------------------

    def trace_jsonl(self):
        """The retained records as schema-valid JSONL (meta header
        first), ready for ``python -m repro.obs.validate``.

        Records are re-sorted by ``ts`` before export: sinks run
        outside the tracer's ring lock, so two racing emitters may land
        in the chunk files microseconds out of order.
        """
        with self._lock:
            meta = dict(self.observability.tracer.meta())
            meta["flight_chunks_dropped"] = self._traces.dropped_chunks
            # A flight capture is taken while the node runs: spans may
            # still be open and old chunks may have rotated away, so the
            # validator must not demand begin/end pairing.
            meta["live"] = True
            raw = self._traces.lines()
        records = []
        for line in raw:
            try:
                records.append(json.loads(line))
            except ValueError:
                continue   # a torn line from a crashed writer
        records.sort(key=lambda record: record.get("ts", 0.0))
        lines = [json.dumps(meta, sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True)
                     for record in records)
        return "\n".join(lines) + "\n"

    def metrics_history(self):
        """The persisted ``{"wall", "snapshot"}`` entries, oldest first."""
        with self._lock:
            return [json.loads(line) for line in self._metrics.lines()]

    def dump_into(self, bundle_dir):
        """Write this node's ``trace.jsonl`` and ``metrics.json`` into
        ``bundle_dir/<node_id>/``; returns the node directory."""
        node_dir = os.path.join(bundle_dir, self.node_id)
        os.makedirs(node_dir, exist_ok=True)
        with io.open(os.path.join(node_dir, "trace.jsonl"), "w",
                     encoding="utf-8") as handle:
            handle.write(self.trace_jsonl())
        payload = {
            "node": self.node_id,
            "current": self.observability.metrics.snapshot(),
            "history": self.metrics_history(),
        }
        with io.open(os.path.join(node_dir, "metrics.json"), "w",
                     encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2,
                      default=str)
        return node_dir

    def close(self):
        """Detach from the tracer and close the chunk files."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._traces.close()
            self._metrics.close()
        self.observability.tracer.remove_sink(self._on_record)


def write_bundle(bundle_dir, recorders, reason, health=None,
                 manifest_extra=None):
    """Freeze ``recorders`` into a post-mortem bundle directory.

    ``health`` maps backend id → a dict with at least ``state`` and
    ``transitions`` (what :class:`~repro.cluster.health.BackendHealth`
    exposes); ``manifest_extra`` merges extra keys (epoch, elected
    node, ...) into ``manifest.json``.  Returns ``bundle_dir``.
    """
    os.makedirs(bundle_dir, exist_ok=True)
    nodes = []
    for recorder in recorders:
        recorder.dump_into(bundle_dir)
        nodes.append(recorder.node_id)
    manifest = {
        "reason": str(reason),
        "wall_time": round(time.time(), 6),
        "nodes": nodes,
    }
    if manifest_extra:
        manifest.update(manifest_extra)
    with io.open(os.path.join(bundle_dir, "manifest.json"), "w",
                 encoding="utf-8") as handle:
        json.dump(manifest, handle, sort_keys=True, indent=2, default=str)
    if health is not None:
        with io.open(os.path.join(bundle_dir, "health.json"), "w",
                     encoding="utf-8") as handle:
            json.dump(health, handle, sort_keys=True, indent=2,
                      default=str)
    return bundle_dir
