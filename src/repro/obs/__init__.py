"""Unified observability: tracing, metrics, and query profiles.

Three pillars, one subsystem (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — a low-overhead structured :class:`Tracer`
  (query → plan → join operator → index op → page fetch spans/events) in a
  bounded ring with JSONL export;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms with a Prometheus-style exposition;
* :mod:`repro.obs.profile` — per-query :class:`QueryProfile` actuals
  behind ``EXPLAIN ANALYZE``.

:class:`Observability` is the per-database hub wiring the three together:
it owns one tracer (disabled by default — the hot path pays a predicate
check), one registry pre-seeded with the query-level instruments, and a
bounded slow-query log fed by :meth:`Observability.observe_query`, which
the query engine calls once per evaluation.

The cluster-wide plane builds on the hubs:

* :mod:`repro.obs.ops` — per-node ``/metrics`` / ``/healthz`` / ``/varz``
  HTTP endpoints (:class:`OpsServer`), merged across nodes by
  ``python -m repro.obs.aggregate``;
* :func:`trace_context` / :func:`new_trace_id` — a thread-local trace id
  (plus attempt number and cross-node parent link) stamped onto every
  record any tracer emits while the context is active, carried across
  processes by the ``repro.net`` v2 frame protocol;
* :mod:`repro.obs.flight` — the :class:`FlightRecorder` bounded on-disk
  ring, dumped into post-mortem bundles on failover and rendered by
  ``python -m repro.obs.postmortem``.
"""

import time
from collections import deque

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_PAGE_IO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.profile import OperatorProfile, QueryProfile
from repro.obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    NULL_SPAN,
    NULL_TRACER,
    SUPPORTED_SCHEMA_VERSIONS,
    TRACE_SCHEMA_VERSION,
    Tracer,
    current_trace_id,
    new_trace_id,
    trace_context,
)

#: Slow-query log entries kept (oldest evicted first).
DEFAULT_SLOW_LOG_CAPACITY = 128


class Observability:
    """One database's tracer, metrics registry and slow-query log.

    ``slow_query_seconds`` is the slow-log threshold (None disables the
    log; ``0.0`` logs every query).  The tracer starts disabled; call
    ``hub.tracer.enable()`` (or pass an enabled one) to start recording.
    ``node_id`` names this hub in cluster-wide output: it is stamped on
    every trace record (schema v2) and identifies the node in flight
    bundles and aggregated metrics.
    """

    def __init__(self, tracer=None, metrics=None, slow_query_seconds=None,
                 slow_query_capacity=DEFAULT_SLOW_LOG_CAPACITY,
                 node_id=None):
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if node_id is not None:
            self.tracer.node_id = node_id
        self.slow_query_seconds = slow_query_seconds
        self._slow_queries = deque(maxlen=slow_query_capacity)
        m = self.metrics
        self._queries = m.counter(
            "repro_queries_total", "Queries evaluated")
        self._errors = m.counter(
            "repro_query_errors_total", "Queries that raised")
        self._degraded = m.counter(
            "repro_queries_degraded_total",
            "Queries completed on the degraded (stack-tree) plan")
        self._rows = m.counter(
            "repro_query_rows_total", "Result rows returned")
        self._slow = m.counter(
            "repro_slow_queries_total", "Queries over the slow threshold")
        self._seconds = m.histogram(
            "repro_query_seconds", "Query wall time (seconds)",
            buckets=DEFAULT_LATENCY_BUCKETS)
        self._pages = m.histogram(
            "repro_query_pages",
            "Logical page requests (hits + misses) per query",
            buckets=DEFAULT_PAGE_IO_BUCKETS)

    # -- feeding ---------------------------------------------------------------

    def observe_query(self, path, seconds, pages, rows, degraded=False,
                      error=None):
        """Record one finished (or failed) query evaluation."""
        self._queries.inc()
        if error is not None:
            self._errors.inc()
        if degraded:
            self._degraded.inc()
        self._rows.inc(rows)
        self._seconds.observe(seconds)
        self._pages.observe(pages)
        threshold = self.slow_query_seconds
        if threshold is not None and seconds >= threshold:
            self._slow.inc()
            self._slow_queries.append({
                "path": str(path),
                "seconds": seconds,
                "pages": pages,
                "rows": rows,
                "degraded": degraded,
                "error": error,
                "p99_seconds": self._seconds.quantile(0.99),
                "logged_at": time.time(),
            })

    # -- reading ---------------------------------------------------------------

    @property
    def node_id(self):
        """This hub's cluster-wide node name (None for standalone use)."""
        return self.tracer.node_id

    def query_quantiles(self):
        """Estimated p50/p95/p99 query latency from the histogram buckets.

        Values are ``None`` until at least one query has been observed.
        """
        return {
            "p50_seconds": self._seconds.quantile(0.50),
            "p95_seconds": self._seconds.quantile(0.95),
            "p99_seconds": self._seconds.quantile(0.99),
        }

    def slow_queries(self):
        """The retained slow-query entries, oldest first (list of dicts)."""
        return list(self._slow_queries)

    def snapshot(self):
        """The registry snapshot (collectors refreshed)."""
        return self.metrics.snapshot()

    def render_prometheus(self):
        return self.metrics.render_prometheus()


from repro.obs.flight import FlightRecorder      # noqa: E402
from repro.obs.metrics import parse_exposition   # noqa: E402
from repro.obs.ops import OpsError, OpsServer    # noqa: E402

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_PAGE_IO_BUCKETS",
    "DEFAULT_SLOW_LOG_CAPACITY",
    "DEFAULT_TRACE_CAPACITY",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "Observability",
    "OperatorProfile",
    "OpsError",
    "OpsServer",
    "QueryProfile",
    "SUPPORTED_SCHEMA_VERSIONS",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "current_trace_id",
    "new_trace_id",
    "parse_exposition",
    "trace_context",
]
