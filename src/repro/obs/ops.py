"""Per-node ops endpoints: ``/metrics``, ``/healthz`` and ``/varz`` over
stdlib ``http.server``.

Every node of a cluster — an :class:`~repro.core.database.XmlDatabase`,
a :class:`~repro.server.Server`, a whole
:class:`~repro.cluster.replicaset.ReplicaSet`, or a
:class:`~repro.net.server.SegmentServer` — can be fronted by one
:class:`OpsServer`, giving operators the same three URLs everywhere:

* ``/metrics`` — the node's Prometheus text exposition (what
  :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus` emits);
* ``/healthz`` — a JSON liveness/health summary, status **200** when
  the node can serve and **503** when it cannot (a fenced primary, a
  stopped server, a set with no writable primary);
* ``/varz`` — the node's full stats snapshot as JSON (``db.stats()``,
  ``replica_set.status()``, server/transport counters).

The server is deliberately tiny: a ``ThreadingHTTPServer`` on a daemon
thread, no routing framework, no dependency beyond the standard
library.  ``port=0`` binds an ephemeral port; read :attr:`address`
after :meth:`start`.  N nodes' ``/metrics`` pages merge into one
node-labelled exposition with :mod:`repro.obs.aggregate`.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


class OpsError(Exception):
    """Ops endpoint misuse (unsupported target, server not started)."""


class _Adapter:
    """Resolve any supported target into the three endpoint callables."""

    def __init__(self, target):
        self.target = target

    # -- duck-typed target detection ----------------------------------------

    @property
    def _kind(self):
        target = self.target
        if hasattr(target, "read_candidates") and hasattr(target, "status"):
            return "replicaset"
        if hasattr(target, "stats") and callable(getattr(target, "stats")) \
                and hasattr(target, "ping"):
            return "database"
        if hasattr(target, "submit") and hasattr(target, "running"):
            return "server"
        if hasattr(target, "archive_dir"):
            return "segmentserver"
        raise OpsError("unsupported ops target %r" % (target,))

    def _observability(self):
        hub = getattr(self.target, "observability", None)
        if hub is None:
            raise OpsError(
                "target %r has no observability hub attached"
                % (self.target,))
        return hub

    # -- the three endpoints -------------------------------------------------

    def metrics_text(self):
        return self._observability().render_prometheus()

    def healthz(self):
        """``(ok, body_dict)`` for this node."""
        kind = self._kind
        target = self.target
        if kind == "replicaset":
            status = target.status()
            primary = status.get("primary")
            ok = primary is not None and not target.closed
            body = {
                "ok": ok,
                "role": "replicaset",
                "epoch": status["epoch"],
                "primary": primary,
                "acked_sequence": status["acked_sequence"],
                "backends": [
                    {"id": b["id"], "role": b["role"],
                     "state": b.get("state"), "lag": b["lag"]}
                    for b in status["backends"]
                ],
            }
            return ok, body
        if kind == "database":
            try:
                sequence = target.ping()
                return True, {"ok": True, "role": "database",
                              "commit_sequence": sequence}
            except BaseException as exc:
                return False, {"ok": False, "role": "database",
                               "error": str(exc)}
        if kind == "server":
            ok = bool(target.running)
            return ok, {"ok": ok, "role": "server",
                        "stats": target.stats.as_dict()}
        ok = bool(target.running)
        return ok, {"ok": ok, "role": "segmentserver",
                    "archive_dir": str(target.archive_dir)}

    def varz(self):
        kind = self._kind
        target = self.target
        if kind == "replicaset":
            return target.status()
        if kind == "database":
            return target.stats()
        if kind == "server":
            return target.stats.as_dict()
        return target.stats.snapshot()


class _Handler(BaseHTTPRequestHandler):
    # The adapter is attached per-server via a subclass attribute.
    adapter = None
    server_version = "repro-ops/1"

    def do_GET(self):
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self.adapter.metrics_text().encode("utf-8")
                self._reply(200, body,
                            "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/healthz":
                ok, payload = self.adapter.healthz()
                body = (json.dumps(payload, sort_keys=True, default=str)
                        + "\n").encode("utf-8")
                self._reply(200 if ok else 503, body, "application/json")
            elif path == "/varz":
                body = (json.dumps(self.adapter.varz(), sort_keys=True,
                                   default=str) + "\n").encode("utf-8")
                self._reply(200, body, "application/json")
            else:
                self._reply(404, b'{"error": "not found"}\n',
                            "application/json")
        except BrokenPipeError:
            pass
        except BaseException as exc:
            # An endpoint must answer even when the node is mid-failure:
            # a scrape error becomes a 500, never a hung connection.
            try:
                body = (json.dumps({"error": str(exc)}) + "\n").encode(
                    "utf-8")
                self._reply(500, body, "application/json")
            except OSError:
                pass

    def _reply(self, code, body, content_type):
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):
        """Silence per-request stderr logging."""


class OpsServer:
    """Serve ``/metrics``, ``/healthz`` and ``/varz`` for one target.

    ``target`` is any of the supported node types (database, server,
    replica set, segment server); the right health and stats surfaces
    are resolved by duck typing.  The HTTP listener runs on a daemon
    thread and binds ``host:port`` (``port=0`` picks an ephemeral one).
    """

    def __init__(self, target, host="127.0.0.1", port=0):
        self.target = target
        self.host = host
        self.port = port
        self._adapter = _Adapter(target)
        self._adapter._kind  # fail fast on unsupported targets
        self._httpd = None
        self._thread = None

    @property
    def address(self):
        """``(host, port)`` the endpoint is bound to (after start)."""
        if self._httpd is None:
            raise OpsError("ops server is not started")
        return self._httpd.server_address[:2]

    @property
    def url(self):
        host, port = self.address
        return "http://%s:%d" % (host, port)

    @property
    def running(self):
        return self._httpd is not None

    def start(self):
        if self._httpd is not None:
            return self
        handler = type("_BoundHandler", (_Handler,),
                       {"adapter": self._adapter})
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-ops", daemon=True)
        self._thread.start()
        return self

    def stop(self):
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()

    def __repr__(self):
        where = ("%s:%d" % self.address if self.running
                 else "%s:%d (stopped)" % (self.host, self.port))
        return "OpsServer(%s, target=%r)" % (where, type(self.target).__name__)
