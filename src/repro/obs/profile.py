"""Per-query execution profiles: actual cost per operator, EXPLAIN ANALYZE.

The paper's headline comparison (Section 6.1) is *elements scanned versus
elements skipped*: XR-stack wins precisely because its index probes let it
leap over elements the merge baselines must touch.  A
:class:`QueryProfile` makes that measurable per query: the engine (and any
other join driver) wraps each operator in :meth:`QueryProfile.operator`,
which captures the deltas of the shared
:class:`~repro.joins.base.JoinStats` counters and the buffer pool's
logical page accounting across the operator's run — wall time, elements
scanned, output pairs, logical page requests (hits + misses), stab-list
pages read, and the XR-stack/B+ skip-probe counts.

``elements_skipped`` is derived per operator as
``max(0, input_a + input_d - elements_scanned)``: the entries present in
the operator's inputs that the join never examined.  It is a floor — index
probes charge each *produced* element to the scan counter, so an element
can be counted without being merged past — but a positive value is always
real skipping.

Profiles thread through the runtime: ``QueryContext(profile=...)`` (or
setting ``runtime.profile``) arms every join loop the context governs.
``PathQueryEngine.explain(path, analyze=True)`` runs the query with a
fresh profile and renders estimated-vs-actual side by side — the
EXPLAIN ANALYZE of this system.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class OperatorProfile:
    """Actual measured cost of one executed operator.

    ``kind`` groups operators for rendering: ``"scan"`` (first-step element
    fetch), ``"join"`` (a forward structural join), ``"probe"`` (a reverse
    FindAncestors step), ``"semi-join"`` / ``"filter"`` (predicates) and
    ``"holistic"`` (PathStack/TwigStack single-pass runs).  ``tag`` names
    the index the operator probes (its descendant/target side), which is
    what ``pages_by_index`` aggregates on.
    """

    name: str
    kind: str = "join"
    algorithm: str = ""
    tag: str = ""
    input_a: int = 0
    input_d: int = 0
    rows_out: int = 0
    wall_seconds: float = 0.0
    elements_scanned: int = 0
    pairs: int = 0
    page_requests: int = 0
    page_hits: int = 0
    page_misses: int = 0
    stab_pages: int = 0
    ancestor_skips: int = 0
    descendant_skips: int = 0
    est_pairs: float = None

    @property
    def elements_skipped(self):
        """Input entries the operator provably never examined (floor).

        Meaningful only for join-family operators; scans and value
        filters touch every input without charging the scan counter, so
        they report 0 rather than a spurious full-input skip.
        """
        if self.kind in ("scan", "filter"):
            return 0
        return max(0, self.input_a + self.input_d - self.elements_scanned)

    @property
    def skip_probes(self):
        return self.ancestor_skips + self.descendant_skips

    def to_dict(self):
        out = {
            "name": self.name,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "tag": self.tag,
            "input_a": self.input_a,
            "input_d": self.input_d,
            "rows_out": self.rows_out,
            "wall_seconds": self.wall_seconds,
            "elements_scanned": self.elements_scanned,
            "elements_skipped": self.elements_skipped,
            "pairs": self.pairs,
            "page_requests": self.page_requests,
            "page_hits": self.page_hits,
            "page_misses": self.page_misses,
            "stab_pages": self.stab_pages,
            "ancestor_skips": self.ancestor_skips,
            "descendant_skips": self.descendant_skips,
        }
        if self.est_pairs is not None:
            out["est_pairs"] = self.est_pairs
        return out

    def describe(self):
        parts = [
            "%d rows" % self.rows_out,
            "%d pairs" % self.pairs,
            "%d scanned" % self.elements_scanned,
        ]
        if self.elements_skipped:
            parts.append("%d skipped" % self.elements_skipped)
        parts.append("%d pages (%d hits + %d misses)"
                     % (self.page_requests, self.page_hits,
                        self.page_misses))
        if self.stab_pages:
            parts.append("%d stab pages" % self.stab_pages)
        if self.skip_probes:
            parts.append("skip probes a=%d d=%d"
                         % (self.ancestor_skips, self.descendant_skips))
        parts.append("%.3f ms" % (self.wall_seconds * 1e3))
        return ", ".join(parts)


class QueryProfile:
    """The actual execution cost of one query, operator by operator.

    Created empty, filled by instrumented join drivers via
    :meth:`operator`, stamped with query-level totals by the engine.
    Accumulates across a degradation retry (the retried operators simply
    append; ``degraded`` marks the profile).
    """

    def __init__(self, path="", strategy=""):
        self.path = path
        self.strategy = strategy
        self.operators = []
        self.wall_seconds = 0.0
        self.page_requests = 0
        self.page_hits = 0
        self.page_misses = 0
        self.rows = 0
        self.degraded = False

    # -- recording -------------------------------------------------------------

    @contextmanager
    def operator(self, name, kind="join", algorithm="", tag="",
                 input_a=0, input_d=0, stats=None, pool=None):
        """Measure one operator: yields its :class:`OperatorProfile`.

        ``stats`` is the run's shared :class:`~repro.joins.base.JoinStats`
        (deltas of its counters are attributed to this operator); ``pool``
        the buffer pool whose logical requests the operator charges.  The
        caller sets ``rows_out`` (and anything else) on the yielded object
        before the block exits.
        """
        op = OperatorProfile(name=name, kind=kind, algorithm=algorithm,
                             tag=tag, input_a=input_a, input_d=input_d)
        base = _CounterBase(stats, pool)
        started = time.perf_counter()
        try:
            yield op
        finally:
            op.wall_seconds = time.perf_counter() - started
            base.charge(op)
            self.operators.append(op)

    # -- aggregation -----------------------------------------------------------

    def total(self, attribute):
        """Sum one numeric attribute over every recorded operator."""
        return sum(getattr(op, attribute) for op in self.operators)

    @property
    def elements_scanned(self):
        return self.total("elements_scanned")

    @property
    def elements_skipped(self):
        return self.total("elements_skipped")

    @property
    def stab_pages(self):
        return self.total("stab_pages")

    def pages_by_index(self):
        """Logical page requests aggregated by the probed index's tag."""
        out = {}
        for op in self.operators:
            key = op.tag or op.name
            out[key] = out.get(key, 0) + op.page_requests
        return out

    def to_dict(self):
        return {
            "path": self.path,
            "strategy": self.strategy,
            "degraded": self.degraded,
            "wall_seconds": self.wall_seconds,
            "page_requests": self.page_requests,
            "page_hits": self.page_hits,
            "page_misses": self.page_misses,
            "rows": self.rows,
            "elements_scanned": self.elements_scanned,
            "elements_skipped": self.elements_skipped,
            "stab_pages": self.stab_pages,
            "pages_by_index": self.pages_by_index(),
            "operators": [op.to_dict() for op in self.operators],
        }

    def render(self):
        """A human-readable actuals report (the ANALYZE half of EXPLAIN)."""
        header = "profile for %s (strategy=%s%s)" % (
            self.path, self.strategy,
            ", degraded" if self.degraded else "",
        )
        lines = [header]
        for op in self.operators:
            actual = op.describe()
            if op.est_pairs is not None:
                actual = "est ~%d pairs -> %s" % (round(op.est_pairs),
                                                  actual)
            lines.append("  %-36s %s" % (op.name, actual))
        lines.append(
            "  total: %d rows, %d pages (%d hits + %d misses), "
            "%d scanned, %d skipped, %.3f ms"
            % (self.rows, self.page_requests, self.page_hits,
               self.page_misses, self.elements_scanned,
               self.elements_skipped, self.wall_seconds * 1e3)
        )
        return "\n".join(lines)


class _CounterBase:
    """Baselines of the shared counters at operator start."""

    __slots__ = ("stats", "pool", "scanned", "pairs", "stab", "a_skips",
                 "d_skips", "hits", "misses")

    def __init__(self, stats, pool):
        self.stats = stats
        self.pool = pool
        if stats is not None:
            self.scanned = stats.elements_scanned
            self.pairs = stats.pairs
            self.stab = stats.stab_pages
            self.a_skips = stats.ancestor_skips
            self.d_skips = stats.descendant_skips
        if pool is not None:
            self.hits = pool.stats.hits
            self.misses = pool.stats.misses

    def charge(self, op):
        if self.stats is not None:
            op.elements_scanned = self.stats.elements_scanned - self.scanned
            op.pairs = self.stats.pairs - self.pairs
            op.stab_pages = self.stats.stab_pages - self.stab
            op.ancestor_skips = self.stats.ancestor_skips - self.a_skips
            op.descendant_skips = self.stats.descendant_skips - self.d_skips
        if self.pool is not None:
            op.page_hits = self.pool.stats.hits - self.hits
            op.page_misses = self.pool.stats.misses - self.misses
            op.page_requests = op.page_hits + op.page_misses
