"""Fault injection for the storage substrate: crashes, torn writes, bit rot.

:class:`FaultInjectingDisk` wraps any :class:`~repro.storage.disk.\
SimulatedDisk` and exposes the same page interface while letting tests

* **kill a run** at the N-th logical read / write / allocate, or — when a
  :class:`~repro.storage.disk.FileDisk` is wrapped — at the N-th *physical*
  page write (journal records, applies, superblock writes, in-place
  writes), which is where crash atomicity is actually decided;
* **tear the fatal write**: persist only a prefix of the page image before
  the kill, modelling a sector-level partial write;
* **flip bits** in persisted pages through the unaccounted ``peek``/``poke``
  hooks, modelling silent media corruption;
* **fail transiently**: ``fail_next(n, op)`` arms the wrapper to raise a
  retryable :class:`~repro.storage.errors.TransientIOError` for the next
  ``n`` operations of kind ``op`` and then succeed — the deterministic
  test surface for retry/backoff paths (replication apply, scrubber
  retries).  A transient failure does *not* kill the wrapper.

A kill raises :class:`CrashPoint` and leaves the wrapper *dead*: every
subsequent operation raises again, so ``finally`` blocks and context
managers cannot accidentally commit state on behalf of a process that is
supposed to have vanished.  ``CrashPoint`` deliberately does **not**
subclass :class:`~repro.storage.errors.StorageError` — error-collecting
code (e.g. ``IndexManager.flush``) must never swallow a simulated kill.
"""

from repro.storage.disk import FileDisk
from repro.storage.errors import TransientIOError

#: Operation names accepted as kill points.
LOGICAL_OPS = ("read", "write", "allocate")
PHYSICAL_OP = "physical-write"


class CrashPoint(Exception):
    """A simulated process kill injected by :class:`FaultInjectingDisk`."""


class FaultInjectingDisk:
    """A transparent disk wrapper that can die on cue.

    ``kill_after`` is the 1-based ordinal of the fatal operation of kind
    ``kill_op`` (one of ``"read"``, ``"write"``, ``"allocate"``,
    ``"physical-write"``); None never kills — the wrapper then just counts,
    which is how a sweep measures how many crash points a workload has.
    ``torn_bytes`` tears the fatal physical write: only that many bytes of
    the page image are persisted before the crash.
    """

    def __init__(self, inner, kill_after=None, kill_op=PHYSICAL_OP,
                 torn_bytes=None):
        if kill_op not in LOGICAL_OPS + (PHYSICAL_OP,):
            raise ValueError("unknown kill op %r" % kill_op)
        self.inner = inner
        self.kill_after = kill_after
        self.kill_op = kill_op
        self.torn_bytes = torn_bytes
        self.dead = False
        self.op_counts = {op: 0 for op in LOGICAL_OPS + (PHYSICAL_OP,)}
        self._transient = {}  # op -> remaining failures to inject
        self.transient_injected = 0
        if isinstance(inner, FileDisk):
            inner.fault_hook = self._on_physical_write

    # -- fault machinery -----------------------------------------------------

    def fail_next(self, n, op="read"):
        """Arm ``n`` transient failures for the next ``n`` ops of kind ``op``.

        Each affected operation raises
        :class:`~repro.storage.errors.TransientIOError` *instead of*
        executing (no partial effects); the (n+1)-th succeeds normally.
        Re-arming replaces the pending count for that op kind.
        """
        if op not in LOGICAL_OPS + (PHYSICAL_OP,):
            raise ValueError("unknown fail op %r" % op)
        if n < 0:
            raise ValueError("fail_next needs n >= 0")
        if n:
            self._transient[op] = n
        else:
            self._transient.pop(op, None)

    def _maybe_fail_transiently(self, op):
        remaining = self._transient.get(op)
        if remaining:
            if remaining == 1:
                del self._transient[op]
            else:
                self._transient[op] = remaining - 1
            self.transient_injected += 1
            raise TransientIOError(
                "injected transient failure at %s #%d"
                % (op, self.op_counts[op])
            )

    def _tick(self, op):
        if self.dead:
            raise CrashPoint("operation on a crashed disk")
        self.op_counts[op] += 1
        if (self.kill_after is not None and self.kill_op == op
                and self.op_counts[op] >= self.kill_after):
            self.dead = True
            raise CrashPoint(
                "killed at %s #%d" % (op, self.op_counts[op])
            )
        self._maybe_fail_transiently(op)

    def _on_physical_write(self, kind, page_id, data):
        """FileDisk hook: called before every physical page write.

        Returns ``(data, crash)``; the disk persists ``data`` (possibly a
        torn prefix) and raises :class:`CrashPoint` when ``crash`` is True.
        A pending transient failure raises ``TransientIOError`` before the
        write happens, leaving the disk untouched for the retry.
        """
        if self.dead:
            raise CrashPoint("physical write on a crashed disk")
        self.op_counts[PHYSICAL_OP] += 1
        if (self.kill_after is not None and self.kill_op == PHYSICAL_OP
                and self.op_counts[PHYSICAL_OP] >= self.kill_after):
            self.dead = True
            if self.torn_bytes is not None:
                data = bytes(data)[: self.torn_bytes]
            return data, True
        self._maybe_fail_transiently(PHYSICAL_OP)
        return data, False

    def crash_now(self):
        """Mark the disk dead immediately (without an operation trigger)."""
        self.dead = True

    def abort(self):
        """Release the wrapped disk's file descriptors without committing."""
        if hasattr(self.inner, "abort"):
            self.inner.abort()

    # -- corruption hooks ----------------------------------------------------

    def flip_bit(self, page_id, bit):
        """Flip one bit of a persisted page image (silent media corruption)."""
        raw = bytearray(self.inner.peek(page_id))
        raw[(bit // 8) % len(raw)] ^= 1 << (bit % 8)
        self.inner.poke(page_id, bytes(raw))

    def peek(self, page_id):
        return self.inner.peek(page_id)

    def poke(self, page_id, data):
        self.inner.poke(page_id, data)

    # -- the SimulatedDisk interface -----------------------------------------

    @property
    def page_size(self):
        return self.inner.page_size

    @property
    def stats(self):
        return self.inner.stats

    @property
    def allocated_page_count(self):
        return self.inner.allocated_page_count

    def allocate(self):
        self._tick("allocate")
        return self.inner.allocate()

    def free(self, page_id):
        if self.dead:
            raise CrashPoint("operation on a crashed disk")
        return self.inner.free(page_id)

    def read(self, page_id):
        self._tick("read")
        return self.inner.read(page_id)

    def write(self, page_id, data):
        self._tick("write")
        return self.inner.write(page_id, data)

    def sync(self):
        if self.dead:
            raise CrashPoint("operation on a crashed disk")
        sync = getattr(self.inner, "sync", None)
        if sync is not None:  # InMemoryDisk has no commit point
            return sync()
        return None

    def close(self):
        """Close the wrapped disk — without committing if it crashed."""
        if self.dead:
            self.abort()
        elif hasattr(self.inner, "close"):
            self.inner.close()

    def __getattr__(self, name):
        # Everything else (sync, close, closed, recovery_stats, ...)
        # passes straight through to the wrapped disk.
        return getattr(self.inner, name)
