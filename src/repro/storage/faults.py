"""Fault injection for the storage substrate: crashes, torn writes, bit rot.

:class:`FaultInjectingDisk` wraps any :class:`~repro.storage.disk.\
SimulatedDisk` and exposes the same page interface while letting tests

* **kill a run** at the N-th logical read / write / allocate, or — when a
  :class:`~repro.storage.disk.FileDisk` is wrapped — at the N-th *physical*
  page write (journal records, applies, superblock writes, in-place
  writes), which is where crash atomicity is actually decided;
* **tear the fatal write**: persist only a prefix of the page image before
  the kill, modelling a sector-level partial write;
* **flip bits** in persisted pages through the unaccounted ``peek``/``poke``
  hooks, modelling silent media corruption;
* **fail transiently**: ``fail_next(n, op)`` arms the wrapper to raise a
  retryable :class:`~repro.storage.errors.TransientIOError` for the next
  ``n`` operations of kind ``op`` and then succeed — the deterministic
  test surface for retry/backoff paths (replication apply, scrubber
  retries).  A transient failure does *not* kill the wrapper;
* **run out of space**: ``fail_with_disk_full(n, op)`` injects
  errno-accurate ``OSError(ENOSPC)`` for the next ``n`` operations
  (single-shot), while ``fill_disk()`` / ``free_space()`` model a volume
  that *stays* at capacity until space is reclaimed — the deterministic
  surface behind :class:`~repro.storage.errors.DiskFullError` and the
  read-only degradation ladder (``docs/STORAGE.md``).

A kill raises :class:`CrashPoint` and leaves the wrapper *dead*: every
subsequent operation raises again, so ``finally`` blocks and context
managers cannot accidentally commit state on behalf of a process that is
supposed to have vanished.  ``CrashPoint`` deliberately does **not**
subclass :class:`~repro.storage.errors.StorageError` — error-collecting
code (e.g. ``IndexManager.flush``) must never swallow a simulated kill.
"""

import errno
import os

from repro.storage.disk import FileDisk
from repro.storage.errors import TransientIOError

#: Operation names accepted as kill points.
LOGICAL_OPS = ("read", "write", "allocate")
PHYSICAL_OP = "physical-write"


class CrashPoint(Exception):
    """A simulated process kill injected by :class:`FaultInjectingDisk`."""


class FaultInjectingDisk:
    """A transparent disk wrapper that can die on cue.

    ``kill_after`` is the 1-based ordinal of the fatal operation of kind
    ``kill_op`` (one of ``"read"``, ``"write"``, ``"allocate"``,
    ``"physical-write"``); None never kills — the wrapper then just counts,
    which is how a sweep measures how many crash points a workload has.
    ``torn_bytes`` tears the fatal physical write: only that many bytes of
    the page image are persisted before the crash.
    """

    def __init__(self, inner, kill_after=None, kill_op=PHYSICAL_OP,
                 torn_bytes=None):
        if kill_op not in LOGICAL_OPS + (PHYSICAL_OP,):
            raise ValueError("unknown kill op %r" % kill_op)
        self.inner = inner
        self.kill_after = kill_after
        self.kill_op = kill_op
        self.torn_bytes = torn_bytes
        self.dead = False
        self.op_counts = {op: 0 for op in LOGICAL_OPS + (PHYSICAL_OP,)}
        self._transient = {}  # op -> remaining failures to inject
        self.transient_injected = 0
        self._enospc = {}     # op -> remaining single-shot ENOSPC faults
        self._disk_full = False   # sticky: full until free_space()
        self.enospc_injected = 0
        if isinstance(inner, FileDisk):
            inner.fault_hook = self._on_physical_write

    # -- fault machinery -----------------------------------------------------

    def fail_next(self, n, op="read"):
        """Arm ``n`` transient failures for the next ``n`` ops of kind ``op``.

        Each affected operation raises
        :class:`~repro.storage.errors.TransientIOError` *instead of*
        executing (no partial effects); the (n+1)-th succeeds normally.
        Re-arming replaces the pending count for that op kind.
        """
        if op not in LOGICAL_OPS + (PHYSICAL_OP,):
            raise ValueError("unknown fail op %r" % op)
        if n < 0:
            raise ValueError("fail_next needs n >= 0")
        if n:
            self._transient[op] = n
        else:
            self._transient.pop(op, None)

    def fail_with_disk_full(self, n=1, op=PHYSICAL_OP):
        """Arm ``n`` single-shot ENOSPC faults for the next ops of ``op``.

        Each affected operation raises an errno-accurate
        ``OSError(ENOSPC)`` *instead of* executing — no partial effects —
        and the (n+1)-th succeeds, modelling a volume that momentarily
        brushed its capacity (another writer freed space, a quota was
        raised).  Re-arming replaces the pending count.
        """
        if op not in LOGICAL_OPS + (PHYSICAL_OP,):
            raise ValueError("unknown fail op %r" % op)
        if n < 0:
            raise ValueError("fail_with_disk_full needs n >= 0")
        if n:
            self._enospc[op] = n
        else:
            self._enospc.pop(op, None)

    def fill_disk(self):
        """Sticky disk-full: every physical write raises ``ENOSPC`` until
        :meth:`free_space` clears it — the "volume stays at capacity"
        mode the read-only degradation ladder is tested against."""
        self._disk_full = True

    def free_space(self):
        """End a sticky :meth:`fill_disk` (and drop any pending
        single-shot ENOSPC faults): subsequent writes succeed."""
        self._disk_full = False
        self._enospc.clear()

    @property
    def disk_full(self):
        """Is the sticky disk-full mode currently armed?"""
        return self._disk_full

    def _raise_enospc(self, op):
        self.enospc_injected += 1
        raise OSError(
            errno.ENOSPC,
            "%s (injected at %s #%d)"
            % (os.strerror(errno.ENOSPC), op, self.op_counts[op]))

    def _maybe_fail_enospc(self, op):
        if self._disk_full and op == PHYSICAL_OP:
            self._raise_enospc(op)
        remaining = self._enospc.get(op)
        if remaining:
            if remaining == 1:
                del self._enospc[op]
            else:
                self._enospc[op] = remaining - 1
            self._raise_enospc(op)

    def _maybe_fail_transiently(self, op):
        remaining = self._transient.get(op)
        if remaining:
            if remaining == 1:
                del self._transient[op]
            else:
                self._transient[op] = remaining - 1
            self.transient_injected += 1
            raise TransientIOError(
                "injected transient failure at %s #%d"
                % (op, self.op_counts[op])
            )

    def _tick(self, op):
        if self.dead:
            raise CrashPoint("operation on a crashed disk")
        self.op_counts[op] += 1
        if (self.kill_after is not None and self.kill_op == op
                and self.op_counts[op] >= self.kill_after):
            self.dead = True
            raise CrashPoint(
                "killed at %s #%d" % (op, self.op_counts[op])
            )
        self._maybe_fail_transiently(op)
        self._maybe_fail_enospc(op)

    def _on_physical_write(self, kind, page_id, data):
        """FileDisk hook: called before every physical page write.

        Returns ``(data, crash)``; the disk persists ``data`` (possibly a
        torn prefix) and raises :class:`CrashPoint` when ``crash`` is True.
        A pending transient failure raises ``TransientIOError`` before the
        write happens, leaving the disk untouched for the retry.
        """
        if self.dead:
            raise CrashPoint("physical write on a crashed disk")
        self.op_counts[PHYSICAL_OP] += 1
        if (self.kill_after is not None and self.kill_op == PHYSICAL_OP
                and self.op_counts[PHYSICAL_OP] >= self.kill_after):
            self.dead = True
            if self.torn_bytes is not None:
                data = bytes(data)[: self.torn_bytes]
            return data, True
        self._maybe_fail_transiently(PHYSICAL_OP)
        self._maybe_fail_enospc(PHYSICAL_OP)
        return data, False

    def crash_now(self):
        """Mark the disk dead immediately (without an operation trigger)."""
        self.dead = True

    def abort(self):
        """Release the wrapped disk's file descriptors without committing."""
        if hasattr(self.inner, "abort"):
            self.inner.abort()

    # -- corruption hooks ----------------------------------------------------

    def flip_bit(self, page_id, bit):
        """Flip one bit of a persisted page image (silent media corruption)."""
        raw = bytearray(self.inner.peek(page_id))
        raw[(bit // 8) % len(raw)] ^= 1 << (bit % 8)
        self.inner.poke(page_id, bytes(raw))

    def peek(self, page_id):
        return self.inner.peek(page_id)

    def poke(self, page_id, data):
        self.inner.poke(page_id, data)

    # -- the SimulatedDisk interface -----------------------------------------

    @property
    def page_size(self):
        return self.inner.page_size

    @property
    def stats(self):
        return self.inner.stats

    @property
    def allocated_page_count(self):
        return self.inner.allocated_page_count

    def allocate(self):
        self._tick("allocate")
        return self.inner.allocate()

    def free(self, page_id):
        if self.dead:
            raise CrashPoint("operation on a crashed disk")
        return self.inner.free(page_id)

    def read(self, page_id):
        self._tick("read")
        return self.inner.read(page_id)

    def write(self, page_id, data):
        self._tick("write")
        return self.inner.write(page_id, data)

    def sync(self):
        if self.dead:
            raise CrashPoint("operation on a crashed disk")
        sync = getattr(self.inner, "sync", None)
        if sync is not None:  # InMemoryDisk has no commit point
            return sync()
        return None

    def close(self):
        """Close the wrapped disk — without committing if it crashed."""
        if self.dead:
            self.abort()
        elif hasattr(self.inner, "close"):
            self.inner.close()

    def __getattr__(self, name):
        # Everything else (sync, close, closed, recovery_stats, ...)
        # passes straight through to the wrapped disk.
        return getattr(self.inner, name)
