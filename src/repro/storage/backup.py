"""Hot backup and point-in-time recovery for file-backed databases.

A *hot backup* (:func:`hot_backup`) is a consistent page-level snapshot of
a live database taken **without blocking readers**: it copies only the
*committed* bytes of the data file (staged writes live in memory until
``sync()``, and ``sync()`` itself is atomic), so the copy always lands
exactly on a commit boundary.  The snapshot is a directory:

```
<dest>/data.db          byte copy of the data file
<dest>/MANIFEST.json    sequence, page size, length, CRC-32, timestamp
```

With ``durability="archive"`` the disk keeps every applied commit group
as a sequence-numbered segment file (:class:`~repro.storage.journal.\
Archive`), so a backup plus the archive is a *point-in-time* story:
:func:`restore` copies the snapshot back and replays archived segments up
to ``upto_sequence`` — rewinding a bad bulk update is "restore to the
sequence before it".  Segments are validated by CRC before being applied;
a torn trailing segment (primary crashed mid-archive, never acknowledged)
is skipped gracefully, while a gap or a corrupt *interior* segment raises
:class:`~repro.storage.errors.BackupError` — replaying past it would
silently lose commits.

The module doubles as a CLI::

    python -m repro.storage.backup backup  <db-file> <backup-dir>
    python -m repro.storage.backup restore <backup-dir> <db-file> \
        [--archive DIR] [--upto SEQ]
    python -m repro.storage.backup info <backup-dir>
    python -m repro.storage.backup segments <archive-dir>
"""

import json
import os
import time
import zlib
from dataclasses import asdict, dataclass

from repro.storage.disk import decode_superblock
from repro.storage.errors import BackupError
from repro.storage.journal import Archive, fsync_directory, segment_name

MANIFEST_NAME = "MANIFEST.json"
DATA_NAME = "data.db"

_COPY_CHUNK = 1 << 20


@dataclass
class BackupManifest:
    """What one hot backup captured (persisted as ``MANIFEST.json``)."""

    sequence: int        # commit sequence of the snapshotted superblock
    page_size: int
    next_page_id: int    # allocation frontier at snapshot time
    data_bytes: int      # length of data.db
    data_crc32: int      # CRC-32 of data.db, for restore verification
    created_at: float    # unix timestamp (informational)

    def save(self, directory):
        path = os.path.join(directory, MANIFEST_NAME)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(asdict(self), fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        return path

    @classmethod
    def load(cls, directory):
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except FileNotFoundError:
            raise BackupError("%s is not a backup directory (no %s)"
                              % (directory, MANIFEST_NAME))
        except (OSError, ValueError) as exc:
            raise BackupError("unreadable backup manifest %s: %s"
                              % (path, exc))
        try:
            return cls(**{key: raw[key] for key in
                          ("sequence", "page_size", "next_page_id",
                           "data_bytes", "data_crc32", "created_at")})
        except KeyError as exc:
            raise BackupError("backup manifest %s is missing %s"
                              % (path, exc))


@dataclass
class RestoreResult:
    """What :func:`restore` did."""

    path: str
    base_sequence: int       # the backup's commit sequence
    sequence: int            # commit sequence after segment replay
    segments_applied: int
    pages_applied: int
    torn_segments_skipped: int


def _source_path(source):
    """The data-file path behind a database, disk or plain path."""
    context = getattr(source, "_context", None)
    if context is not None:           # XmlDatabase
        source = context.disk
    inner = getattr(source, "inner", None)
    if inner is not None:             # FaultInjectingDisk wrapper
        source = inner
    path = getattr(source, "path", None)
    if path is None and isinstance(source, str):
        path = source
    if path is None:
        raise BackupError(
            "hot_backup needs a file-backed database, a FileDisk or a "
            "path; got %r" % (source,)
        )
    return path


def hot_backup(source, dest_dir):
    """Snapshot the committed state of ``source`` into ``dest_dir``.

    ``source`` is an ``XmlDatabase``, a ``FileDisk`` (possibly wrapped in
    a ``FaultInjectingDisk``) or a path.  The copy reads the file through
    its own descriptor, so a live database keeps serving reads and its
    staged (uncommitted) writes are naturally excluded.  Returns the
    :class:`BackupManifest` (also written into ``dest_dir``).
    """
    src = _source_path(source)
    os.makedirs(dest_dir, exist_ok=True)
    dest_data = os.path.join(dest_dir, DATA_NAME)
    crc = 0
    copied = 0
    try:
        with open(src, "rb") as reader:
            head = reader.read(_COPY_CHUNK)
            if not head:
                raise BackupError("%s is empty — nothing to back up" % src)
            info = decode_superblock(head)
            with open(dest_data, "wb") as writer:
                chunk = head
                while chunk:
                    writer.write(chunk)
                    crc = zlib.crc32(chunk, crc)
                    copied += len(chunk)
                    chunk = reader.read(_COPY_CHUNK)
                writer.flush()
                os.fsync(writer.fileno())
    except FileNotFoundError:
        raise BackupError("no such data file: %s" % src)
    manifest = BackupManifest(
        sequence=info["sequence"],
        page_size=info["page_size"],
        next_page_id=info["next_page_id"],
        data_bytes=copied,
        data_crc32=crc & 0xFFFFFFFF,
        created_at=time.time(),
    )
    manifest.save(dest_dir)
    fsync_directory(dest_dir)
    return manifest


def restore(backup_dir, dest_path, archive_dir=None, upto_sequence=None):
    """Rebuild a database file from a backup, optionally replaying history.

    Copies the snapshot to ``dest_path`` (verifying its CRC), then — when
    ``archive_dir`` is given — replays archived commit groups with
    sequences above the snapshot's, stopping at ``upto_sequence`` (None
    means "all the way to the head": point-in-time recovery picks the
    sequence just before the mistake).  Returns a :class:`RestoreResult`.

    Divergence rules: a torn or corrupt segment at the *head* of the
    stream is skipped (it was never acknowledged); a sequence gap or a
    corrupt segment with valid segments beyond it raises
    :class:`~repro.storage.errors.BackupError` — those commits cannot be
    reconstructed and must not be silently dropped.
    """
    manifest = BackupManifest.load(backup_dir)
    src_data = os.path.join(backup_dir, DATA_NAME)
    crc = 0
    try:
        with open(src_data, "rb") as reader, open(dest_path, "wb") as writer:
            chunk = reader.read(_COPY_CHUNK)
            while chunk:
                writer.write(chunk)
                crc = zlib.crc32(chunk, crc)
                chunk = reader.read(_COPY_CHUNK)
            writer.flush()
            os.fsync(writer.fileno())
    except FileNotFoundError:
        raise BackupError("backup %s has no %s" % (backup_dir, DATA_NAME))
    if crc & 0xFFFFFFFF != manifest.data_crc32:
        raise BackupError(
            "backup data of %s fails its manifest CRC (bit rot in the "
            "backup itself)" % backup_dir
        )
    result = RestoreResult(
        path=dest_path,
        base_sequence=manifest.sequence,
        sequence=manifest.sequence,
        segments_applied=0,
        pages_applied=0,
        torn_segments_skipped=0,
    )
    if archive_dir is not None:
        _replay_segments(result, manifest, archive_dir, dest_path,
                         upto_sequence)
    fsync_directory(os.path.dirname(os.path.abspath(dest_path)))
    return result


def _replay_segments(result, manifest, archive_dir, dest_path,
                     upto_sequence):
    archive = Archive(archive_dir, manifest.page_size)
    sequences = [seq for seq in archive.sequences()
                 if seq > manifest.sequence
                 and (upto_sequence is None or seq <= upto_sequence)]
    if not sequences:
        return
    expected = manifest.sequence + 1
    if sequences[0] != expected:
        raise BackupError(
            "archive %s starts at sequence %d but the backup ends at %d: "
            "the intervening segments were pruned or lost"
            % (archive_dir, sequences[0], manifest.sequence)
        )
    fd = os.open(dest_path, os.O_RDWR)
    try:
        for index, seq in enumerate(sequences):
            if seq != expected:
                raise BackupError(
                    "archive %s has a sequence gap: expected %d, found %d"
                    % (archive_dir, expected, seq)
                )
            group = archive.read(seq)
            if group is None:
                if index == len(sequences) - 1:
                    # Torn head segment: never acknowledged, safe to stop.
                    result.torn_segments_skipped += 1
                    return
                raise BackupError(
                    "archive segment %s is corrupt with valid segments "
                    "beyond it — cannot replay past it without losing "
                    "commits" % segment_name(seq)
                )
            _sequence, records = group
            for page_id in sorted(records):
                os.pwrite(fd, records[page_id],
                          page_id * manifest.page_size)
                result.pages_applied += 1
            result.segments_applied += 1
            result.sequence = seq
            expected = seq + 1
        os.fsync(fd)
    finally:
        os.close(fd)


# -- CLI --------------------------------------------------------------------


def _cmd_backup(args):
    manifest = hot_backup(args.db, args.dest)
    print("backed up %s -> %s (sequence %d, %d bytes)"
          % (args.db, args.dest, manifest.sequence, manifest.data_bytes))
    return 0


def _cmd_restore(args):
    result = restore(args.backup, args.db, archive_dir=args.archive,
                     upto_sequence=args.upto)
    print("restored %s at sequence %d (base %d, %d segments replayed, "
          "%d torn skipped)"
          % (result.path, result.sequence, result.base_sequence,
             result.segments_applied, result.torn_segments_skipped))
    return 0


def _print_replay_window(archive):
    oldest, newest, count, size = archive.replay_window()
    if count == 0:
        print("replay window: empty (no segments retained)")
        return oldest, newest
    print("replay window: sequences %d..%d (%d segment(s), %d bytes)"
          % (oldest, newest, count, size))
    return oldest, newest


def _cmd_info(args):
    manifest = BackupManifest.load(args.backup)
    for key, value in sorted(asdict(manifest).items()):
        print("%-14s %s" % (key, value))
    if args.archive is not None:
        archive = Archive(args.archive, manifest.page_size)
        oldest, _newest = _print_replay_window(archive)
        if oldest is not None and oldest > manifest.sequence + 1:
            # The segments between the snapshot and the retention floor
            # are gone: this backup can no longer be rolled forward.
            print("WARNING: archive starts at %d but the backup stops "
                  "at %d — PITR from this backup is impossible"
                  % (oldest, manifest.sequence))
    return 0


def _cmd_segments(args):
    archive = Archive(args.archive, args.page_size)
    sequences = archive.sequences()
    for seq in sequences:
        status = "ok" if archive.read(seq) is not None else "CORRUPT"
        print("%s  %s" % (segment_name(seq), status))
    print("%d segment(s)" % len(sequences))
    _print_replay_window(archive)
    return 0


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.storage.backup",
        description="Hot backup, restore and point-in-time recovery.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("backup", help="snapshot a database file")
    p.add_argument("db", help="path of the database file")
    p.add_argument("dest", help="backup directory to create")
    p.set_defaults(fn=_cmd_backup)

    p = sub.add_parser("restore", help="rebuild a database from a backup")
    p.add_argument("backup", help="backup directory")
    p.add_argument("db", help="path of the database file to (re)create")
    p.add_argument("--archive", default=None,
                   help="archive directory to replay segments from")
    p.add_argument("--upto", type=int, default=None,
                   help="stop replay at this commit sequence (PITR)")
    p.set_defaults(fn=_cmd_restore)

    p = sub.add_parser("info", help="print a backup's manifest")
    p.add_argument("backup", help="backup directory")
    p.add_argument("--archive", default=None,
                   help="also report this archive's replay window and "
                        "whether PITR from the backup is still possible")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("segments", help="list an archive's segments")
    p.add_argument("archive", help="archive directory")
    p.add_argument("--page-size", type=int, default=4096)
    p.set_defaults(fn=_cmd_segments)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BackupError as exc:
        print("error: %s" % exc)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
