"""Exception hierarchy for the storage substrate."""


class StorageError(Exception):
    """Base class for all storage-layer failures."""


class PageNotFoundError(StorageError):
    """A page id was requested that has never been allocated (or was freed)."""

    def __init__(self, page_id):
        super().__init__("page %r does not exist" % (page_id,))
        self.page_id = page_id


class PageFullError(StorageError):
    """An entry was pushed into a page that has no remaining capacity."""


class PageDecodeError(StorageError):
    """On-disk bytes could not be decoded into a typed page object."""


class BufferPoolError(StorageError):
    """Buffer-pool protocol violation (e.g. evicting a pinned page)."""
