"""Exception hierarchy for the storage substrate."""


class StorageError(Exception):
    """Base class for all storage-layer failures."""


class PageNotFoundError(StorageError):
    """A page id was requested that has never been allocated (or was freed)."""

    def __init__(self, page_id):
        super().__init__("page %r does not exist" % (page_id,))
        self.page_id = page_id


class PageFullError(StorageError):
    """An entry was pushed into a page that has no remaining capacity."""


class PageDecodeError(StorageError):
    """On-disk bytes could not be decoded into a typed page object."""


class ChecksumError(PageDecodeError):
    """A page image failed CRC-32 verification (torn write or bit rot).

    Subclasses :class:`PageDecodeError` because a checksum mismatch means
    the bytes cannot be trusted to decode into anything; callers that
    handle decode failures handle corruption the same way.
    """

    def __init__(self, message, page_id=None):
        super().__init__(message)
        self.page_id = page_id


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent on-disk state
    (missing or corrupt superblock, undecodable catalog root, ...)."""


class TransientIOError(StorageError):
    """A retryable I/O failure (injected or environmental).

    Raised by :class:`~repro.storage.faults.FaultInjectingDisk` in
    transient mode (``fail_next``) and honoured by retry/backoff loops —
    the replication apply path, future scrubber retries.  Unlike
    :class:`~repro.storage.faults.CrashPoint`, the operation may simply be
    retried: no state was lost.
    """


class DiskFullError(StorageError):
    """The volume ran out of space (``ENOSPC``) during a commit.

    Raised instead of a raw :class:`OSError` by the journal/archive
    commit path after cleaning up any partial on-disk state: nothing of
    the failed group became durable, the disk's in-memory staging is
    intact, and the commit may simply be retried once space is freed.
    Not a :class:`TransientIOError` — backing off and retrying blindly
    cannot help until an operator (or the retention subsystem) frees
    space — but also never fatal: the database stays readable.
    """


class ReadOnlyError(StorageError):
    """A write was rejected because the database degraded to read-only
    (disk full).  Reads keep working; writes resume automatically once
    a commit succeeds again (space was freed)."""


def is_disk_full_error(exc):
    """Is ``exc`` — or anything in its cause chain — a disk-full fault?

    Sees through wrapping layers (``ClusterWriteError`` et al. chain
    with ``raise ... from``), and recognizes a raw ``OSError`` carrying
    ``errno.ENOSPC`` that escaped before being typed.
    """
    import errno

    seen = set()
    while exc is not None and id(exc) not in seen:
        seen.add(id(exc))
        if isinstance(exc, (DiskFullError, ReadOnlyError)):
            return True
        if isinstance(exc, OSError) and exc.errno == errno.ENOSPC:
            return True
        exc = exc.__cause__ or exc.__context__
    return False


class BackupError(StorageError):
    """Hot backup or restore could not produce a consistent snapshot."""


class ReplicationError(StorageError):
    """Log shipping or standby apply failed non-transiently."""


class DivergenceError(ReplicationError):
    """The standby refused to promote: the archived stream has a sequence
    gap or a checksum-corrupt segment between its position and the
    primary's head, so catching up would silently lose commits."""


class BufferPoolError(StorageError):
    """Buffer-pool protocol violation (e.g. evicting a pinned page)."""
