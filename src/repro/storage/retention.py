"""Archive retention: durable checkpoints and the safe prune horizon.

``durability="archive"`` keeps every committed group as a segment file
forever — correct, and a guarantee that any long-lived deployment
eventually fills its volume.  This module is the subsystem that may
*safely* call :meth:`~repro.storage.journal.Archive.prune_upto`:

* a :class:`CheckpointManager` takes periodic **checkpoints** — hot
  backups of the primary recorded durably next to the archive — so a
  restore never needs segments below the latest checkpoint's sequence;
* the **safe prune horizon** is computed as::

      min(latest durable checkpoint sequence,
          min standby acked sequence,
          head - pitr_window)

  Segments at or below the horizon serve no one: every restore has a
  newer base, every standby has already applied them, and the
  configured point-in-time window stays fully replayable.  No
  checkpoint yet means **no pruning** — the conservative default;
* under disk pressure an **emergency prune** drops the PITR-window term
  and cuts straight to the floor the checkpoint and standbys impose —
  point-in-time depth is traded away before availability is.

The :class:`RetentionPolicy` numbers are plumbing-free so the cluster
layer (:class:`~repro.cluster.replicaset.ReplicaSet`) can own the
standby-floor collection and the lag budget that decides when a
straggler stops holding the horizon and is re-seeded instead
(``docs/CLUSTER.md``).  Everything is observable: ``repro_retention_*``
gauges via :meth:`CheckpointManager.bind_metrics` and
``retention.*`` trace events.
"""

import errno
import json
import os
import shutil
from dataclasses import dataclass, field

from repro.obs.trace import NULL_TRACER
from repro.storage.errors import DiskFullError, StorageError
from repro.storage.journal import fsync_directory

#: File (inside the checkpoint directory) recording every checkpoint.
CHECKPOINTS_NAME = "CHECKPOINTS.json"


class RetentionError(StorageError):
    """Retention misuse (bad policy numbers, unusable checkpoint dir)."""


@dataclass(frozen=True)
class RetentionPolicy:
    """The knobs bounding how much archive history is retained.

    ``pitr_window`` — segments behind the head always kept so
    point-in-time restores can land anywhere inside the window.
    ``checkpoint_every`` — take a new checkpoint after this many commit
    groups since the last one (None: checkpoints are manual).
    ``max_standby_lag`` — how many segments of retention a lagging
    standby may hold hostage before the cluster stops waiting and
    re-seeds it from a snapshot instead (None: hold forever).
    ``keep_checkpoints`` — checkpoint snapshots retained on disk; older
    ones are deleted once a newer checkpoint supersedes them.
    """

    pitr_window: int = 64
    checkpoint_every: int = None
    max_standby_lag: int = None
    keep_checkpoints: int = 2

    def __post_init__(self):
        if self.pitr_window < 0:
            raise RetentionError("pitr_window must be >= 0")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise RetentionError("checkpoint_every must be >= 1")
        if self.max_standby_lag is not None and self.max_standby_lag < 0:
            raise RetentionError("max_standby_lag must be >= 0")
        if self.keep_checkpoints < 1:
            raise RetentionError("keep_checkpoints must be >= 1")


@dataclass
class RetentionStats:
    """Lifetime counters for one :class:`CheckpointManager`."""

    checkpoints: int = 0          # checkpoints recorded
    checkpoints_dropped: int = 0  # superseded snapshots deleted
    prunes: int = 0               # prune() calls that removed segments
    emergency_prunes: int = 0     # disk-pressure prunes (PITR term waived)
    segments_pruned: int = 0      # segments removed (lifetime)
    holds: int = 0                # prunes where a standby held the horizon
    last_horizon: int = 0         # horizon of the most recent prune
    last_checkpoint_sequence: int = 0

    def snapshot(self):
        return dict(self.__dict__)


class CheckpointManager:
    """Own an archive's retention: checkpoints, horizon, pruning.

    ``archive`` is the live :class:`~repro.storage.journal.Archive`
    whose segments are being retained; ``checkpoint_dir`` holds the
    checkpoint snapshots plus the durable ``CHECKPOINTS.json`` record
    (the *latest durable checkpoint* term of the horizon is read from
    there, so a restarted manager resumes where the last one stopped).
    """

    def __init__(self, archive, policy=None, checkpoint_dir=None,
                 observability=None):
        if archive is None:
            raise RetentionError(
                "CheckpointManager needs an archive (durability='archive')")
        self.archive = archive
        self.policy = policy if policy is not None else RetentionPolicy()
        self.checkpoint_dir = (checkpoint_dir if checkpoint_dir is not None
                               else archive.directory + ".checkpoints")
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.stats = RetentionStats()
        self._tracer = (observability.tracer if observability is not None
                        else NULL_TRACER)
        self._checkpoints = self._load_records()
        if self._checkpoints:
            self.stats.last_checkpoint_sequence = \
                self._checkpoints[-1]["sequence"]
        if observability is not None:
            self.bind_metrics(observability.metrics)

    # -- checkpoint records (durable) -----------------------------------------

    def _records_path(self):
        return os.path.join(self.checkpoint_dir, CHECKPOINTS_NAME)

    def _load_records(self):
        try:
            with open(self._records_path(), "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except FileNotFoundError:
            return []
        except (OSError, ValueError) as exc:
            raise RetentionError(
                "unreadable checkpoint record %s: %s"
                % (self._records_path(), exc))
        records = [r for r in raw
                   if isinstance(r, dict) and "sequence" in r]
        records.sort(key=lambda r: r["sequence"])
        return records

    def _save_records(self):
        """Write the record file atomically (tmp + rename + dir fsync):
        a crash mid-update leaves the previous record intact, never a
        torn one — the horizon must only ever read *durable*
        checkpoints."""
        path = self._records_path()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._checkpoints, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_directory(self.checkpoint_dir)

    def checkpoints(self):
        """Recorded checkpoints, oldest first (sequence + directory)."""
        return [dict(record) for record in self._checkpoints]

    def latest_checkpoint(self):
        """The newest durable checkpoint record, or None."""
        return dict(self._checkpoints[-1]) if self._checkpoints else None

    # -- taking checkpoints ---------------------------------------------------

    def checkpoint(self, source):
        """Hot-backup ``source`` and record it durably; returns the record.

        ``source`` is anything :func:`~repro.storage.backup.hot_backup`
        accepts (an ``XmlDatabase``, a ``FileDisk``, a path).  ENOSPC
        while writing the snapshot surfaces as a typed
        :class:`~repro.storage.errors.DiskFullError` with the partial
        snapshot directory removed — a half-written checkpoint must
        never become a prune justification.
        """
        from repro.storage.backup import hot_backup

        with self._tracer.span("retention.checkpoint"):
            staging = os.path.join(self.checkpoint_dir, "ckpt-inprogress")
            if os.path.isdir(staging):
                shutil.rmtree(staging)
            try:
                manifest = hot_backup(source, staging)
            except OSError as exc:
                shutil.rmtree(staging, ignore_errors=True)
                if exc.errno == errno.ENOSPC:
                    raise DiskFullError(
                        "checkpoint snapshot hit ENOSPC: %s" % exc) from exc
                raise
            dest = os.path.join(self.checkpoint_dir,
                                "ckpt-%016d" % manifest.sequence)
            if os.path.isdir(dest):
                shutil.rmtree(dest)
            os.replace(staging, dest)
            fsync_directory(self.checkpoint_dir)
            record = {"sequence": manifest.sequence, "directory": dest,
                      "created_at": manifest.created_at}
            self._checkpoints = [r for r in self._checkpoints
                                 if r["sequence"] != manifest.sequence]
            self._checkpoints.append(record)
            self._checkpoints.sort(key=lambda r: r["sequence"])
            self._save_records()
            self.stats.checkpoints += 1
            self.stats.last_checkpoint_sequence = manifest.sequence
            self._drop_superseded()
            self._tracer.event("retention.checkpointed",
                               sequence=manifest.sequence)
            return dict(record)

    def maybe_checkpoint(self, source, head=None):
        """Checkpoint when the policy's cadence says one is due.

        ``head`` is the archive head sequence (looked up when omitted).
        Returns the new record, or None when nothing was due.
        """
        if self.policy.checkpoint_every is None:
            return None
        if head is None:
            head = self.archive.latest_sequence()
        if head is None:
            return None
        last = self.stats.last_checkpoint_sequence
        if head - last < self.policy.checkpoint_every and last:
            return None
        if not last and head < self.policy.checkpoint_every:
            return None
        return self.checkpoint(source)

    def _drop_superseded(self):
        """Delete checkpoint snapshots beyond ``keep_checkpoints``."""
        while len(self._checkpoints) > self.policy.keep_checkpoints:
            record = self._checkpoints.pop(0)
            directory = record.get("directory")
            if directory and os.path.isdir(directory):
                shutil.rmtree(directory, ignore_errors=True)
            self.stats.checkpoints_dropped += 1
        self._save_records()

    # -- the horizon ----------------------------------------------------------

    def safe_horizon(self, standby_floor=None, pitr_window=None):
        """Highest sequence prunable without losing anything anyone needs.

        ``standby_floor`` is the minimum acked/applied sequence across
        the standbys the cluster is still waiting for (None: no standby
        constraint).  ``pitr_window`` overrides the policy's window (the
        emergency path passes 0).  Returns None when nothing may be
        pruned — no durable checkpoint, empty archive, or a constraint
        at or below the oldest retained segment.
        """
        if not self._checkpoints:
            return None
        head = self.archive.latest_sequence()
        if head is None:
            return None
        window = (self.policy.pitr_window if pitr_window is None
                  else pitr_window)
        horizon = min(self._checkpoints[-1]["sequence"], head - window)
        if standby_floor is not None:
            horizon = min(horizon, standby_floor)
        if horizon < 1:
            return None
        oldest = self.archive.oldest_sequence()
        if oldest is not None and horizon < oldest:
            return None  # everything below the horizon is already gone
        return horizon

    def prune(self, standby_floor=None):
        """Prune to the safe horizon; returns segments removed.

        Counts a *hold* when the standby floor — not the checkpoint or
        the PITR window — was the binding constraint: the signal that a
        straggler is the reason the disk is not shrinking.
        """
        horizon = self.safe_horizon(standby_floor=standby_floor)
        if horizon is None:
            return 0
        unconstrained = self.safe_horizon()
        removed = self.archive.prune_upto(horizon)
        if removed:
            self.stats.prunes += 1
            self.stats.segments_pruned += removed
            self.stats.last_horizon = horizon
            if unconstrained is not None and horizon < unconstrained:
                self.stats.holds += 1
            self._tracer.event("retention.prune", horizon=horizon,
                               removed=removed)
        return removed

    def emergency_prune(self, standby_floor=None):
        """Disk-pressure prune: waive the PITR window, cut to the floor.

        Still bounded by the latest durable checkpoint and the standby
        floor — an emergency never justifies pruning segments a restore
        or a live standby would need.  Returns segments removed.
        """
        horizon = self.safe_horizon(standby_floor=standby_floor,
                                    pitr_window=0)
        if horizon is None:
            return 0
        removed = self.archive.prune_upto(horizon)
        if removed:
            self.stats.emergency_prunes += 1
            self.stats.segments_pruned += removed
            self.stats.last_horizon = horizon
            self._tracer.event("retention.emergency-prune",
                               horizon=horizon, removed=removed)
        return removed

    # -- introspection --------------------------------------------------------

    def replay_window(self):
        """The archive's retention state: ``(oldest, newest, count,
        bytes)`` (see :meth:`~repro.storage.journal.Archive.
        replay_window`)."""
        return self.archive.replay_window()

    def bind_metrics(self, registry):
        """Mirror :attr:`stats` into ``repro_retention_*`` gauges.

        Idempotent per registry; the replay-window gauges are refreshed
        from the archive directory at snapshot time, so they track
        pruning done by anyone, not just this manager.
        """
        if registry in getattr(self, "_bound_registries", ()):
            return registry
        self._bound_registries = getattr(self, "_bound_registries", [])
        self._bound_registries.append(registry)
        registry.mirror(self.stats, (
            ("repro_retention_checkpoints", "checkpoints",
             "Durable checkpoints recorded"),
            ("repro_retention_checkpoints_dropped", "checkpoints_dropped",
             "Superseded checkpoint snapshots deleted"),
            ("repro_retention_prunes", "prunes",
             "Prune passes that removed segments"),
            ("repro_retention_emergency_prunes", "emergency_prunes",
             "Disk-pressure prunes that waived the PITR window"),
            ("repro_retention_segments_pruned", "segments_pruned",
             "Archive segments removed by retention (lifetime)"),
            ("repro_retention_holds", "holds",
             "Prunes where a lagging standby held the horizon down"),
            ("repro_retention_horizon", "last_horizon",
             "Safe prune horizon of the most recent prune"),
            ("repro_retention_checkpoint_sequence",
             "last_checkpoint_sequence",
             "Commit sequence of the latest durable checkpoint"),
        ), name="retention")

        window_gauges = {
            "oldest": registry.gauge(
                "repro_retention_window_oldest",
                "Oldest retained archive sequence (0 when empty)"),
            "newest": registry.gauge(
                "repro_retention_window_newest",
                "Newest retained archive sequence (0 when empty)"),
            "segments": registry.gauge(
                "repro_retention_window_segments",
                "Archive segments currently retained"),
            "bytes": registry.gauge(
                "repro_retention_window_bytes",
                "Bytes of archive segments currently on disk"),
        }
        for gauge_name in ("repro_retention_window_oldest",
                           "repro_retention_window_newest",
                           "repro_retention_window_segments",
                           "repro_retention_window_bytes"):
            registry.claim(gauge_name, "retention-window")

        def refresh_window(_registry):
            oldest, newest, count, size = self.archive.replay_window()
            window_gauges["oldest"].set(oldest or 0)
            window_gauges["newest"].set(newest or 0)
            window_gauges["segments"].set(count)
            window_gauges["bytes"].set(size)

        registry.register_collector(refresh_window, name="retention-window")
        return registry
