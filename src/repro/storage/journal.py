"""Write-ahead journal giving :class:`FileDisk` atomic multi-page commits.

The journal is a side file (``<data file>.journal``) holding at most one
*commit group* at a time.  A group is the full set of page images (plus the
new superblock, recorded as page id 0) that one ``sync()`` wants to make
durable together:

```
group header   "XRJL" magic, sequence number, page count
page records   page id (u64) + raw page image (page_size bytes), repeated
group footer   "XRJC" magic, CRC-32 over header + records
```

Commit protocol (:meth:`Journal.commit` / :meth:`FileDisk.sync`):

1. write the whole group to the journal file, fsync it;
2. apply every record to the data file at its page offset, fsync it;
3. truncate the journal to zero (:meth:`Journal.clear`).

A crash at any point leaves one of three states, all recoverable:

* journal empty or torn (crash during step 1) — the group never became
  durable; recovery discards it and the data file still holds the previous
  commit;
* journal complete, data file partially applied (crash during step 2) —
  recovery replays the whole group; applying page images is idempotent;
* journal complete and applied but not yet cleared (crash during step 3) —
  recovery replays harmlessly and clears.

Validity of a group is established by length and CRC alone, so a torn
journal write can never masquerade as a committed group.
"""

import os
import struct
import zlib

_GROUP_MAGIC = b"XRJL"
_COMMIT_MAGIC = b"XRJC"
_HEADER = struct.Struct("<4sQI")   # magic, commit sequence, page count
_RECORD = struct.Struct("<Q")      # page id (0 = superblock)
_FOOTER = struct.Struct("<4sI")    # commit magic, CRC-32 of header+records


class Journal:
    """One commit group of page images, made durable before being applied.

    ``fault_filter`` is the physical-write interception hook wired up by
    :class:`~repro.storage.faults.FaultInjectingDisk`: it sees every record
    written to the journal file and may tear it or kill the process.
    """

    def __init__(self, path, page_size, fault_filter=None):
        self.path = path
        self.page_size = page_size
        self._filter = fault_filter
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        #: Counters for the durability benchmark.
        self.commits = 0
        self.pages_journaled = 0

    @property
    def closed(self):
        return self._fd is None

    @property
    def pending_bytes(self):
        """Bytes currently sitting in the journal file."""
        return os.fstat(self._fd).st_size

    def close(self):
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # -- writing ---------------------------------------------------------------

    def commit(self, sequence, records):
        """Make ``records`` (page id -> image) durable as one group.

        Writes the group and fsyncs the journal file; the caller applies the
        records to the data file afterwards and then calls :meth:`clear`.
        """
        body = bytearray()
        body += _HEADER.pack(_GROUP_MAGIC, sequence, len(records))
        crash = False
        for page_id in sorted(records):
            image = bytes(records[page_id])
            if len(image) < self.page_size:
                image += bytes(self.page_size - len(image))
            if self._filter is not None:
                image, crash = self._filter("journal", page_id, image)
            body += _RECORD.pack(page_id)
            body += image
            self.pages_journaled += 1
            if crash:
                break
        if not crash:
            body += _FOOTER.pack(_COMMIT_MAGIC,
                                 zlib.crc32(bytes(body)) & 0xFFFFFFFF)
        os.pwrite(self._fd, bytes(body), 0)
        os.ftruncate(self._fd, len(body))
        os.fsync(self._fd)
        self.commits += 1
        if crash:
            from repro.storage.faults import CrashPoint

            raise CrashPoint("killed while journaling a commit group")

    def clear(self):
        """Empty the journal after its group has been applied."""
        os.ftruncate(self._fd, 0)
        os.fsync(self._fd)

    # -- reading ---------------------------------------------------------------

    def read_group(self):
        """The pending commit group, or None.

        Returns ``(sequence, {page_id: image})`` when the journal holds a
        complete, checksum-valid group; None when it is empty, torn or
        corrupt (the caller discards it either way).
        """
        size = os.fstat(self._fd).st_size
        if size < _HEADER.size + _FOOTER.size:
            return None
        blob = os.pread(self._fd, size, 0)
        magic, sequence, count = _HEADER.unpack_from(blob, 0)
        if magic != _GROUP_MAGIC:
            return None
        record_size = _RECORD.size + self.page_size
        body_size = _HEADER.size + count * record_size
        if size < body_size + _FOOTER.size:
            return None
        commit_magic, stored_crc = _FOOTER.unpack_from(blob, body_size)
        if commit_magic != _COMMIT_MAGIC:
            return None
        if zlib.crc32(blob[:body_size]) & 0xFFFFFFFF != stored_crc:
            return None
        records = {}
        offset = _HEADER.size
        for _ in range(count):
            (page_id,) = _RECORD.unpack_from(blob, offset)
            offset += _RECORD.size
            records[page_id] = blob[offset : offset + self.page_size]
            offset += self.page_size
        return sequence, records

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
