"""Write-ahead journal giving :class:`FileDisk` atomic multi-page commits.

The journal is a side file (``<data file>.journal``) holding at most one
*commit group* at a time.  A group is the full set of page images (plus the
new superblock, recorded as page id 0) that one ``sync()`` wants to make
durable together:

```
group header   "XRJL" magic, sequence number, page count
page records   page id (u64) + raw page image (page_size bytes), repeated
group footer   "XRJC" magic, CRC-32 over header + records
```

Commit protocol (:meth:`Journal.commit` / :meth:`FileDisk.sync`):

1. write the whole group to the journal file, fsync it (and, on the very
   first commit after the journal file was created, fsync the parent
   directory so the journal's directory entry itself is durable);
2. apply every record to the data file at its page offset, fsync it;
3. truncate the journal to zero (:meth:`Journal.clear`).

A crash at any point leaves one of three states, all recoverable:

* journal empty or torn (crash during step 1) — the group never became
  durable; recovery discards it and the data file still holds the previous
  commit;
* journal complete, data file partially applied (crash during step 2) —
  recovery replays the whole group; applying page images is idempotent;
* journal complete and applied but not yet cleared (crash during step 3) —
  recovery replays harmlessly and clears.

Validity of a group is established by length and CRC alone, so a torn
journal write can never masquerade as a committed group.

The same group encoding is reused by :class:`Archive` — the
``durability="archive"`` mode's segment store — where applied groups are
*kept* as sequence-numbered segment files instead of truncated, forming
the log-shipping stream that backups, point-in-time recovery and standby
replicas consume (:mod:`repro.storage.backup`,
:mod:`repro.storage.replication`).
"""

import errno
import os
import re
import struct
import zlib

from repro.storage.errors import DiskFullError

_GROUP_MAGIC = b"XRJL"
_COMMIT_MAGIC = b"XRJC"
_HEADER = struct.Struct("<4sQI")   # magic, commit sequence, page count
_RECORD = struct.Struct("<Q")      # page id (0 = superblock)
_FOOTER = struct.Struct("<4sI")    # commit magic, CRC-32 of header+records

#: ``seg-<sequence>.xrseg`` — zero-padded so lexical order is replay order.
SEGMENT_SUFFIX = ".xrseg"
_SEGMENT_RE = re.compile(r"^seg-(\d{16})\.xrseg$")


def segment_name(sequence):
    """Canonical archive file name for one commit group."""
    return "seg-%016d%s" % (sequence, SEGMENT_SUFFIX)


def encode_group(sequence, records, page_size, fault_filter=None,
                 filter_kind="journal"):
    """Serialize one commit group; returns ``(body, crash, pages_written)``.

    ``fault_filter`` is the physical-write interception hook wired up by
    :class:`~repro.storage.faults.FaultInjectingDisk`: it sees every page
    record and may tear it (``crash`` True means the caller must persist
    the possibly-torn body and then simulate a kill).
    """
    body = bytearray()
    body += _HEADER.pack(_GROUP_MAGIC, sequence, len(records))
    crash = False
    written = 0
    for page_id in sorted(records):
        image = bytes(records[page_id])
        if len(image) < page_size:
            image += bytes(page_size - len(image))
        if fault_filter is not None:
            image, crash = fault_filter(filter_kind, page_id, image)
        body += _RECORD.pack(page_id)
        body += image
        written += 1
        if crash:
            break
    if not crash:
        body += _FOOTER.pack(_COMMIT_MAGIC,
                             zlib.crc32(bytes(body)) & 0xFFFFFFFF)
    return bytes(body), crash, written


def decode_group(blob, page_size):
    """Decode one serialized commit group.

    Returns ``(sequence, {page_id: image})`` for a complete, checksum-valid
    group; ``None`` for anything else — empty, torn mid-record, or failing
    the CRC.  Callers who need to distinguish "empty" from "torn" check
    ``len(blob)`` themselves.
    """
    size = len(blob)
    if size < _HEADER.size + _FOOTER.size:
        return None
    magic, sequence, count = _HEADER.unpack_from(blob, 0)
    if magic != _GROUP_MAGIC:
        return None
    record_size = _RECORD.size + page_size
    body_size = _HEADER.size + count * record_size
    if size < body_size + _FOOTER.size:
        return None
    commit_magic, stored_crc = _FOOTER.unpack_from(blob, body_size)
    if commit_magic != _COMMIT_MAGIC:
        return None
    if zlib.crc32(blob[:body_size]) & 0xFFFFFFFF != stored_crc:
        return None
    records = {}
    offset = _HEADER.size
    for _ in range(count):
        (page_id,) = _RECORD.unpack_from(blob, offset)
        offset += _RECORD.size
        records[page_id] = blob[offset : offset + page_size]
        offset += page_size
    return sequence, records


def fsync_directory(path):
    """fsync a directory so entries created inside it are durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class Journal:
    """One commit group of page images, made durable before being applied.

    ``fault_filter`` is the physical-write interception hook wired up by
    :class:`~repro.storage.faults.FaultInjectingDisk`: it sees every record
    written to the journal file and may tear it or kill the process.
    """

    def __init__(self, path, page_size, fault_filter=None):
        self.path = path
        self.page_size = page_size
        self._filter = fault_filter
        created = not os.path.exists(path)
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        # A freshly created journal file is not durable until its parent
        # directory's entry is — a crash right after the first commit could
        # otherwise lose the journal file itself.  The first commit pays
        # one directory fsync to close that hole.
        self._needs_dir_sync = created
        #: Counters for the durability benchmark.
        self.commits = 0
        self.pages_journaled = 0
        self.dir_fsyncs = 0
        #: Trailing corrupt groups seen by :meth:`read_group` (satellites
        #: surface this through ``recovery_stats.torn_groups``).
        self.torn_groups = 0

    @property
    def closed(self):
        return self._fd is None

    @property
    def pending_bytes(self):
        """Bytes currently sitting in the journal file."""
        return os.fstat(self._fd).st_size

    def close(self):
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # -- writing ---------------------------------------------------------------

    def commit(self, sequence, records):
        """Make ``records`` (page id -> image) durable as one group.

        Writes the group and fsyncs the journal file; the caller applies the
        records to the data file afterwards and then calls :meth:`clear`.
        """
        try:
            body, crash, written = encode_group(sequence, records,
                                                self.page_size, self._filter)
            self.pages_journaled += written
            os.pwrite(self._fd, body, 0)
            os.ftruncate(self._fd, len(body))
            os.fsync(self._fd)
        except OSError as exc:
            if exc.errno != errno.ENOSPC:
                raise
            # Out of space mid-journal: whatever prefix landed is torn
            # (no valid footer can have been fsynced), so truncating it
            # away restores the exact pre-commit on-disk state.  Nothing
            # durable was lost — the caller keeps its staged writes and
            # may retry once space is freed.
            try:
                os.ftruncate(self._fd, 0)
            except OSError:
                pass
            raise DiskFullError(
                "journal commit of group %d hit ENOSPC: %s"
                % (sequence, exc)) from exc
        if self._needs_dir_sync:
            fsync_directory(os.path.dirname(os.path.abspath(self.path)))
            self.dir_fsyncs += 1
            self._needs_dir_sync = False
        self.commits += 1
        if crash:
            from repro.storage.faults import CrashPoint

            raise CrashPoint("killed while journaling a commit group")

    def clear(self):
        """Empty the journal after its group has been applied."""
        os.ftruncate(self._fd, 0)
        os.fsync(self._fd)

    # -- reading ---------------------------------------------------------------

    def read_group(self):
        """The pending commit group, or None.

        Returns ``(sequence, {page_id: image})`` when the journal holds a
        complete, checksum-valid group; None when it is empty, torn or
        corrupt.  A non-empty journal that fails to decode is counted in
        :attr:`torn_groups` — the caller still discards it (it was never
        acknowledged), but the occurrence is surfaced instead of silent.
        """
        size = os.fstat(self._fd).st_size
        if size == 0:
            return None
        blob = os.pread(self._fd, size, 0)
        group = decode_group(blob, self.page_size)
        if group is None:
            self.torn_groups += 1
        return group

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()


class ArchiveError(Exception):
    """Archive directory misuse or an unreadable segment."""


class Archive:
    """Sequence-numbered commit-group segments in a directory.

    The ``durability="archive"`` commit path: instead of writing each
    group to a single truncating journal file, every group is written to
    its own ``seg-<sequence>.xrseg`` file (fsynced, with the directory
    entry fsynced too) *before* being applied to the data file.  The
    archive therefore holds the full history of committed groups since
    its creation — the replay stream for point-in-time recovery and the
    shipping stream for standby replicas.

    A torn trailing segment (crash while writing it) is detected by the
    group CRC exactly as for the journal; it was never acknowledged, so
    recovery deletes it and counts it.
    """

    def __init__(self, directory, page_size, fault_filter=None):
        self.directory = directory
        self.page_size = page_size
        self._filter = fault_filter
        created = not os.path.isdir(directory)
        if created:
            os.makedirs(directory, exist_ok=True)
            fsync_directory(os.path.dirname(os.path.abspath(directory))
                            or ".")
        #: Counters for the durability benchmark and replication metrics.
        self.commits = 0
        self.pages_archived = 0
        self.dir_fsyncs = 1 if created else 0

    # -- writing ---------------------------------------------------------------

    def append(self, sequence, records):
        """Write one commit group as the segment for ``sequence``.

        Out of space (``ENOSPC``) raises a typed
        :class:`~repro.storage.errors.DiskFullError` after unlinking the
        partial segment file, so a failed commit never leaves a torn
        segment for tailing standbys or recovery to trip over.
        """
        path = os.path.join(self.directory, segment_name(sequence))
        try:
            body, crash, written = encode_group(sequence, records,
                                                self.page_size, self._filter)
            self.pages_archived += written
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.pwrite(fd, body, 0)
                os.fsync(fd)
            finally:
                os.close(fd)
            fsync_directory(self.directory)
        except OSError as exc:
            if exc.errno != errno.ENOSPC:
                raise
            try:
                os.remove(path)
            except OSError:
                pass
            raise DiskFullError(
                "archiving segment %d hit ENOSPC: %s"
                % (sequence, exc)) from exc
        self.dir_fsyncs += 1
        self.commits += 1
        if crash:
            from repro.storage.faults import CrashPoint

            raise CrashPoint("killed while archiving a commit group")

    # -- reading ---------------------------------------------------------------

    def sequences(self):
        """Sorted sequence numbers of every segment present."""
        out = []
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return out
        for name in names:
            match = _SEGMENT_RE.match(name)
            if match:
                out.append(int(match.group(1)))
        out.sort()
        return out

    def segment_path(self, sequence):
        return os.path.join(self.directory, segment_name(sequence))

    def read(self, sequence):
        """Decode segment ``sequence``; returns ``(sequence, records)``.

        Returns None when the segment is missing, torn or corrupt.
        """
        try:
            with open(self.segment_path(sequence), "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return None
        group = decode_group(blob, self.page_size)
        if group is not None and group[0] != sequence:
            return None  # mis-filed segment: treat as corrupt
        return group

    def read_raw(self, sequence):
        """The raw segment bytes (shipping payload), or None if missing."""
        try:
            with open(self.segment_path(sequence), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def latest_sequence(self):
        sequences = self.sequences()
        return sequences[-1] if sequences else None

    def oldest_sequence(self):
        """Lowest retained sequence, or None for an empty archive.

        The floor of the replay window: anything below it was pruned (or
        never existed) and cannot be shipped or replayed from here.
        """
        sequences = self.sequences()
        return sequences[0] if sequences else None

    def bytes_on_disk(self):
        """Total size of every retained segment file, in bytes."""
        total = 0
        for seq in self.sequences():
            try:
                total += os.path.getsize(self.segment_path(seq))
            except OSError:
                pass  # pruned concurrently
        return total

    def replay_window(self):
        """The retention state at a glance: ``(oldest, newest, count,
        bytes)`` — both sequences None for an empty archive."""
        sequences = self.sequences()
        if not sequences:
            return None, None, 0, 0
        return (sequences[0], sequences[-1], len(sequences),
                self.bytes_on_disk())

    def remove(self, sequence, sync_directory=True):
        """Delete one segment (recovery discards torn trailing ones).

        The unlink is made durable with a directory fsync (counted in
        :attr:`dir_fsyncs`), matching the hygiene of :meth:`append` — a
        crash after pruning must not resurrect directory entries the
        retention horizon already declared gone.  ``sync_directory=False``
        lets a batch caller (:meth:`prune_upto`) pay one fsync for many
        unlinks.
        """
        try:
            os.remove(self.segment_path(sequence))
        except FileNotFoundError:
            return
        if sync_directory:
            fsync_directory(self.directory)
            self.dir_fsyncs += 1

    def prune_upto(self, sequence):
        """Drop every segment with a sequence <= ``sequence`` (retention).

        Returns the number of segments removed.  Pruning shortens the
        replay window: restores then need a base backup at or beyond the
        prune point.  One directory fsync covers the whole batch.
        """
        removed = 0
        for seq in self.sequences():
            if seq <= sequence:
                self.remove(seq, sync_directory=False)
                removed += 1
        if removed:
            fsync_directory(self.directory)
            self.dir_fsyncs += 1
        return removed
