"""Cached, write-back lifecycle management for catalogued index handles.

The catalog (:mod:`repro.storage.catalog`) makes index structures
*reopenable*: tree metadata (root page, height, size, capacities) lives in
catalog entries, and ``load_xrtree``/``save_xrtree`` reconstruct or persist
one structure at a time.  What it does not provide is a *lifecycle*: every
``load_`` call scans catalog pages and builds a fresh Python object, and
every mutation forces an immediate ``save_`` — write-through at tree
granularity.  Under a query-plus-update workload that means the hot path
re-deserializes the same handful of trees over and over.

:class:`IndexManager` adds the missing layer, the same shape a buffer
manager gives pages but at whole-structure granularity:

* **handle cache** — live ``XRTree`` / ``BPlusTree`` / ``PagedElementList``
  objects keyed by catalog name, LRU-ordered, bounded by ``capacity``;
* **dirty tracking** — callers :meth:`mark_dirty` a handle before mutating
  the structure; clean handles are dropped on eviction, dirty ones have
  their metadata written back to the catalog first;
* **batched write-back** — catalog saves happen on eviction, on
  :meth:`flush` and on :meth:`close`, not once per mutation;
* **instrumentation** — :class:`IndexManagerStats` counts handle hits and
  misses, catalog loads, creations, evictions, write-backs and
  invalidations, surfaced through ``StorageContext.index_stats``.

Contract for mutators: fetch the handle and call :meth:`mark_dirty` *before*
mutating the structure, then mutate without interleaving other manager
calls.  Eviction can only happen inside a manager call, so a handle marked
dirty up front is guaranteed to have its post-mutation metadata written
back whenever it is evicted later.

Usage::

    manager = IndexManager(catalog, capacity=64)
    tree = manager.get_or_create_xrtree("tag:employee")
    manager.mark_dirty("tag:employee")
    tree.insert(entry)
    ...
    manager.flush()        # batched catalog write-back
    manager.close()
"""

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.catalog import CatalogError
from repro.storage.errors import StorageError

DEFAULT_HANDLE_BUDGET = 64

#: Structure kinds a manager can cache, mapped to the catalog's typed
#: load/save method names.
_KINDS = {
    "xr-tree": ("load_xrtree", "save_xrtree"),
    "b+tree": ("load_bptree", "save_bptree"),
    "element-list": ("load_element_list", "save_element_list"),
}


class IndexManagerError(StorageError):
    """Lifecycle misuse: unknown handles, kind mismatches, use after close."""


@dataclass
class IndexManagerStats:
    """Counters for handle requests served by an :class:`IndexManager`.

    ``hits``/``misses`` count :meth:`IndexManager.get` style requests served
    from the handle cache versus not; ``loads`` counts catalog
    deserializations (the expensive path the cache exists to avoid);
    ``creations`` counts fresh structures registered through
    ``get_or_create_*``; ``evictions``/``writebacks`` count LRU evictions
    and catalog metadata saves; ``invalidations`` counts handles discarded
    or dropped without write-back.

    ``max_pinned`` is not a manager counter: owners that expose both
    layers through one stats object (``XmlDatabase.index_stats``) stamp
    the buffer pool's pinned-frame high-water mark here.
    """

    hits: int = 0
    misses: int = 0
    loads: int = 0
    creations: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0
    max_pinned: int = 0

    @property
    def requests(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        if not self.requests:
            return 0.0
        return self.hits / self.requests

    def reset(self):
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self.creations = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0
        self.max_pinned = 0

    def snapshot(self):
        return IndexManagerStats(self.hits, self.misses, self.loads,
                                 self.creations, self.evictions,
                                 self.writebacks, self.invalidations,
                                 self.max_pinned)


class IndexHandle:
    """One cached live structure plus its write-back state."""

    __slots__ = ("name", "kind", "structure", "dirty", "persisted")

    def __init__(self, name, kind, structure, dirty, persisted):
        self.name = name
        self.kind = kind
        self.structure = structure
        self.dirty = dirty
        self.persisted = persisted  # has a catalog entry on disk


class IndexManager:
    """LRU-cached, write-back handles over one catalog.

    ``capacity`` bounds the number of resident handles (the *handle
    budget*); the pages behind each structure are still governed by the
    buffer pool, so a tiny budget stresses the manager without starving
    the trees.
    """

    def __init__(self, catalog, pool=None, capacity=DEFAULT_HANDLE_BUDGET):
        if capacity < 1:
            raise IndexManagerError("handle budget must be at least 1")
        self._catalog = catalog
        self._pool = pool if pool is not None else catalog._pool
        self.capacity = capacity
        self.stats = IndexManagerStats()
        self._handles = OrderedDict()  # name -> IndexHandle, LRU order
        self._closed = False
        # Concurrent lookups are safe: the manager lock guards the cache
        # map, and a per-name lock serializes the load path so two threads
        # missing on the same tag cannot deserialize the catalog entry
        # twice (double-checked under the name lock).
        self._lock = threading.RLock()
        self._name_locks = {}

    # -- generic handle access -------------------------------------------------

    def _check_open(self):
        if self._closed:
            raise IndexManagerError("index manager is closed")

    def _get(self, name, kind, factory=None):
        """The cached handle for ``name``, loading or creating on miss.

        Returns None when the name is not catalogued and no ``factory``
        was given.
        """
        self._check_open()
        if kind not in _KINDS:
            raise IndexManagerError("unknown structure kind %r" % kind)
        with self._lock:
            handle = self._cached(name, kind)
            if handle is not None:
                return handle
            name_lock = self._name_locks.setdefault(name, threading.Lock())
        with name_lock:
            with self._lock:
                # A racer may have loaded it while we waited on the
                # name lock.
                handle = self._cached(name, kind)
                if handle is not None:
                    return handle
                self.stats.misses += 1
            loader = getattr(self._catalog, _KINDS[kind][0])
            try:
                structure = loader(name)
            except CatalogError:
                if name in self._catalog.names():
                    # Catalogued, but as another kind: surface the conflict
                    # instead of shadowing the entry with a fresh structure.
                    raise IndexManagerError(
                        "catalogued structure %r is not a %s" % (name, kind)
                    )
                if factory is None:
                    return None
                structure = factory()
                handle = IndexHandle(name, kind, structure,
                                     dirty=True, persisted=False)
            else:
                handle = IndexHandle(name, kind, structure,
                                     dirty=False, persisted=True)
            with self._lock:
                if handle.persisted:
                    self.stats.loads += 1
                else:
                    self.stats.creations += 1
                self._admit(handle)
            return handle

    def _cached(self, name, kind):
        """The resident handle for ``name`` (counted as a hit), or None.

        Caller holds the manager lock.
        """
        handle = self._handles.get(name)
        if handle is None:
            return None
        if handle.kind != kind:
            raise IndexManagerError(
                "cached handle %r is a %s, not a %s"
                % (name, handle.kind, kind)
            )
        self.stats.hits += 1
        self._handles.move_to_end(name)
        return handle

    def _admit(self, handle):
        while len(self._handles) >= self.capacity:
            _name, victim = self._handles.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self._writeback(victim)
        self._handles[handle.name] = handle

    def _writeback(self, handle):
        saver = getattr(self._catalog, _KINDS[handle.kind][1])
        saver(handle.name, handle.structure)
        handle.dirty = False
        handle.persisted = True
        self.stats.writebacks += 1

    # -- typed access ----------------------------------------------------------

    def get_xrtree(self, name):
        """The live XR-tree catalogued as ``name``, or None."""
        handle = self._get(name, "xr-tree")
        return handle.structure if handle is not None else None

    def get_or_create_xrtree(self, name, **tree_options):
        """The live XR-tree for ``name``, creating an empty one if absent.

        A created tree is registered dirty; its catalog entry materializes
        on the next write-back.
        """
        def factory():
            from repro.indexes.xrtree import XRTree

            return XRTree(self._pool, **tree_options)

        return self._get(name, "xr-tree", factory).structure

    def get_bptree(self, name):
        """The live B+-tree catalogued as ``name``, or None."""
        handle = self._get(name, "b+tree")
        return handle.structure if handle is not None else None

    def get_or_create_bptree(self, name, **tree_options):
        def factory():
            from repro.indexes.bptree import BPlusTree

            return BPlusTree(self._pool, **tree_options)

        return self._get(name, "b+tree", factory).structure

    def get_element_list(self, name):
        """The paged element list catalogued as ``name``, or None."""
        handle = self._get(name, "element-list")
        return handle.structure if handle is not None else None

    # -- lifecycle -------------------------------------------------------------

    def mark_dirty(self, name):
        """Record that ``name``'s structure is about to be mutated.

        Must be called while the handle is resident (i.e. right after the
        ``get`` that returned it); raises if the handle is not cached.
        """
        self._check_open()
        with self._lock:
            handle = self._handles.get(name)
            if handle is None:
                raise IndexManagerError(
                    "mark_dirty(%r): handle not resident; fetch it first"
                    % name
                )
            handle.dirty = True

    def is_dirty(self, name):
        with self._lock:
            handle = self._handles.get(name)
            return bool(handle and handle.dirty)

    def flush(self, name=None):
        """Write dirty handle metadata back to the catalog.

        Flushes one handle when ``name`` is given, every dirty handle
        otherwise.  Handles stay resident.  Returns the number of
        write-backs performed.

        A write-back that fails does not abandon the rest: every dirty
        handle is attempted, failed ones stay dirty, and one
        :class:`IndexManagerError` naming each unflushed handle is raised
        at the end (chained to the first underlying failure).  Only
        :class:`~repro.storage.errors.StorageError` is collected this way —
        anything else (e.g. an injected crash) propagates immediately.
        """
        self._check_open()
        with self._lock:
            if name is not None:
                handles = ([self._handles[name]]
                           if name in self._handles else [])
            else:
                handles = list(self._handles.values())
        written = 0
        failures = []
        for handle in handles:
            if handle.dirty:
                try:
                    self._writeback(handle)
                except StorageError as exc:
                    failures.append((handle.name, exc))
                else:
                    written += 1
        if failures:
            names = ", ".join(repr(n) for n, _ in failures)
            error = IndexManagerError(
                "flush failed for %d handle(s) — still dirty: %s (first "
                "cause: %s)" % (len(failures), names, failures[0][1])
            )
            error.failed = [n for n, _ in failures]
            raise error from failures[0][1]
        return written

    def discard(self, name):
        """Drop a cached handle *without* write-back (cache invalidation).

        The catalog entry, if any, is untouched; a later ``get`` reloads
        from the catalog.  Unknown names are ignored.
        """
        self._check_open()
        with self._lock:
            if self._handles.pop(name, None) is not None:
                self.stats.invalidations += 1

    def drop(self, name):
        """Remove ``name`` entirely: the cached handle and the catalog entry.

        Used to tombstone structures that became empty (e.g. a tag whose
        last element was deleted).  Tolerates handles that were created but
        never written back, and names that are not resident.
        """
        self._check_open()
        with self._lock:
            handle = self._handles.pop(name, None)
            if handle is not None:
                self.stats.invalidations += 1
        if handle is None or handle.persisted:
            try:
                self._catalog.remove(name)
            except CatalogError:
                if handle is not None:
                    raise

    def close(self):
        """Flush every dirty handle and release the cache (idempotent)."""
        if self._closed:
            return
        self.flush()
        with self._lock:
            self._handles.clear()
            self._closed = True

    @property
    def closed(self):
        return self._closed

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    # -- introspection ---------------------------------------------------------

    def __contains__(self, name):
        return name in self._handles

    def __len__(self):
        return len(self._handles)

    def resident(self):
        """Cached names in LRU order (oldest first), with dirty flags."""
        with self._lock:
            return [(handle.name, handle.dirty)
                    for handle in self._handles.values()]
