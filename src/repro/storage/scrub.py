"""Online integrity scrubbing: budgeted verification, quarantine, rebuild.

PR 2 gave every page a CRC-32 that is verified on buffer-pool miss — but a
flipped bit on a cold page is only *discovered* when some query happens to
fetch it, which means corruption surfaces as a :class:`~repro.storage.\
errors.ChecksumError` from deep inside a join loop, at the worst possible
moment.  The scrubber inverts that: a background pass walks the catalog
under an I/O budget, re-reads every page of every structure **from disk**
(through a private cold buffer pool, so resident clean frames cannot mask
on-disk rot), and verifies

* page checksums and typed decoding (every fetch through the cold pool),
* the full XR-tree invariant suite (:func:`~repro.indexes.xrtree.checker.\
  check_xrtree`) for xr-tree entries,
* leaf-chain/record-count consistency for B+-trees and element lists,
* blob chain integrity for blob entries.

A structure that fails any check is **quarantined**: its name lands in
:attr:`IntegrityScrubber.quarantined`, its cached handle is discarded from
the index manager, and (once the owner wires :meth:`is_quarantined` into
its lookup path, as :class:`~repro.core.database.XmlDatabase` does)
queries against it fail fast with :class:`IndexQuarantinedError` instead
of tripping over raw checksum errors mid-join.

A quarantined XR-tree can be **rebuilt** from its surviving element list:
the salvage pass walks every reachable page of the old tree, skipping
unreadable ones, collects the union of decodable leaf records (stab lists
hold copies of leaf elements, so leaves alone carry the full element set),
bulk-loads a fresh tree in the live pool and re-catalogues it under the
same name.  Records on corrupt leaf pages are lost — salvage recovers the
*surviving* elements, which is exactly what the name says.  The old
tree's pages are abandoned (space reclamation is future work).

Scheduling: :meth:`step` verifies catalog entries until the per-step I/O
budget is spent, remembering its cursor, so an owner can interleave scrub
slices with query traffic; :meth:`scrub_all` forces one full cycle.
"""

from dataclasses import dataclass, field

from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.errors import PageNotFoundError, StorageError

#: Frames in the private verification pool.  Small on purpose: every page
#: visit must be a miss (and hence a checksum verification), and the pool
#: exists only while one structure is being checked.
SCRUB_POOL_FRAMES = 16


class IndexQuarantinedError(StorageError):
    """A query touched an index the scrubber has quarantined.

    Fails fast — before any join starts — instead of letting a
    :class:`~repro.storage.errors.ChecksumError` surface mid-join.
    """

    def __init__(self, name, reason=None):
        message = "index %r is quarantined" % name
        if reason:
            message += " (%s)" % reason
        super().__init__(message)
        self.name = name
        self.reason = reason


@dataclass
class ScrubReport:
    """What one scrub step (or full cycle) did.

    ``entries_checked`` counts catalog entries verified this step;
    ``pages_read`` counts cold page reads performed (the I/O the budget
    governs); ``clean``/``corrupt`` name the entries by outcome;
    ``quarantined`` names entries *newly* quarantined this step;
    ``cycle_complete`` is True when the walk wrapped around the catalog.
    """

    entries_checked: int = 0
    pages_read: int = 0
    clean: list = field(default_factory=list)
    corrupt: list = field(default_factory=list)
    quarantined: list = field(default_factory=list)
    skipped: list = field(default_factory=list)
    cycle_complete: bool = False

    def merge(self, other):
        self.entries_checked += other.entries_checked
        self.pages_read += other.pages_read
        self.clean.extend(other.clean)
        self.corrupt.extend(other.corrupt)
        self.quarantined.extend(other.quarantined)
        self.skipped.extend(other.skipped)
        self.cycle_complete = self.cycle_complete or other.cycle_complete
        return self


@dataclass
class RebuildResult:
    """Outcome of one :meth:`IntegrityScrubber.rebuild`."""

    name: str
    salvaged: int
    lost_pages: int
    verified: bool


class IntegrityScrubber:
    """Incremental catalog-wide integrity verification over one disk.

    ``catalog`` and ``pool`` are the *live* catalog and buffer pool (the
    scrubber flushes them before reading, so on-disk images are current);
    ``manager`` is the optional :class:`~repro.storage.indexmanager.\
    IndexManager` whose cached handles must be discarded when their
    backing structure is quarantined or rebuilt.  ``io_budget`` is the
    default per-:meth:`step` page-read allowance (None = unbounded).
    """

    def __init__(self, catalog, pool, manager=None, io_budget=None):
        self._catalog = catalog
        self._pool = pool
        self._manager = manager
        self.io_budget = io_budget
        self.quarantined = {}  # name -> reason string
        self._pending = []     # names left in the current cycle
        self.cycles_completed = 0
        # Lifetime counters (scalar, so a long-running scrubber cannot
        # accumulate unbounded per-entry lists the way a merged
        # ScrubReport would).
        self.total_entries_checked = 0
        self.total_pages_read = 0
        self.total_clean = 0
        self.total_corrupt = 0

    # -- quarantine ----------------------------------------------------------

    def is_quarantined(self, name):
        return name in self.quarantined

    def quarantine(self, name, reason):
        """Mark ``name`` unusable and drop its cached handle, if any."""
        self.quarantined[name] = reason
        if self._manager is not None:
            self._manager.discard(name)

    def clear_quarantine(self, name):
        self.quarantined.pop(name, None)

    # -- scheduling ----------------------------------------------------------

    def step(self, io_budget=None):
        """Verify catalog entries until the I/O budget is spent.

        Resumes where the previous step left off; a cycle ends when every
        catalogued name has been visited once, after which the next step
        starts a fresh cycle (picking up newly catalogued names).
        Returns a :class:`ScrubReport` for this step.
        """
        budget = self.io_budget if io_budget is None else io_budget
        report = ScrubReport()
        self._sync_to_disk()
        if not self._pending:
            self._pending = sorted(self._catalog.names())
        while self._pending:
            if budget is not None and report.pages_read >= budget:
                return self._account(report)
            name = self._pending.pop(0)
            if name in self.quarantined:
                report.skipped.append(name)
                continue
            self._verify_one(name, report)
        report.cycle_complete = True
        self.cycles_completed += 1
        return self._account(report)

    def _account(self, report):
        """Fold one step's report into the lifetime counters."""
        self.total_entries_checked += report.entries_checked
        self.total_pages_read += report.pages_read
        self.total_clean += len(report.clean)
        self.total_corrupt += len(report.corrupt)
        return report

    def stats(self):
        """Lifetime scrub counters as one plain dict."""
        return {
            "entries_checked": self.total_entries_checked,
            "pages_read": self.total_pages_read,
            "clean": self.total_clean,
            "corrupt": self.total_corrupt,
            "quarantined": len(self.quarantined),
            "cycles_completed": self.cycles_completed,
        }

    def scrub_all(self):
        """One full catalog cycle regardless of the per-step budget."""
        self._pending = []
        report = self.step(io_budget=None)
        return report

    # -- verification --------------------------------------------------------

    def _sync_to_disk(self):
        """Push live state down so cold reads see current images."""
        if self._manager is not None and not self._manager.closed:
            self._manager.flush()
        self._pool.flush_all()

    def _cold_pool(self):
        """A fresh pool on the same disk: every fetch is a verified miss."""
        return BufferPool(self._pool.disk, capacity=SCRUB_POOL_FRAMES)

    def _verify_one(self, name, report):
        kinds = self._catalog.names()
        kind = kinds.get(name)
        if kind is None:  # vanished between listing and visit
            report.skipped.append(name)
            return
        pool = self._cold_pool()
        shadow = Catalog(pool, self._catalog.page_id)
        try:
            self._check_structure(shadow, name, kind)
        except StorageError as exc:
            report.corrupt.append(name)
            report.quarantined.append(name)
            self.quarantine(name, "%s: %s" % (type(exc).__name__, exc))
        else:
            report.clean.append(name)
        finally:
            report.entries_checked += 1
            report.pages_read += pool.stats.misses

    def _check_structure(self, shadow, name, kind):
        """Fully read ``name`` through the shadow catalog; raise on rot.

        Every page touched is a cold miss, so checksums and typed decoding
        are verified on the way in; structural invariants are layered on
        top per kind.
        """
        if kind == "xr-tree":
            from repro.indexes.xrtree import check_xrtree

            tree = shadow.load_xrtree(name)
            check_xrtree(tree)
        elif kind == "b+tree":
            tree = shadow.load_bptree(name)
            count = sum(1 for _ in tree.items())
            if count != tree.size:
                raise StorageError(
                    "b+tree %r leaf chain holds %d records, metadata "
                    "says %d" % (name, count, tree.size)
                )
        elif kind == "element-list":
            element_list = shadow.load_element_list(name)
            count = sum(1 for _ in element_list)
            if count != len(element_list):
                raise StorageError(
                    "element list %r holds %d records, metadata says %d"
                    % (name, count, len(element_list))
                )
        elif kind == "blob":
            shadow.load_blob(name)
        else:
            raise StorageError("unknown catalog kind %r for %r"
                               % (kind, name))

    # -- page enumeration and salvage ---------------------------------------

    def pages_of(self, name):
        """Every page id reachable from ``name``'s catalog entry.

        For XR-trees this includes internal nodes, leaves, stab-list
        chains and stab directories.  Unreadable pages are included (they
        are reachable — their *content* is what's broken); their subtrees
        are not expanded.  Used by fault-injection sweeps to aim bit-flips
        and by salvage to know what the old structure occupied.
        """
        _page, _index, entry = self._catalog._find(name)
        if entry is None:
            return []
        pool = self._cold_pool()
        return sorted(self._walk_pages(pool, entry["root"])[0])

    def _walk_pages(self, pool, root_id):
        """``(reachable_page_ids, salvaged_records, lost_pages)`` from a
        guarded traversal of an XR-tree (works for B+-trees too: their
        pages simply have no stab chains)."""
        from repro.indexes.xrtree.pages import XRInternalPage, XRLeafPage

        seen = set()
        records = {}
        lost = 0
        stack = [root_id]
        while stack:
            page_id = stack.pop()
            if not page_id or page_id in seen:
                continue
            seen.add(page_id)
            try:
                with pool.pinned(page_id) as page:
                    if isinstance(page, XRInternalPage):
                        stack.extend(page.children)
                        stack.append(page.sl_head)
                        stack.append(page.sl_dir)
                    elif isinstance(page, XRLeafPage):
                        for record in page.records:
                            records[record.start] = record
                        stack.append(page.next_id)
                    else:
                        # Stab-list / directory pages: follow the chain if
                        # one exists, record nothing (stab records are
                        # copies of leaf elements).
                        stack.append(getattr(page, "next_id", 0))
            except StorageError:
                lost += 1
        return seen, records, lost

    def _exclusion_salvage(self, name):
        """Last-resort salvage when the tree's root is unreadable.

        With the root gone the leaf chain's heads are unreachable, so this
        scans *every* allocated disk page instead, keeping element records
        from leaf and stab-list pages that no *other* catalogued structure
        owns.  Stab-list records are copies of leaf elements, so including
        the dead tree's stab pages only adds coverage, never noise.
        Returns ``(records_by_start, unreadable_pages)``.
        """
        from repro.indexes.xrtree.pages import StabListPage, XRLeafPage

        pool = self._cold_pool()
        owned = set(self._catalog._pages())
        for other in self._catalog.names():
            if other == name:
                continue
            _page, _index, entry = self._catalog._find(other)
            if entry is not None:
                owned |= self._walk_pages(pool, entry["root"])[0]
        records = {}
        lost = 0
        # _next_page_id is the disk's allocation bound; a disk without one
        # (no way to enumerate pages) simply cannot be exclusion-scanned.
        bound = getattr(self._pool.disk, "_next_page_id", 1)
        for page_id in range(1, bound):
            if page_id in owned:
                continue
            try:
                with pool.pinned(page_id) as page:
                    if isinstance(page, (XRLeafPage, StabListPage)):
                        for record in page.records:
                            records[record.start] = record
            except PageNotFoundError:
                continue  # freed page
            except StorageError:
                lost += 1
        return records, lost

    def rebuild(self, name):
        """Rebuild a (typically quarantined) XR-tree from surviving leaves.

        Salvages every decodable leaf record of the old tree, bulk-loads a
        fresh tree in the live pool, replaces the catalog entry, clears
        the quarantine and re-verifies the result.  Returns a
        :class:`RebuildResult`; raises :class:`~repro.storage.errors.\
        StorageError` if the catalog entry is missing or is not an
        XR-tree.
        """
        from repro.indexes.xrtree import XRTree, check_xrtree
        from repro.storage.catalog import CatalogError

        self._sync_to_disk()
        _page, _index, entry = self._catalog._find(name)
        if entry is None:
            raise StorageError("cannot rebuild %r: not catalogued" % name)
        if self._catalog.names().get(name) != "xr-tree":
            raise StorageError("cannot rebuild %r: not an xr-tree" % name)
        _seen, records, lost = self._walk_pages(self._cold_pool(),
                                                entry["root"])
        if not records:
            # The walk found nothing — the root (or the whole upper tree)
            # is unreadable.  Fall back to the disk-wide exclusion scan.
            records, extra_lost = self._exclusion_salvage(name)
            lost += extra_lost
        survivors = [records[start].with_flag(False)
                     for start in sorted(records)]
        if self._manager is not None:
            self._manager.discard(name)
        try:
            self._catalog.remove(name)
        except CatalogError:
            pass
        tree = XRTree(self._pool)
        if survivors:
            tree.bulk_load(survivors)
        self._catalog.save_xrtree(name, tree)
        self._pool.flush_all()
        check_xrtree(tree)
        self.clear_quarantine(name)
        # Confirm the persisted image round-trips cleanly from disk.
        report = ScrubReport()
        self._verify_one(name, report)
        return RebuildResult(name, len(survivors), lost,
                             verified=name in report.clean)
