"""Simulated page-granular disks with physical I/O accounting.

Two implementations are provided behind a common abstract interface:

* :class:`InMemoryDisk` — pages live in a Python dict; fast, used by tests and
  benchmarks.  I/O counters still tick, so page-miss accounting is identical
  to the file-backed variant.
* :class:`FileDisk` — pages live in a real file on the local filesystem,
  written with ``os.pwrite``-style positioned I/O.  Used by the examples that
  demonstrate persistence.

The paper's testbed performed direct disk I/O on Windows XP; the relevant
observable for the evaluation is the *number* of physical page transfers,
which both implementations count exactly.
"""

import os
from dataclasses import dataclass, field

from repro.storage.errors import PageNotFoundError, StorageError

DEFAULT_PAGE_SIZE = 4096


@dataclass
class IOStats:
    """Counters for physical page transfers performed by a disk."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0

    def reset(self):
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.frees = 0

    @property
    def total_transfers(self):
        """Total physical page movements (reads + writes)."""
        return self.reads + self.writes

    def snapshot(self):
        """Return an independent copy of the current counter values."""
        return IOStats(self.reads, self.writes, self.allocations, self.frees)

    def delta(self, earlier):
        """Counters accumulated since the ``earlier`` snapshot."""
        return IOStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.allocations - earlier.allocations,
            self.frees - earlier.frees,
        )


class SimulatedDisk:
    """Abstract page-granular disk.

    Pages are fixed-size byte blocks addressed by integer page ids.  Page id 0
    is reserved so that 0 can serve as a nil pointer in on-disk structures.
    """

    def __init__(self, page_size=DEFAULT_PAGE_SIZE):
        if page_size < 64:
            raise StorageError("page size %d is too small" % page_size)
        self.page_size = page_size
        self.stats = IOStats()
        self._next_page_id = 1
        self._freed = []

    # -- allocation ---------------------------------------------------------

    def allocate(self):
        """Reserve a fresh page id (contents undefined until first write)."""
        self.stats.allocations += 1
        if self._freed:
            page_id = self._freed.pop()
        else:
            page_id = self._next_page_id
            self._next_page_id += 1
        self._on_allocate(page_id)
        return page_id

    def free(self, page_id):
        """Release a page id for reuse."""
        self._check_exists(page_id)
        self.stats.frees += 1
        self._on_free(page_id)
        self._freed.append(page_id)

    # -- transfers ----------------------------------------------------------

    def read(self, page_id):
        """Read one physical page; returns exactly ``page_size`` bytes."""
        self._check_exists(page_id)
        self.stats.reads += 1
        return self._read(page_id)

    def write(self, page_id, data):
        """Write one physical page; ``data`` is padded to ``page_size``."""
        self._check_exists(page_id)
        if len(data) > self.page_size:
            raise StorageError(
                "page payload of %d bytes exceeds page size %d"
                % (len(data), self.page_size)
            )
        self.stats.writes += 1
        if len(data) < self.page_size:
            data = bytes(data) + b"\x00" * (self.page_size - len(data))
        self._write(page_id, bytes(data))

    @property
    def allocated_page_count(self):
        """Number of currently live (allocated, un-freed) pages."""
        return self._next_page_id - 1 - len(self._freed)

    # -- hooks for concrete disks -------------------------------------------

    def _on_allocate(self, page_id):
        raise NotImplementedError

    def _on_free(self, page_id):
        raise NotImplementedError

    def _read(self, page_id):
        raise NotImplementedError

    def _write(self, page_id, data):
        raise NotImplementedError

    def _check_exists(self, page_id):
        raise NotImplementedError


class InMemoryDisk(SimulatedDisk):
    """Disk whose pages live in a dictionary."""

    def __init__(self, page_size=DEFAULT_PAGE_SIZE):
        super().__init__(page_size)
        self._pages = {}

    def _on_allocate(self, page_id):
        self._pages[page_id] = bytes(self.page_size)

    def _on_free(self, page_id):
        del self._pages[page_id]

    def _read(self, page_id):
        return self._pages[page_id]

    def _write(self, page_id, data):
        self._pages[page_id] = data

    def _check_exists(self, page_id):
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)


class FileDisk(SimulatedDisk):
    """Disk whose pages live in a single file.

    The file grows as pages are allocated; freed pages are tracked in memory
    and recycled.  This class demonstrates that every structure in the library
    round-trips through real bytes, not just Python objects.
    """

    def __init__(self, path, page_size=DEFAULT_PAGE_SIZE):
        super().__init__(page_size)
        self._path = path
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        # Reopening an existing file: every page in it is live again (the
        # free list does not survive a close; freed pages are simply not
        # recycled across sessions).
        existing = os.fstat(self._fd).st_size // page_size
        self._live = set(range(1, existing + 1))
        self._next_page_id = existing + 1

    @property
    def closed(self):
        return self._fd is None

    def close(self):
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    def _offset(self, page_id):
        return (page_id - 1) * self.page_size

    def _on_allocate(self, page_id):
        self._live.add(page_id)
        os.pwrite(self._fd, bytes(self.page_size), self._offset(page_id))

    def _on_free(self, page_id):
        self._live.discard(page_id)

    def _read(self, page_id):
        return os.pread(self._fd, self.page_size, self._offset(page_id))

    def _write(self, page_id, data):
        os.pwrite(self._fd, data, self._offset(page_id))

    def _check_exists(self, page_id):
        if page_id not in self._live:
            raise PageNotFoundError(page_id)
