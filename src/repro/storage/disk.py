"""Simulated page-granular disks with physical I/O accounting.

Two implementations are provided behind a common abstract interface:

* :class:`InMemoryDisk` — pages live in a Python dict; fast, used by tests and
  benchmarks.  I/O counters still tick, so page-miss accounting is identical
  to the file-backed variant.
* :class:`FileDisk` — pages live in a real file on the local filesystem,
  written with ``os.pwrite``-style positioned I/O, fronted by a superblock
  and a write-ahead journal (:mod:`repro.storage.journal`) so that every
  ``sync()`` is an atomic multi-page commit and a crash at any instant
  either replays or discards a whole commit group on reopen.

The paper's testbed performed direct disk I/O on Windows XP; the relevant
observable for the evaluation is the *number* of physical page transfers,
which both implementations count exactly.
"""

import errno
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field

from repro.storage.errors import (
    DiskFullError,
    PageNotFoundError,
    RecoveryError,
    StorageError,
    TransientIOError,
)
from repro.storage.journal import Archive, Journal
from repro.storage.versions import PageVersionStore

DEFAULT_PAGE_SIZE = 4096


@dataclass
class IOStats:
    """Counters for physical page transfers performed by a disk."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0

    def reset(self):
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.frees = 0

    @property
    def total_transfers(self):
        """Total physical page movements (reads + writes)."""
        return self.reads + self.writes

    def snapshot(self):
        """Return an independent copy of the current counter values."""
        return IOStats(self.reads, self.writes, self.allocations, self.frees)

    def delta(self, earlier):
        """Counters accumulated since the ``earlier`` snapshot."""
        return IOStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.allocations - earlier.allocations,
            self.frees - earlier.frees,
        )


class SimulatedDisk:
    """Abstract page-granular disk.

    Pages are fixed-size byte blocks addressed by integer page ids.  Page id 0
    is reserved so that 0 can serve as a nil pointer in on-disk structures.
    """

    #: Whether :meth:`pin_snapshot` works on this disk.  Overridden by
    #: :class:`FileDisk` for ``durability="none"`` (in-place writes destroy
    #: committed images, so there is nothing consistent to pin).
    supports_snapshots = True

    def __init__(self, page_size=DEFAULT_PAGE_SIZE):
        if page_size < 64:
            raise StorageError("page size %d is too small" % page_size)
        self.page_size = page_size
        self.stats = IOStats()
        self._next_page_id = 1
        self._freed = []
        self._commit_seq = 0
        #: Pre-commit page images retained for pinned snapshots.
        self.versions = PageVersionStore()
        #: Serializes commits against snapshot pin/read/release.  Held for
        #: the whole apply so a concurrent reader can never see a torn or
        #: half-applied commit group.
        self._commit_lock = threading.RLock()

    # -- allocation ---------------------------------------------------------

    def allocate(self):
        """Reserve a fresh page id (contents undefined until first write)."""
        self.stats.allocations += 1
        if self._freed:
            page_id = self._freed.pop()
        else:
            page_id = self._next_page_id
            self._next_page_id += 1
        self._on_allocate(page_id)
        return page_id

    def free(self, page_id):
        """Release a page id for reuse."""
        self._check_exists(page_id)
        self.stats.frees += 1
        self._on_free(page_id)
        self._freed.append(page_id)

    # -- transfers ----------------------------------------------------------

    def read(self, page_id):
        """Read one physical page; returns exactly ``page_size`` bytes."""
        self._check_exists(page_id)
        self.stats.reads += 1
        return self._read(page_id)

    def write(self, page_id, data):
        """Write one physical page; ``data`` is padded to ``page_size``."""
        self._check_exists(page_id)
        if len(data) > self.page_size:
            raise StorageError(
                "page payload of %d bytes exceeds page size %d"
                % (len(data), self.page_size)
            )
        self.stats.writes += 1
        if len(data) < self.page_size:
            data = bytes(data) + b"\x00" * (self.page_size - len(data))
        self._write(page_id, bytes(data))

    @property
    def allocated_page_count(self):
        """Number of currently live (allocated, un-freed) pages."""
        return self._next_page_id - 1 - len(self._freed)

    # -- snapshots -----------------------------------------------------------

    @property
    def commit_sequence(self):
        """Sequence number of the last committed group."""
        return self._commit_seq

    def pin_snapshot(self):
        """Pin the last committed sequence and return it.

        Until the matching :meth:`release_snapshot`, :meth:`read_snapshot`
        at the returned sequence keeps returning the page images that were
        committed as of this call, no matter how many commit groups land
        on top — the disk retains pre-commit copies of every page those
        later commits overwrite.  Writes staged but not yet synced are
        invisible to the pin, exactly as they would be to a crash.
        """
        if not self.supports_snapshots:
            raise StorageError(
                "snapshots need a commit point; durability=\"none\" writes "
                "in place and cannot pin one"
            )
        with self._commit_lock:
            return self.versions.pin(self._commit_seq)

    def release_snapshot(self, sequence):
        """Release one pin taken by :meth:`pin_snapshot`; pre-images kept
        only for older pins are pruned immediately."""
        with self._commit_lock:
            self.versions.release(sequence)

    def read_snapshot(self, page_id, sequence):
        """Read a page as committed at pinned ``sequence``.

        Counts as one physical read.  The caller must hold a pin on
        ``sequence``; no liveness check is made against the *current*
        allocation table, because a page freed after the pin is exactly
        the kind of page a snapshot must still be able to read.
        """
        with self._commit_lock:
            image = self.versions.lookup(page_id, sequence)
            if image is None:
                image = self._committed_image(page_id)
            self.stats.reads += 1
            return image

    def _committed_image(self, page_id):
        """The live committed image of a page (staged writes excluded)."""
        raise NotImplementedError

    # -- test hooks ----------------------------------------------------------

    def peek(self, page_id):
        """Raw bytes of a page, bypassing the I/O counters (test hook).

        For a :class:`FileDisk` this reads the *persisted* image, ignoring
        any writes staged since the last ``sync()`` — what a crashed
        process's successor would see.
        """
        self._check_exists(page_id)
        return self._peek(page_id)

    def poke(self, page_id, data):
        """Overwrite a page's raw bytes, bypassing counters and journaling
        (test hook: simulates media corruption happening under the engine).
        """
        self._check_exists(page_id)
        if len(data) > self.page_size:
            raise StorageError(
                "poke payload of %d bytes exceeds page size %d"
                % (len(data), self.page_size)
            )
        if len(data) < self.page_size:
            data = bytes(data) + b"\x00" * (self.page_size - len(data))
        self._poke(page_id, bytes(data))

    # -- hooks for concrete disks -------------------------------------------

    def _on_allocate(self, page_id):
        raise NotImplementedError

    def _on_free(self, page_id):
        raise NotImplementedError

    def _read(self, page_id):
        raise NotImplementedError

    def _write(self, page_id, data):
        raise NotImplementedError

    def _check_exists(self, page_id):
        raise NotImplementedError

    def _peek(self, page_id):
        return self._read(page_id)

    def _poke(self, page_id, data):
        self._write(page_id, data)


class InMemoryDisk(SimulatedDisk):
    """Disk whose pages live in a dictionary.

    Writes are staged in ``_pending`` and folded into the committed page
    dict by :meth:`sync`, mirroring :class:`FileDisk`'s journal-mode
    commit points so snapshots (:meth:`pin_snapshot`) work identically on
    both disks.  Unlike the file-backed disk there is no durability story
    — ``sync`` never touches the filesystem — and reads always see staged
    writes first, so single-threaded callers that never sync observe the
    exact pre-staging behavior.
    """

    def __init__(self, page_size=DEFAULT_PAGE_SIZE):
        super().__init__(page_size)
        self._pages = {}
        self._pending = {}
        self._pending_frees = set()

    def sync(self):
        """Fold staged writes and frees into the committed images as one
        commit group; returns the number of pages committed."""
        with self._commit_lock:
            if not self._pending and not self._pending_frees:
                return 0
            self._commit_seq += 1
            upto = self._commit_seq - 1
            pinned = self.versions.pinned
            for page_id, data in self._pending.items():
                if pinned:
                    old = self._pages.get(page_id)
                    if old is not None:
                        self.versions.record(page_id, upto, old)
                self._pages[page_id] = data
            for page_id in self._pending_frees:
                old = self._pages.pop(page_id, None)
                if pinned and old is not None:
                    self.versions.record(page_id, upto, old)
            committed = len(self._pending)
            self._pending.clear()
            self._pending_frees.clear()
            return committed

    def _on_allocate(self, page_id):
        # Allocation stages zeroes like any other write: committed images
        # change only at sync(), so a snapshot pinned mid-transaction
        # still reads the old content of a recycled page id.
        self._pending_frees.discard(page_id)
        self._pending[page_id] = bytes(self.page_size)

    def _on_free(self, page_id):
        # The free itself is staged too — the committed image must stay
        # readable (by snapshots pinned *after* this free but before the
        # commit that contains it) until sync() retires it, recording the
        # pre-image for any pins then outstanding.
        with self._commit_lock:
            self._pending.pop(page_id, None)
            if page_id in self._pages:
                self._pending_frees.add(page_id)

    def _read(self, page_id):
        staged = self._pending.get(page_id)
        if staged is not None:
            return staged
        return self._pages[page_id]

    def _write(self, page_id, data):
        self._pending[page_id] = data

    def _poke(self, page_id, data):
        """Corrupt the committed image, dropping any staged write."""
        self._pending.pop(page_id, None)
        self._pages[page_id] = data

    def _committed_image(self, page_id):
        image = self._pages.get(page_id)
        if image is None:
            raise PageNotFoundError(page_id)
        return image

    def _check_exists(self, page_id):
        if page_id in self._pending:
            return
        if page_id not in self._pages or page_id in self._pending_frees:
            raise PageNotFoundError(page_id)


@dataclass
class RecoveryStats:
    """What recovery-on-open found and did (``FileDisk.recovery_stats``)."""

    replayed_groups: int = 0
    replayed_pages: int = 0
    discarded_groups: int = 0
    free_pages_recovered: int = 0
    leaked_pages: int = 0
    #: Non-empty journal/archive groups that failed to decode (torn or
    #: corrupt).  Always <= ``discarded_groups``; surfaced separately so a
    #: silent discard is still observable (``journal_torn_groups`` metric).
    torn_groups: int = 0

    @property
    def clean(self):
        """True when the file needed no journal replay or discard."""
        return not (self.replayed_groups or self.discarded_groups)


@dataclass
class DurabilityStats:
    """Physical write accounting behind the logical ``IOStats`` counters."""

    commits: int = 0
    journal_pages: int = 0   # page images written to the journal file
    archived_pages: int = 0  # page images written to archive segments
    applied_pages: int = 0   # page images applied to the data file
    direct_pages: int = 0    # in-place writes (durability="none" only)
    superblock_writes: int = 0

    @property
    def physical_page_writes(self):
        """Total page-sized writes that reached the operating system."""
        return (self.journal_pages + self.archived_pages + self.applied_pages
                + self.direct_pages + self.superblock_writes)


#: On-disk superblock layout: magic, version, crc, page size, commit
#: sequence, next page id, free-list length, leaked-page count; the free
#: list (u32 page ids) follows.  The crc is a CRC-32 of the whole
#: superblock image with the crc field zeroed, as for regular pages.
_SUPERBLOCK = struct.Struct("<4sHIIQQII")
_SUPERBLOCK_MAGIC = b"XRSB"
_SUPERBLOCK_VERSION = 1
_SB_CRC_OFFSET = 6  # after magic (4s) + version (H)
_FREE_ID = struct.Struct("<I")


def decode_superblock(image):
    """Decode a superblock page image into a plain dict (checks included).

    ``image`` must hold the full superblock page (its own ``page_size``
    field tells how long that is).  Raises
    :class:`~repro.storage.errors.RecoveryError` on a bad magic, version
    or CRC — the checks backups and log shipping rely on to refuse a
    corrupt base.
    """
    if len(image) < _SUPERBLOCK.size:
        raise RecoveryError("superblock image is %d bytes; header needs %d"
                            % (len(image), _SUPERBLOCK.size))
    (magic, version, stored_crc, page_size, seq, next_id,
     free_count, leaked) = _SUPERBLOCK.unpack_from(image, 0)
    if magic != _SUPERBLOCK_MAGIC:
        raise RecoveryError("no superblock magic")
    if version != _SUPERBLOCK_VERSION:
        raise RecoveryError("superblock version %d unsupported" % version)
    if len(image) < page_size:
        raise RecoveryError("superblock image is %d bytes; page size is %d"
                            % (len(image), page_size))
    page = bytearray(image[:page_size])
    struct.pack_into("<I", page, _SB_CRC_OFFSET, 0)
    if zlib.crc32(bytes(page)) & 0xFFFFFFFF != stored_crc:
        raise RecoveryError("superblock checksum mismatch")
    return {
        "page_size": page_size,
        "sequence": seq,
        "next_page_id": next_id,
        "free_count": free_count,
        "leaked": leaked,
    }


class FileDisk(SimulatedDisk):
    """Disk whose pages live in a single file, with crash-safe commits.

    The file starts with a superblock (at offset 0; page ``n`` lives at
    offset ``n * page_size``) recording the allocation frontier and the
    free list, so freed pages survive a close and are recycled across
    sessions.  With ``durability="journal"`` (the default) writes are
    *staged* in memory and made durable only by :meth:`sync`, which
    commits every staged page plus the new superblock as one atomic group
    through a write-ahead journal (``<path>.journal``): journal + fsync,
    apply + fsync, clear.  Reopening the file replays a committed group
    the crash left unapplied, or discards a torn one, and reports what it
    did in :attr:`recovery_stats`.

    ``durability="archive"`` commits exactly like journal mode, but each
    group is written to its own sequence-numbered segment file in an
    archive directory (``<path>.archive`` by default) and *kept* after
    being applied — the replay stream consumed by hot backups,
    point-in-time recovery (:mod:`repro.storage.backup`) and standby
    replicas (:mod:`repro.storage.replication`).

    ``durability="none"`` is the unjournaled baseline: writes go in place
    immediately and only the superblock is maintained — a crash can tear
    pages (detected later by page checksums, but not repaired).
    """

    def __init__(self, path, page_size=DEFAULT_PAGE_SIZE,
                 durability="journal", archive_dir=None):
        if durability not in ("journal", "archive", "none"):
            raise StorageError("unknown durability mode %r" % durability)
        super().__init__(page_size)
        self._path = path
        self.durability = durability
        self.journaled = durability != "none"
        self.recovery_stats = RecoveryStats()
        self.durability_stats = DurabilityStats()
        #: Physical-write interception hook installed by
        #: :class:`~repro.storage.faults.FaultInjectingDisk` (or None).
        self.fault_hook = None
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        self._pending = {}       # page_id -> staged image (journal mode)
        self._meta_dirty = False
        self._commit_seq = 0
        self._live = set()
        self._journal = (Journal(path + ".journal", page_size,
                                 fault_filter=self._filter_physical)
                         if durability == "journal" else None)
        self._archive = (Archive(archive_dir or path + ".archive", page_size,
                                 fault_filter=self._filter_physical)
                         if durability == "archive" else None)
        if os.fstat(self._fd).st_size == 0:
            self._write_superblock_direct()
        else:
            self._recover()

    @property
    def archive(self):
        """The commit-group :class:`~repro.storage.journal.Archive`
        (``durability="archive"`` only; None otherwise)."""
        return self._archive

    @property
    def supports_snapshots(self):
        # In-place writes destroy committed images the moment they land,
        # so there is no stable state for a pin to name.
        return self.journaled

    @property
    def path(self):
        return self._path

    @property
    def closed(self):
        return self._fd is None

    def close(self):
        """Commit staged writes and release file descriptors (idempotent)."""
        if self._fd is not None:
            self.sync()
            os.close(self._fd)
            self._fd = None
        if self._journal is not None:
            self._journal.close()

    def abort(self):
        """Drop staged writes and close *without* committing.

        Simulates the process image vanishing: whatever the last ``sync``
        made durable is all a successor will see.  Used by the
        fault-injection harness after a :class:`CrashPoint`.
        """
        self._pending.clear()
        self._meta_dirty = False
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        if self._journal is not None:
            self._journal.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    # -- commit protocol -----------------------------------------------------

    def sync(self):
        """Make every write since the last sync durable; returns pages
        committed.

        In journal mode this is the atomic commit point: staged pages and
        the new superblock are journaled, fsynced, applied and fsynced, so
        a crash anywhere leaves either the previous or the new state.  In
        ``durability="none"`` mode only the superblock is rewritten.
        """
        if self._fd is None:
            raise StorageError("sync on a closed disk")
        if not self.journaled:
            if self._meta_dirty:
                self._write_superblock_direct()
            return 0
        if not self._pending and not self._meta_dirty:
            return 0
        # The commit lock spans the whole commit — sequence bump through
        # apply — so a concurrent pin_snapshot() can never name a sequence
        # whose pages are not yet (or only half) in the data file.
        with self._commit_lock:
            self._commit_seq += 1
            records = dict(self._pending)
            records[0] = self._superblock_image()
            try:
                if self._archive is not None:
                    self._archive.append(self._commit_seq, records)
                else:
                    self._journal.commit(self._commit_seq, records)
            except (TransientIOError, DiskFullError):
                # Nothing became durable (a transient fault fires before
                # any byte is written; the journal/archive cleans up its
                # partial file on ENOSPC), so the sequence number must
                # not be consumed — a retried sync() reuses it, keeping
                # the archive gap-free.  Staged writes stay in _pending
                # and the database remains readable throughout.
                self._commit_seq -= 1
                raise
            try:
                self._apply(records, preimage_upto=self._commit_seq - 1)
            except OSError as exc:
                if exc.errno != errno.ENOSPC:
                    raise
                # The group IS durable (journaled/archived) — a standby
                # may already have shipped it — so the sequence stays
                # consumed; rewriting it with different content would
                # fork history.  A retried sync() re-stages the same
                # pages under the next sequence and the idempotent apply
                # converges the data file.
                raise DiskFullError(
                    "applying commit group %d hit ENOSPC: %s"
                    % (self._commit_seq, exc)) from exc
        if self._journal is not None:
            self._journal.clear()
        self.durability_stats.commits += 1
        if self._journal is not None:
            self.durability_stats.journal_pages = self._journal.pages_journaled
        if self._archive is not None:
            self.durability_stats.archived_pages = \
                self._archive.pages_archived
        self._pending.clear()
        self._meta_dirty = False
        return len(records)

    def _apply(self, records, preimage_upto=None):
        with self._commit_lock:
            if preimage_upto is not None and self.versions.pinned:
                for page_id in records:
                    if page_id == 0:
                        continue  # snapshots never read the superblock
                    self.versions.record(page_id, preimage_upto,
                                         self._peek(page_id))
            for page_id in sorted(records):
                image = records[page_id]
                image, crash = self._filter_physical("apply", page_id, image)
                os.pwrite(self._fd, image, page_id * self.page_size)
                self.durability_stats.applied_pages += 1
                if crash:
                    self._crash()
            os.fsync(self._fd)

    def _filter_physical(self, kind, page_id, data):
        if self.fault_hook is None:
            return data, False
        return self.fault_hook(kind, page_id, data)

    def _crash(self):
        from repro.storage.faults import CrashPoint

        raise CrashPoint("killed during a physical page write")

    # -- superblock ----------------------------------------------------------

    def _superblock_image(self):
        capacity = (self.page_size - _SUPERBLOCK.size) // _FREE_ID.size
        persisted = self._freed[:capacity]
        leaked = len(self._freed) - len(persisted)
        if leaked:
            self.recovery_stats.leaked_pages += leaked
            self._freed = list(persisted)
        image = bytearray(self.page_size)
        _SUPERBLOCK.pack_into(
            image, 0, _SUPERBLOCK_MAGIC, _SUPERBLOCK_VERSION, 0,
            self.page_size, self._commit_seq, self._next_page_id,
            len(persisted), leaked,
        )
        offset = _SUPERBLOCK.size
        for page_id in persisted:
            _FREE_ID.pack_into(image, offset, page_id)
            offset += _FREE_ID.size
        crc = zlib.crc32(bytes(image)) & 0xFFFFFFFF
        struct.pack_into("<I", image, _SB_CRC_OFFSET, crc)
        return bytes(image)

    def _write_superblock_direct(self):
        image = self._superblock_image()
        image, crash = self._filter_physical("superblock", 0, image)
        os.pwrite(self._fd, image, 0)
        os.fsync(self._fd)
        self.durability_stats.superblock_writes += 1
        self._meta_dirty = False
        if crash:
            self._crash()

    def _load_superblock(self, count_stats=True):
        raw = os.pread(self._fd, self.page_size, 0)
        if len(raw) < _SUPERBLOCK.size:
            raise RecoveryError(
                "%s has no superblock (file is %d bytes; expected a "
                "%d-byte page at offset 0)" % (self._path, len(raw),
                                               self.page_size)
            )
        image = bytearray(raw.ljust(self.page_size, b"\x00"))
        (magic, version, stored_crc, page_size, seq, next_id,
         free_count, leaked) = _SUPERBLOCK.unpack_from(image, 0)
        if magic != _SUPERBLOCK_MAGIC:
            raise RecoveryError("%s has no superblock magic" % self._path)
        if version != _SUPERBLOCK_VERSION:
            raise RecoveryError("superblock version %d unsupported" % version)
        # The page-size check must precede the CRC check: the checksum
        # covers a full page of the *stored* size, so verifying it at
        # the wrong size fails first and masks the real mismatch.
        if page_size != self.page_size:
            raise StorageError(
                "%s was created with page size %d, opened with %d"
                % (self._path, page_size, self.page_size)
            )
        struct.pack_into("<I", image, _SB_CRC_OFFSET, 0)
        if zlib.crc32(bytes(image)) & 0xFFFFFFFF != stored_crc:
            raise RecoveryError("superblock checksum mismatch in %s"
                                % self._path)
        freed = []
        offset = _SUPERBLOCK.size
        for _ in range(free_count):
            freed.append(_FREE_ID.unpack_from(image, offset)[0])
            offset += _FREE_ID.size
        self._commit_seq = seq
        self._next_page_id = next_id
        self._freed = freed
        self._live = set(range(1, next_id)) - set(freed)
        if count_stats:
            self.recovery_stats.free_pages_recovered = len(freed)
            self.recovery_stats.leaked_pages += leaked

    # -- recovery-on-open ----------------------------------------------------

    def _recover(self):
        if self._journal is not None:
            group = self._journal.read_group()
            if group is not None:
                sequence, records = group
                known = self._peek_superblock_sequence()
                if known is None or sequence >= known:
                    self._replay(records)
                else:
                    self.recovery_stats.discarded_groups += 1
                self._journal.clear()
            elif self._journal.pending_bytes > 0:
                # Torn or corrupt group: never committed, discard it —
                # but count the tear instead of discarding silently.
                self.recovery_stats.discarded_groups += 1
                self.recovery_stats.torn_groups += self._journal.torn_groups
                self._journal.clear()
        if self._archive is not None:
            self._recover_from_archive()
        self._load_superblock()

    def _recover_from_archive(self):
        """Replay or discard the newest archived segment.

        Only the newest segment can be unapplied (every older one was
        fully applied before its successor was written); a torn newest
        segment was never acknowledged, so it is deleted and counted.
        An existing non-empty ``<path>.journal`` left by a previous
        journal-mode session is replayed first by the caller when the
        disk is opened in journal mode; archive mode refuses to open
        over a pending journal to avoid silently skipping it.
        """
        journal_path = self._path + ".journal"
        if os.path.exists(journal_path) and os.path.getsize(journal_path):
            raise RecoveryError(
                "%s has a pending journal; reopen once with "
                "durability=\"journal\" before switching to archive mode"
                % self._path
            )
        latest = self._archive.latest_sequence()
        if latest is None:
            return
        group = self._archive.read(latest)
        if group is None:
            self.recovery_stats.discarded_groups += 1
            self.recovery_stats.torn_groups += 1
            self._archive.remove(latest)
            return
        sequence, records = group
        known = self._peek_superblock_sequence()
        if known is None or sequence >= known:
            self._replay(records)
        # An already-applied segment stays in the archive: it is history,
        # not a pending intent.

    def _replay(self, records):
        for page_id in sorted(records):
            os.pwrite(self._fd, records[page_id],
                      page_id * self.page_size)
        os.fsync(self._fd)
        self.recovery_stats.replayed_groups += 1
        self.recovery_stats.replayed_pages += len(records)

    # -- standby apply -------------------------------------------------------

    def apply_group(self, sequence, records):
        """Apply one shipped commit group to this disk (standby path).

        The group must include the superblock (page id 0) — every
        ``sync()`` group does — so applying it moves this file to the
        primary's exact post-commit state, allocation metadata included.
        Applying is idempotent: a retry after a
        :class:`~repro.storage.errors.TransientIOError` re-writes the same
        images.  Refuses to run over staged local writes (a standby must
        be read-only) or to move backwards past the current sequence.
        """
        if self._fd is None:
            raise StorageError("apply_group on a closed disk")
        if self._pending or self._meta_dirty:
            raise StorageError(
                "apply_group over staged local writes (standby disks "
                "must be read-only)"
            )
        if 0 not in records:
            raise StorageError(
                "commit group %d has no superblock record" % sequence)
        if sequence < self._commit_seq:
            raise StorageError(
                "apply_group sequence %d behind current commit %d"
                % (sequence, self._commit_seq)
            )
        with self._commit_lock:
            # Pre-apply, this disk's state is its own commit sequence —
            # pins taken here (a standby can serve snapshot reads too)
            # keep images valid up to that sequence.
            self._apply(records, preimage_upto=self._commit_seq)
            self._load_superblock(count_stats=False)
        return len(records)

    def _peek_superblock_sequence(self):
        """The committed superblock's sequence number, or None if unreadable."""
        try:
            raw = os.pread(self._fd, self.page_size, 0)
            if len(raw) < _SUPERBLOCK.size:
                return None
            image = bytearray(raw.ljust(self.page_size, b"\x00"))
            (magic, version, stored_crc, _ps, seq, _next, _fc, _lk) = \
                _SUPERBLOCK.unpack_from(image, 0)
            if magic != _SUPERBLOCK_MAGIC:
                return None
            struct.pack_into("<I", image, _SB_CRC_OFFSET, 0)
            if zlib.crc32(bytes(image)) & 0xFFFFFFFF != stored_crc:
                return None
            return seq
        except OSError:
            return None

    # -- physical page I/O ---------------------------------------------------

    def _offset(self, page_id):
        return page_id * self.page_size

    def _on_allocate(self, page_id):
        self._live.add(page_id)
        self._meta_dirty = True
        if self.journaled:
            self._pending[page_id] = bytes(self.page_size)
        else:
            os.pwrite(self._fd, bytes(self.page_size), self._offset(page_id))
            self.durability_stats.direct_pages += 1

    def _on_free(self, page_id):
        self._live.discard(page_id)
        self._pending.pop(page_id, None)
        self._meta_dirty = True

    def _read(self, page_id):
        staged = self._pending.get(page_id)
        if staged is not None:
            return staged
        data = os.pread(self._fd, self.page_size, self._offset(page_id))
        if len(data) < self.page_size:
            data += b"\x00" * (self.page_size - len(data))
        return data

    def _write(self, page_id, data):
        if self.journaled:
            # Staging is an in-memory operation: no physical write happens
            # until sync(), so the fault hook is not consulted here (the
            # wrapper intercepts logical writes itself).
            self._pending[page_id] = data
        else:
            data, crash = self._filter_physical("direct", page_id, data)
            os.pwrite(self._fd, data, self._offset(page_id))
            self.durability_stats.direct_pages += 1
            if crash:
                self._crash()

    def _peek(self, page_id):
        """The persisted image, ignoring staged writes (test hook)."""
        data = os.pread(self._fd, self.page_size, self._offset(page_id))
        if len(data) < self.page_size:
            data += b"\x00" * (self.page_size - len(data))
        return data

    def _committed_image(self, page_id):
        # Same as _peek: the data file holds exactly the committed images
        # in journal/archive mode.  No liveness check — a page freed after
        # the pin stays readable until a later commit overwrites it, and
        # that overwrite records the pre-image first.
        return self._peek(page_id)

    def _poke(self, page_id, data):
        """Corrupt the persisted image directly, bypassing the journal."""
        self._pending.pop(page_id, None)
        os.pwrite(self._fd, data, self._offset(page_id))

    def _check_exists(self, page_id):
        if page_id not in self._live:
            raise PageNotFoundError(page_id)
