"""Journal shipping to a warm standby, with promotion on failover.

With ``durability="archive"`` every committed group survives as a
sequence-numbered segment file (:class:`~repro.storage.journal.Archive`).
A :class:`StandbyReplica` *tails* that stream through a pluggable
:class:`LogShipper` transport, applies each group to its own copy of the
data file through the same idempotent apply path crash recovery uses
(:meth:`~repro.storage.disk.FileDisk.apply_group`), serves read-only
queries through the normal engine, and — when the primary dies —
:meth:`~StandbyReplica.promote`\\ s to a writable primary after catching
up.

Safety rules, enforced rather than assumed:

* a segment is applied only if it decodes and passes its group CRC, and
  only in sequence order — the standby's file is always byte-identical to
  some committed primary state;
* a **torn head** segment (primary crashed mid-archive; the commit was
  never acknowledged) is skipped and re-polled — a restarted primary
  deletes and rewrites it;
* a **sequence gap** or a corrupt segment *with valid segments beyond
  it* is divergence: those commits cannot be reconstructed, so
  ``promote()`` refuses with
  :class:`~repro.storage.errors.DivergenceError` unless the caller
  explicitly accepts failing over to the last-known-good sequence;
* transient apply/ship failures
  (:class:`~repro.storage.errors.TransientIOError`) are retried with
  exponential backoff before giving up with
  :class:`~repro.storage.errors.ReplicationError`.

The built-in transport is :class:`LocalDirShipper` (a shared local
directory).  The interface is deliberately socket-shaped —
``connect() / latest_sequence() / fetch(seq) / close()`` — so a network
transport slots in without touching the replica.
"""

import random
import threading
from dataclasses import dataclass, field

from repro.obs.trace import NULL_TRACER
from repro.storage.disk import FileDisk
from repro.storage.errors import (
    DivergenceError,
    ReplicationError,
    TransientIOError,
)
from repro.storage.journal import Archive, decode_group
from repro.storage.timemodel import SystemClock

#: Retry policy defaults for transient ship/apply failures.
DEFAULT_MAX_RETRIES = 4
DEFAULT_BACKOFF_SECONDS = 0.01
#: Ceiling on one backoff sleep — exponential growth stops here, so a
#: deep retry loop never sleeps unboundedly long between attempts.
DEFAULT_MAX_BACKOFF_SECONDS = 0.5
#: Fraction of each backoff randomly shaved off.  Jitter de-synchronizes
#: a fleet of standbys retrying after one shared fault (a healed
#: partition, a restarted server) so they do not hammer the transport in
#: lockstep; shaving *down* keeps ``max_backoff_seconds`` a true ceiling.
DEFAULT_BACKOFF_JITTER = 0.5


class _TailInterrupted(Exception):
    """Internal: an in-flight catch_up was asked to yield (promotion or
    close).  Never escapes the replica."""


class LogShipper:
    """Transport interface a standby tails segments through.

    Implementations deliver raw segment bytes by commit sequence.  The
    shape mirrors a network client: ``connect``/``close`` bracket the
    session, ``latest_sequence`` is the poll, ``fetch`` the transfer.
    ``fetch`` returns None for a sequence the transport cannot produce
    (missing segment) — validity of the *bytes* is the replica's job.
    """

    def connect(self):
        return self

    def close(self):
        pass

    def latest_sequence(self):
        """Highest sequence available, or None for an empty stream."""
        raise NotImplementedError

    def oldest_sequence(self):
        """Lowest sequence still available, or None for an empty stream.

        The source's retention floor: a fetch below it returning None
        means *pruned at the source* (the standby must re-seed from a
        snapshot), while a missing segment at or above it means the
        stream itself has a hole (divergence — the standby must stall).
        Transports predating this call may leave it unimplemented; the
        replica then conservatively treats every missing-below-head
        segment as lost.
        """
        raise NotImplementedError

    def fetch(self, sequence):
        """Raw bytes of one segment, or None if it does not exist."""
        raise NotImplementedError

    def __enter__(self):
        return self.connect()

    def __exit__(self, exc_type, exc, tb):
        self.close()


class LocalDirShipper(LogShipper):
    """Ship segments out of a local archive directory.

    The degenerate transport: primary and standby share a filesystem (or
    the archive directory is rsynced/mounted).  Reads never block the
    primary — segments are immutable once written.
    """

    def __init__(self, archive_dir, page_size):
        self.archive_dir = archive_dir
        self.page_size = page_size
        self._archive = Archive(archive_dir, page_size)

    def latest_sequence(self):
        return self._archive.latest_sequence()

    def oldest_sequence(self):
        return self._archive.oldest_sequence()

    def fetch(self, sequence):
        return self._archive.read_raw(sequence)


@dataclass
class ReplicationStats:
    """Counters for one standby's shipping, applying and failover."""

    segments_shipped: int = 0        # segments fetched from the transport
    segments_applied: int = 0
    pages_applied: int = 0
    bytes_shipped: int = 0
    apply_retries: int = 0           # retry loops that eventually succeeded
    transient_errors: int = 0        # TransientIOErrors absorbed
    #: TransientIOErrors absorbed, split by what was being retried —
    #: ``"poll"`` (latest_sequence), ``"ship"`` (fetch), ``"apply"``.
    retries_by_cause: dict = field(default_factory=dict)
    torn_segments_seen: int = 0      # torn head segments skipped (re-polled)
    divergence_refusals: int = 0     # promote() calls refused
    failovers: int = 0               # successful promotions
    pruned_at_source: int = 0        # fetches answered "pruned" (re-seed)
    reseeds: int = 0                 # snapshot re-seeds completed
    last_applied_sequence: int = 0
    shipper_head_sequence: int = 0   # head seen at the last poll

    @property
    def lag_segments(self):
        """Commit groups the standby is behind the shipped head."""
        return max(0, self.shipper_head_sequence
                   - self.last_applied_sequence)


class StandbyReplica:
    """A warm standby: tails the archive, serves reads, can take over.

    ``path`` is the standby's own copy of the data file — bootstrap it
    with :meth:`from_backup` (restore a hot backup) and the replica
    catches up on everything newer through ``shipper``.  ``disk_factory``
    (path, page_size) -> disk lets tests interpose a
    :class:`~repro.storage.faults.FaultInjectingDisk` on the apply path.
    ``observability`` (an :class:`~repro.obs.Observability` hub or None)
    gets ship/apply/promote trace spans and, via :meth:`bind_metrics`,
    the replication gauges.
    """

    def __init__(self, path, shipper, page_size=4096, buffer_pages=256,
                 max_retries=DEFAULT_MAX_RETRIES,
                 backoff_seconds=DEFAULT_BACKOFF_SECONDS,
                 max_backoff_seconds=DEFAULT_MAX_BACKOFF_SECONDS,
                 backoff_jitter=DEFAULT_BACKOFF_JITTER, rng=None,
                 disk_factory=None, observability=None, clock=None):
        self.path = path
        self.shipper = shipper.connect()
        self.page_size = page_size
        self.buffer_pages = buffer_pages
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.max_backoff_seconds = max_backoff_seconds
        self.backoff_jitter = backoff_jitter
        self.rng = rng if rng is not None else random.Random()
        self.clock = clock if clock is not None else SystemClock()
        # One lock serializes the tail path (catch_up / promote): segment
        # apply is strictly single-threaded.  The event interrupts a
        # backoff sleep so promote() and close() never wait one out.
        self._tail_lock = threading.RLock()
        self._stop_tailing = threading.Event()
        self.stats = ReplicationStats()
        self.promoted = False
        self.stall_reason = None   # divergence description, or None
        self.observability = observability
        self._tracer = (observability.tracer if observability is not None
                        else NULL_TRACER)
        if disk_factory is None:
            # durability="none": the standby never commits through the
            # logical write path; groups arrive pre-journaled.
            disk_factory = lambda p, ps: FileDisk(p, ps, durability="none")
        self._disk_factory = disk_factory
        self._disk = disk_factory(path, page_size)
        #: Set when the source pruned segments this replica still needs:
        #: tailing cannot continue, but unlike divergence the cure is
        #: known — re-seed from a fresh snapshot (:meth:`reseed_from`).
        self.needs_reseed = False
        self._db = None            # lazily opened read-only query engine
        self.stats.last_applied_sequence = self._disk.commit_sequence
        if observability is not None:
            self.bind_metrics(observability.metrics)

    @classmethod
    def from_backup(cls, backup_dir, path, shipper, **options):
        """Bootstrap a standby by restoring a hot backup to ``path``.

        No archive replay happens here — catching up goes through the
        shipper, so bootstrap and steady-state exercise one code path.
        """
        from repro.storage.backup import restore

        result = restore(backup_dir, path)
        replica = cls(path, shipper,
                      page_size=options.pop("page_size", 4096), **options)
        replica.stats.last_applied_sequence = result.sequence
        return replica

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        self.interrupt()
        with self._tail_lock:
            self._close_query_db()
            if not getattr(self._disk, "closed", True):
                self._disk.close()
            self.shipper.close()

    def interrupt(self):
        """Ask an in-flight :meth:`catch_up` to yield at its next
        checkpoint (including mid-backoff).  The interrupted call returns
        normally with the count applied so far; the flag clears when the
        next tail call starts."""
        self._stop_tailing.set()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    def _require_standby(self):
        if self.promoted:
            raise ReplicationError(
                "replica at %s was promoted; it no longer tails" % self.path)

    # -- tailing -------------------------------------------------------------

    def catch_up(self, limit=None):
        """Apply every available segment (up to ``limit``); returns count.

        Stops early — without error — at a torn head segment or when the
        stream is exhausted; stops *with a recorded stall* at a sequence
        gap or corrupt interior segment (divergence; see
        :meth:`promote`).  Transient ship/apply failures are retried with
        exponential backoff.
        """
        self._require_standby()
        if self.needs_reseed:
            return 0   # the stream below head is gone; only a re-seed helps
        applied = 0
        with self._tail_lock:
            self._require_standby()   # promotion may have won the lock
            self._stop_tailing.clear()
            try:
                with self._tracer.span("replica.catch_up", path=self.path):
                    head = self._poll_head()
                    while (limit is None or applied < limit):
                        if self._stop_tailing.is_set():
                            break
                        next_seq = self._disk.commit_sequence + 1
                        if head is None or next_seq > head:
                            break
                        if not self._ship_and_apply_one(next_seq, head):
                            break
                        applied += 1
            except _TailInterrupted:
                pass
        return applied

    def _poll_head(self):
        head = self._with_retry("poll", self.shipper.latest_sequence)
        self.stats.shipper_head_sequence = head or 0
        return head

    def _ship_and_apply_one(self, sequence, head):
        """Fetch, validate and apply one segment; False means stop."""
        blob = self._with_retry("ship",
                                lambda: self.shipper.fetch(sequence))
        if blob is None:
            if self._missing_because_pruned(sequence):
                # Raft-InstallSnapshot situation: the source's retention
                # ran past this replica.  The segments cannot be shipped
                # ever again, but nothing diverged — a snapshot re-seed
                # (reseed_from) resumes tailing from a newer base.
                self.stats.pruned_at_source += 1
                self.needs_reseed = True
                self._stall(
                    "segment %d was pruned at the source (oldest "
                    "retained is newer); snapshot re-seed required"
                    % sequence)
                self._tracer.event("replica.pruned-at-source",
                                   sequence=sequence, head=head)
            else:
                self._stall("segment %d is missing below head %d "
                            "(lost in transport or corrupt at the source)"
                            % (sequence, head))
            return False
        self.stats.segments_shipped += 1
        self.stats.bytes_shipped += len(blob)
        group = decode_group(blob, self.page_size)
        if group is None:
            if sequence == head:
                # Torn head: the primary died mid-archive and never
                # acknowledged this commit.  A restarted primary deletes
                # and rewrites it, so re-poll rather than stall.
                self.stats.torn_segments_seen += 1
                return False
            self._stall("segment %d is corrupt with valid segments "
                        "beyond it" % sequence)
            return False
        seq, records = group
        if seq != sequence:
            self._stall("segment %d decodes to sequence %d (mis-shipped)"
                        % (sequence, seq))
            return False
        self._with_retry(
            "apply", lambda: self._disk.apply_group(seq, records))
        self.stats.segments_applied += 1
        self.stats.pages_applied += len(records)
        self.stats.last_applied_sequence = seq
        self.stall_reason = None
        self._invalidate_query_db()
        self._tracer.event("replica.apply", sequence=seq,
                           pages=len(records))
        return True

    def _missing_because_pruned(self, sequence):
        """Was a missing-below-head segment pruned at the source?

        True when the source's oldest retained sequence is *above* the
        one we asked for (retention removed it — every lower segment is
        gone too, by construction of ``prune_upto``).  A hole at or
        above the floor is genuine loss/corruption and must keep
        stalling: re-seeding over it would paper over divergence.
        Transports without :meth:`LogShipper.oldest_sequence` (or whose
        probe itself fails) answer conservatively: not pruned.
        """
        probe = getattr(self.shipper, "oldest_sequence", None)
        if probe is None:
            return False
        try:
            oldest = self._with_retry("poll", probe)
        except (NotImplementedError, ReplicationError):
            return False
        if oldest is None:
            # The source archive is empty but its head was non-zero a
            # moment ago: everything was pruned out from under us.
            return True
        return oldest > sequence

    def _stall(self, reason):
        self.stall_reason = reason

    def _with_retry(self, what, fn):
        """Run ``fn`` retrying TransientIOError with jittered backoff.

        The per-attempt sleep is ``backoff_seconds * 2**n`` capped at
        ``max_backoff_seconds``, then jittered *downward* by up to
        ``backoff_jitter`` of itself (the cap stays a hard ceiling; a
        fleet of standbys hit by one shared fault spreads its retries
        out).  Sleeps run on the replica's injectable clock,
        interruptible through :meth:`interrupt` — a promotion or close
        never waits out a backoff window.  Exhaustion raises
        :class:`~repro.storage.errors.ReplicationError` *from* the last
        transient failure, so callers (the cluster health machinery) can
        still see whether the cause was a network fault.
        """
        attempts = 0
        while True:
            try:
                result = fn()
                if attempts:
                    self.stats.apply_retries += 1
                return result
            except TransientIOError as exc:
                self.stats.transient_errors += 1
                self.stats.retries_by_cause[what] = \
                    self.stats.retries_by_cause.get(what, 0) + 1
                attempts += 1
                if attempts > self.max_retries:
                    raise ReplicationError(
                        "%s failed after %d retries: %s"
                        % (what, self.max_retries, exc)
                    ) from exc
                if self.backoff_seconds:
                    delay = self.backoff_seconds * (2 ** (attempts - 1))
                    if self.max_backoff_seconds is not None:
                        delay = min(delay, self.max_backoff_seconds)
                    if self.backoff_jitter:
                        delay *= 1.0 - self.backoff_jitter * self.rng.random()
                    self.clock.sleep(delay, interrupt=self._stop_tailing)
                if self._stop_tailing.is_set():
                    raise _TailInterrupted()

    # -- read-only serving ---------------------------------------------------

    @property
    def applied_sequence(self):
        """Commit sequence of the last applied group (routing shorthand)."""
        return self.stats.last_applied_sequence

    @property
    def database(self):
        """A read-only :class:`~repro.core.database.XmlDatabase` view.

        Reopened lazily after newly applied segments so queries always see
        the latest applied commit.  Treat it as read-only: mutating a
        standby forks its history from the primary's.
        """
        self._ensure_query_db()
        return self._db

    def query(self, path, **options):
        """Evaluate a path/twig query against the standby's applied state."""
        return self.database.query(path, **options)

    def explain(self, path, **options):
        return self.database.explain(path, **options)

    def documents(self):
        return self.database.documents()

    def tags(self):
        return self.database.tags()

    def entries_for_tag(self, tag):
        return self.database.entries_for_tag(tag)

    def _ensure_query_db(self):
        if self._db is None:
            from repro.core.database import XmlDatabase

            disk = FileDisk(self.path, self.page_size, durability="none")
            self._db = XmlDatabase.open(disk=disk,
                                        page_size=self.page_size,
                                        buffer_pages=self.buffer_pages)

    def _invalidate_query_db(self):
        self._close_query_db()

    def _close_query_db(self):
        if self._db is not None:
            self._db.close()
            self._db = None

    # -- snapshot re-seed ----------------------------------------------------

    def reseed_from(self, backup_dir):
        """Tear down and re-bootstrap this replica from a hot backup.

        The recovery move for :attr:`needs_reseed` — the source pruned
        segments this replica still needed, so tailing can never catch
        up again.  Restores ``backup_dir`` over the replica's file (the
        backup must be of the *current* primary timeline), reopens the
        disk through the original ``disk_factory``, and resumes tailing
        from the backup's sequence.  Returns the
        :class:`~repro.storage.backup.RestoreResult`.  Serialized with
        tailing/promotion through the tail lock, so no segment is ever
        applied concurrently with the wipe.
        """
        from repro.storage.backup import restore

        self._require_standby()
        self._stop_tailing.set()
        with self._tail_lock, \
                self._tracer.span("replica.reseed", path=self.path):
            self._require_standby()
            self._close_query_db()
            try:
                if not getattr(self._disk, "closed", True):
                    self._disk.close()
            except BaseException:
                abort = getattr(self._disk, "abort", None)
                if abort is not None:
                    abort()
            result = restore(backup_dir, self.path)
            self._disk = self._disk_factory(self.path, self.page_size)
            self.stats.last_applied_sequence = result.sequence
            self.stats.reseeds += 1
            self.needs_reseed = False
            self.stall_reason = None
            self._tracer.event("replica.reseeded",
                               sequence=result.sequence)
            return result

    # -- failover ------------------------------------------------------------

    def promote(self, allow_divergence=False, durability="archive",
                archive_dir=None, **open_options):
        """Catch up, verify convergence, and take over as primary.

        Returns a *writable* :class:`~repro.core.database.XmlDatabase`
        over the standby's file — in ``durability="archive"`` mode by
        default, writing new history to its **own** archive directory
        (never the old primary's, which a resurrected primary might still
        touch).  Refuses with
        :class:`~repro.storage.errors.DivergenceError` when the stream
        has a gap or an interior corrupt segment, unless
        ``allow_divergence=True`` accepts failing over at the
        last-known-good sequence.  The replica stops tailing either way
        once promotion succeeds.
        """
        self._require_standby()
        # Wake any catch_up() sleeping out a retry backoff, then take the
        # tail lock: promotion and tailing are strictly serialized, so an
        # interrupted catch_up can never apply a segment after the
        # promotion decision (it re-checks ``promoted`` under the lock).
        self._stop_tailing.set()
        with self._tail_lock, \
                self._tracer.span("replica.promote", path=self.path):
            self._require_standby()
            self.catch_up()
            if self.stall_reason is not None and not allow_divergence:
                self.stats.divergence_refusals += 1
                raise DivergenceError(
                    "refusing to promote %s: %s (pass "
                    "allow_divergence=True to fail over at sequence %d)"
                    % (self.path, self.stall_reason,
                       self.stats.last_applied_sequence)
                )
            from repro.core.database import XmlDatabase

            self._close_query_db()
            if not getattr(self._disk, "closed", True):
                self._disk.close()
            self.promoted = True
            self.stats.failovers += 1
            # A torn head segment is an unacknowledged commit; promotion
            # abandons it, so the replica is by definition caught up.
            self.stats.shipper_head_sequence = \
                self.stats.last_applied_sequence
            db = XmlDatabase.open(
                self.path, page_size=self.page_size,
                buffer_pages=self.buffer_pages, durability=durability,
                archive_dir=archive_dir, **open_options)
            db.attach_replication(self)
            return db

    # -- metrics -------------------------------------------------------------

    def attach_observability(self, observability):
        """Re-point this replica's spans and metrics at ``observability``.

        What a :class:`~repro.cluster.replicaset.ReplicaSet` calls to give
        each standby its own per-node hub (node-stamped trace records,
        flight recording) after construction.  Returns the hub.
        """
        self.observability = observability
        self._tracer = observability.tracer
        self.bind_metrics(observability.metrics)
        return observability

    def bind_metrics(self, registry):
        """Mirror :attr:`stats` into pull-refreshed gauges on ``registry``.

        Idempotent per registry; called automatically when the replica is
        built with an observability hub and by
        ``XmlDatabase.attach_replication``.
        """
        if registry in getattr(self, "_bound_registries", ()):
            return registry
        self._bound_registries = getattr(self, "_bound_registries", [])
        self._bound_registries.append(registry)
        gauges = {}
        for name, help_text in (
            ("repro_replication_lag_segments",
             "Commit groups the standby is behind the shipped head"),
            ("repro_replication_segments_shipped",
             "Segments fetched from the log shipper (lifetime)"),
            ("repro_replication_segments_applied",
             "Segments applied to the standby (lifetime)"),
            ("repro_replication_pages_applied",
             "Page images applied to the standby (lifetime)"),
            ("repro_replication_transient_errors",
             "Transient ship/apply failures absorbed by retry"),
            ("repro_replication_apply_retries",
             "Ship/apply calls that needed at least one retry"),
            ("repro_replication_torn_segments",
             "Torn head segments skipped while tailing"),
            ("repro_replication_divergence_refusals",
             "Promotions refused on sequence gap or checksum mismatch"),
            ("repro_replication_failovers",
             "Successful standby promotions"),
            ("repro_replication_pruned_at_source",
             "Fetches answered by a source that pruned the segment"),
            ("repro_replication_reseeds",
             "Snapshot re-seeds completed after retention outran tailing"),
            ("repro_replication_last_applied_sequence",
             "Commit sequence of the last applied group"),
        ):
            gauges[name] = registry.gauge(name, help_text)

        def refresh(_registry):
            s = self.stats
            gauges["repro_replication_lag_segments"].set(s.lag_segments)
            gauges["repro_replication_segments_shipped"].set(
                s.segments_shipped)
            gauges["repro_replication_segments_applied"].set(
                s.segments_applied)
            gauges["repro_replication_pages_applied"].set(s.pages_applied)
            gauges["repro_replication_transient_errors"].set(
                s.transient_errors)
            gauges["repro_replication_apply_retries"].set(s.apply_retries)
            gauges["repro_replication_torn_segments"].set(
                s.torn_segments_seen)
            gauges["repro_replication_divergence_refusals"].set(
                s.divergence_refusals)
            gauges["repro_replication_failovers"].set(s.failovers)
            gauges["repro_replication_pruned_at_source"].set(
                s.pruned_at_source)
            gauges["repro_replication_reseeds"].set(s.reseeds)
            gauges["repro_replication_last_applied_sequence"].set(
                s.last_applied_sequence)

        registry.register_collector(refresh)
        return registry
