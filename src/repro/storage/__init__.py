"""External-memory substrate: simulated disk, page codecs and buffer pool.

The paper evaluates XR-trees on a storage manager doing direct disk I/O and
observes that elapsed time is dominated by buffer-pool page misses.  This
package reproduces that substrate in simulation: every index node, element
list page and stab list page is a fixed-size byte-serialized page living on a
:class:`~repro.storage.disk.SimulatedDisk`, accessed through a
:class:`~repro.storage.buffer.BufferPool` with an LRU replacement policy and
full hit/miss accounting.
"""

from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.disk import FileDisk, InMemoryDisk, IOStats, SimulatedDisk
from repro.storage.errors import (
    BufferPoolError,
    PageDecodeError,
    PageFullError,
    PageNotFoundError,
    StorageError,
)
from repro.storage.indexmanager import (
    IndexManager,
    IndexManagerError,
    IndexManagerStats,
)
from repro.storage.pages import (
    DEFAULT_PAGE_SIZE,
    ElementEntry,
    Page,
    RawPage,
    page_codec,
    register_page_type,
)
from repro.storage.timemodel import DiskTimeModel

__all__ = [
    "BufferPool",
    "BufferStats",
    "BufferPoolError",
    "DEFAULT_PAGE_SIZE",
    "DiskTimeModel",
    "ElementEntry",
    "FileDisk",
    "IndexManager",
    "IndexManagerError",
    "IndexManagerStats",
    "InMemoryDisk",
    "IOStats",
    "Page",
    "PageDecodeError",
    "PageFullError",
    "PageNotFoundError",
    "RawPage",
    "SimulatedDisk",
    "StorageError",
    "page_codec",
    "register_page_type",
]
