"""External-memory substrate: simulated disk, page codecs and buffer pool.

The paper evaluates XR-trees on a storage manager doing direct disk I/O and
observes that elapsed time is dominated by buffer-pool page misses.  This
package reproduces that substrate in simulation: every index node, element
list page and stab list page is a fixed-size byte-serialized page living on a
:class:`~repro.storage.disk.SimulatedDisk`, accessed through a
:class:`~repro.storage.buffer.BufferPool` with an LRU replacement policy and
full hit/miss accounting.
"""

from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.disk import (
    DurabilityStats,
    FileDisk,
    InMemoryDisk,
    IOStats,
    RecoveryStats,
    SimulatedDisk,
)
from repro.storage.errors import (
    BackupError,
    BufferPoolError,
    ChecksumError,
    DiskFullError,
    DivergenceError,
    PageDecodeError,
    PageFullError,
    PageNotFoundError,
    ReadOnlyError,
    RecoveryError,
    ReplicationError,
    StorageError,
    TransientIOError,
    is_disk_full_error,
)
from repro.storage.faults import CrashPoint, FaultInjectingDisk
from repro.storage.indexmanager import (
    IndexManager,
    IndexManagerError,
    IndexManagerStats,
)
from repro.storage.backup import (
    BackupManifest,
    RestoreResult,
    hot_backup,
    restore,
)
from repro.storage.journal import Archive, Journal
from repro.storage.retention import (
    CheckpointManager,
    RetentionPolicy,
    RetentionStats,
)
from repro.storage.replication import (
    LocalDirShipper,
    LogShipper,
    ReplicationStats,
    StandbyReplica,
)
from repro.storage.scrub import (
    IndexQuarantinedError,
    IntegrityScrubber,
    RebuildResult,
    ScrubReport,
)
from repro.storage.pages import (
    DEFAULT_PAGE_SIZE,
    PAGE_HEADER_SIZE,
    ElementEntry,
    Page,
    RawPage,
    page_checksum,
    page_codec,
    register_page_type,
    seal_image,
)
from repro.storage.snapshot import SnapshotDisk
from repro.storage.timemodel import DiskTimeModel
from repro.storage.versions import PageVersionStore

__all__ = [
    "Archive",
    "BackupError",
    "BackupManifest",
    "BufferPool",
    "BufferStats",
    "BufferPoolError",
    "ChecksumError",
    "CrashPoint",
    "DEFAULT_PAGE_SIZE",
    "DiskTimeModel",
    "DivergenceError",
    "DurabilityStats",
    "ElementEntry",
    "FaultInjectingDisk",
    "FileDisk",
    "IndexManager",
    "IndexManagerError",
    "IndexManagerStats",
    "IndexQuarantinedError",
    "IntegrityScrubber",
    "RebuildResult",
    "ScrubReport",
    "InMemoryDisk",
    "IOStats",
    "Journal",
    "LocalDirShipper",
    "LogShipper",
    "PAGE_HEADER_SIZE",
    "Page",
    "PageDecodeError",
    "PageFullError",
    "PageNotFoundError",
    "PageVersionStore",
    "SnapshotDisk",
    "RawPage",
    "RecoveryError",
    "RecoveryStats",
    "ReplicationError",
    "ReplicationStats",
    "RestoreResult",
    "StandbyReplica",
    "SimulatedDisk",
    "StorageError",
    "TransientIOError",
    "hot_backup",
    "page_checksum",
    "page_codec",
    "register_page_type",
    "restore",
    "seal_image",
]
