"""Typed on-disk pages and their byte codecs.

Every page starts with a one-byte type tag used to dispatch decoding to the
registered page class.  Concrete page classes (B+-tree nodes, XR-tree nodes,
stab list pages, element list pages, ...) live next to the structures that own
them and register themselves with :func:`register_page_type`.
"""

import struct
from dataclasses import dataclass, field

from repro.storage.errors import PageDecodeError

DEFAULT_PAGE_SIZE = 4096

#: Registry mapping the page-type byte to the page class.
_PAGE_TYPES = {}


def register_page_type(cls):
    """Class decorator registering ``cls`` under its ``TYPE_ID`` byte."""
    type_id = cls.TYPE_ID
    if not isinstance(type_id, int) or not 0 <= type_id <= 255:
        raise ValueError("TYPE_ID must be a byte, got %r" % (type_id,))
    existing = _PAGE_TYPES.get(type_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            "page type %d already registered by %s" % (type_id, existing.__name__)
        )
    _PAGE_TYPES[type_id] = cls
    return cls


def page_codec(type_id):
    """Return the page class registered for ``type_id``."""
    try:
        return _PAGE_TYPES[type_id]
    except KeyError:
        raise PageDecodeError("unknown page type %d" % type_id)


class Page:
    """Base class for all typed pages.

    Subclasses define a ``TYPE_ID`` byte, ``encode_payload`` and
    ``decode_payload``.  The buffer pool keeps decoded page objects in memory
    and serializes them back on eviction or flush.
    """

    TYPE_ID = None

    def __init__(self):
        self.page_id = None
        self.dirty = False
        self.pin_count = 0

    def mark_dirty(self):
        self.dirty = True

    # -- codec ---------------------------------------------------------------

    def encode(self, page_size):
        payload = self.encode_payload()
        if len(payload) + 1 > page_size:
            raise PageDecodeError(
                "%s payload of %d bytes exceeds page size %d"
                % (type(self).__name__, len(payload), page_size)
            )
        return bytes([self.TYPE_ID]) + payload

    @classmethod
    def decode(cls, data, page_size):
        """Decode raw disk bytes into the registered page object."""
        if not data:
            raise PageDecodeError("empty page image")
        page_cls = page_codec(data[0])
        page = page_cls.decode_payload(data[1:], page_size)
        return page

    def encode_payload(self):
        raise NotImplementedError

    @classmethod
    def decode_payload(cls, data, page_size):
        raise NotImplementedError


@register_page_type
class RawPage(Page):
    """An untyped blob page, mainly used by tests of the substrate itself."""

    TYPE_ID = 1
    _HEADER = struct.Struct("<I")

    def __init__(self, payload=b""):
        super().__init__()
        self.payload = bytes(payload)

    def encode_payload(self):
        return self._HEADER.pack(len(self.payload)) + self.payload

    @classmethod
    def decode_payload(cls, data, page_size):
        (length,) = cls._HEADER.unpack_from(data, 0)
        return cls(data[cls._HEADER.size : cls._HEADER.size + length])


@dataclass(frozen=True)
class ElementEntry:
    """The canonical on-disk record for one region-encoded XML element.

    ``(doc_id, start, end, level)`` matches the element format in the paper's
    Section 2.2.  ``in_stab_list`` is the ``InStabList`` flag of Definition 4
    (meaningful in XR-tree leaf pages); ``ptr`` points at the data entry for
    the element (we store the element's ordinal in its source document).
    """

    doc_id: int
    start: int
    end: int
    level: int
    # Index-internal bookkeeping: excluded from equality/hash so that the
    # same element compares equal whether it came from a leaf page, a stab
    # list or a plain element list.
    in_stab_list: bool = field(default=False, compare=False)
    ptr: int = field(default=0, compare=False)

    STRUCT = struct.Struct("<iiiHBq")
    SIZE = struct.Struct("<iiiHBq").size

    def pack(self):
        return self.STRUCT.pack(
            self.doc_id, self.start, self.end, self.level,
            1 if self.in_stab_list else 0, self.ptr,
        )

    @classmethod
    def unpack_from(cls, data, offset):
        doc_id, start, end, level, flag, ptr = cls.STRUCT.unpack_from(data, offset)
        return cls(doc_id, start, end, level, bool(flag), ptr)

    # -- structural predicates (region encoding, Section 2.1) ----------------

    def contains(self, other):
        """True iff ``self`` is an ancestor of ``other`` (strict nesting)."""
        return (
            self.doc_id == other.doc_id
            and self.start < other.start
            and other.end < self.end
        )

    def is_parent_of(self, other):
        return self.contains(other) and self.level == other.level - 1

    def stabbed_by(self, key):
        """True iff ``start <= key <= end`` (Definition 1)."""
        return self.start <= key <= self.end

    def with_flag(self, in_stab_list):
        """Copy of this entry with the ``InStabList`` flag replaced."""
        return ElementEntry(
            self.doc_id, self.start, self.end, self.level, in_stab_list, self.ptr
        )

    @property
    def region(self):
        return (self.start, self.end)

    def sort_key(self):
        """Document order: by document, then by start position."""
        return (self.doc_id, self.start)
