"""Typed on-disk pages and their byte codecs.

Every page image starts with a fixed header: a one-byte type tag used to
dispatch decoding to the registered page class, followed by a CRC-32 of the
whole page image (computed with the checksum field zeroed).  Concrete page
classes (B+-tree nodes, XR-tree nodes, stab list pages, element list pages,
...) live next to the structures that own them and register themselves with
:func:`register_page_type`.

:meth:`Page.encode` seals the checksum; :meth:`Page.decode` verifies it and
raises :class:`~repro.storage.errors.ChecksumError` on mismatch, so every
buffer-pool fetch detects torn writes and bit rot before any payload byte is
interpreted.
"""

import struct
import zlib
from dataclasses import dataclass, field

from repro.storage.errors import ChecksumError, PageDecodeError

DEFAULT_PAGE_SIZE = 4096

_CHECKSUM = struct.Struct("<I")

#: Bytes every page image reserves before the payload: type tag + CRC-32.
PAGE_HEADER_SIZE = 1 + _CHECKSUM.size


def page_checksum(image):
    """CRC-32 of a full page image, with the checksum field zeroed."""
    buf = bytearray(image)
    _CHECKSUM.pack_into(buf, 1, 0)
    return zlib.crc32(bytes(buf)) & 0xFFFFFFFF


def seal_image(image):
    """Recompute and embed the checksum of a raw page image.

    Used by tests and tools that hand-craft page bytes and want them to
    pass verification (e.g. to corrupt a *payload* field surgically).
    """
    buf = bytearray(image)
    _CHECKSUM.pack_into(buf, 1, 0)
    _CHECKSUM.pack_into(buf, 1, zlib.crc32(bytes(buf)) & 0xFFFFFFFF)
    return bytes(buf)

#: Registry mapping the page-type byte to the page class.
_PAGE_TYPES = {}


def register_page_type(cls):
    """Class decorator registering ``cls`` under its ``TYPE_ID`` byte."""
    type_id = cls.TYPE_ID
    if not isinstance(type_id, int) or not 0 <= type_id <= 255:
        raise ValueError("TYPE_ID must be a byte, got %r" % (type_id,))
    existing = _PAGE_TYPES.get(type_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            "page type %d already registered by %s" % (type_id, existing.__name__)
        )
    _PAGE_TYPES[type_id] = cls
    return cls


def page_codec(type_id):
    """Return the page class registered for ``type_id``."""
    try:
        return _PAGE_TYPES[type_id]
    except KeyError:
        raise PageDecodeError("unknown page type %d" % type_id)


class Page:
    """Base class for all typed pages.

    Subclasses define a ``TYPE_ID`` byte, ``encode_payload`` and
    ``decode_payload``.  The buffer pool keeps decoded page objects in memory
    and serializes them back on eviction or flush.
    """

    TYPE_ID = None

    def __init__(self):
        self.page_id = None
        self.dirty = False
        self.pin_count = 0

    def mark_dirty(self):
        self.dirty = True

    # -- codec ---------------------------------------------------------------

    def encode(self, page_size):
        """Serialize to a full checksummed page image of ``page_size`` bytes."""
        payload = self.encode_payload()
        if len(payload) + PAGE_HEADER_SIZE > page_size:
            raise PageDecodeError(
                "%s payload of %d bytes exceeds page size %d"
                % (type(self).__name__, len(payload), page_size)
            )
        image = bytearray(page_size)
        image[0] = self.TYPE_ID
        image[PAGE_HEADER_SIZE : PAGE_HEADER_SIZE + len(payload)] = payload
        return seal_image(image)

    @classmethod
    def decode(cls, data, page_size, verify=True):
        """Decode raw disk bytes into the registered page object.

        Verifies the page checksum first (raising
        :class:`~repro.storage.errors.ChecksumError` on mismatch) unless
        ``verify`` is False, then dispatches on the type tag.  Any raw
        ``struct``/index error a payload decoder leaks is normalized to
        :class:`~repro.storage.errors.PageDecodeError`.
        """
        if not data:
            raise PageDecodeError("empty page image")
        image = bytes(data[:page_size])
        if len(image) < PAGE_HEADER_SIZE:
            raise PageDecodeError(
                "page image of %d bytes is shorter than the %d-byte header"
                % (len(image), PAGE_HEADER_SIZE)
            )
        if verify:
            (stored,) = _CHECKSUM.unpack_from(image, 1)
            computed = page_checksum(image)
            if stored != computed:
                raise ChecksumError(
                    "page image failed CRC-32 verification "
                    "(stored 0x%08x, computed 0x%08x)" % (stored, computed)
                )
        page_cls = page_codec(image[0])
        try:
            return page_cls.decode_payload(image[PAGE_HEADER_SIZE:], page_size)
        except PageDecodeError:
            raise
        except (struct.error, IndexError, ValueError) as exc:
            raise PageDecodeError(
                "%s payload could not be decoded: %s"
                % (page_cls.__name__, exc)
            ) from exc

    def encode_payload(self):
        raise NotImplementedError

    @classmethod
    def decode_payload(cls, data, page_size):
        raise NotImplementedError


@register_page_type
class RawPage(Page):
    """An untyped blob page, mainly used by tests of the substrate itself."""

    TYPE_ID = 1
    _HEADER = struct.Struct("<I")

    def __init__(self, payload=b""):
        super().__init__()
        self.payload = bytes(payload)

    def encode_payload(self):
        return self._HEADER.pack(len(self.payload)) + self.payload

    @classmethod
    def decode_payload(cls, data, page_size):
        (length,) = cls._HEADER.unpack_from(data, 0)
        if cls._HEADER.size + length > len(data):
            raise PageDecodeError(
                "RawPage claims %d payload bytes but only %d are present"
                % (length, len(data) - cls._HEADER.size)
            )
        return cls(data[cls._HEADER.size : cls._HEADER.size + length])


@dataclass(frozen=True)
class ElementEntry:
    """The canonical on-disk record for one region-encoded XML element.

    ``(doc_id, start, end, level)`` matches the element format in the paper's
    Section 2.2.  ``in_stab_list`` is the ``InStabList`` flag of Definition 4
    (meaningful in XR-tree leaf pages); ``ptr`` points at the data entry for
    the element (we store the element's ordinal in its source document).
    """

    doc_id: int
    start: int
    end: int
    level: int
    # Index-internal bookkeeping: excluded from equality/hash so that the
    # same element compares equal whether it came from a leaf page, a stab
    # list or a plain element list.
    in_stab_list: bool = field(default=False, compare=False)
    ptr: int = field(default=0, compare=False)

    STRUCT = struct.Struct("<iiiHBq")
    SIZE = struct.Struct("<iiiHBq").size

    def pack(self):
        return self.STRUCT.pack(
            self.doc_id, self.start, self.end, self.level,
            1 if self.in_stab_list else 0, self.ptr,
        )

    @classmethod
    def unpack_from(cls, data, offset):
        doc_id, start, end, level, flag, ptr = cls.STRUCT.unpack_from(data, offset)
        return cls(doc_id, start, end, level, bool(flag), ptr)

    # -- structural predicates (region encoding, Section 2.1) ----------------

    def contains(self, other):
        """True iff ``self`` is an ancestor of ``other`` (strict nesting)."""
        return (
            self.doc_id == other.doc_id
            and self.start < other.start
            and other.end < self.end
        )

    def is_parent_of(self, other):
        return self.contains(other) and self.level == other.level - 1

    def stabbed_by(self, key):
        """True iff ``start <= key <= end`` (Definition 1)."""
        return self.start <= key <= self.end

    def with_flag(self, in_stab_list):
        """Copy of this entry with the ``InStabList`` flag replaced."""
        return ElementEntry(
            self.doc_id, self.start, self.end, self.level, in_stab_list, self.ptr
        )

    @property
    def region(self):
        return (self.start, self.end)

    def sort_key(self):
        """Document order: by document, then by start position."""
        return (self.doc_id, self.start)
