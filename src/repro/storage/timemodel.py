"""Disk-time model and clock abstractions for the storage substrate.

Two related concerns live here:

* :class:`DiskTimeModel` turns page-miss counts into derived elapsed
  time.  The paper's Figure 8 reports wall-clock elapsed time on a
  2002-era disk and notes that elapsed time "is dominated by the I/O's
  performed, more specifically, the number of page misses".  Our
  substrate is a simulator, so we derive elapsed time from the page
  transfers the buffer pool actually performed plus a CPU charge per
  element scanned.  Absolute values differ from the paper; the *shape*
  of the curves (who wins, by what factor, where they cross) depends
  only on the counted quantities.

* :class:`SystemClock` / :class:`VirtualClock` make *time itself*
  injectable for code that sleeps or schedules — replication
  retry/backoff, cluster health probes and circuit breakers.  Production
  paths run on the system clock (whose :meth:`~SystemClock.sleep` can be
  interrupted through an event, so a promotion never waits out a
  backoff); tests pass a :class:`VirtualClock` and retry schedules run
  in zero wall time while still recording exactly what they would have
  slept.
"""

import threading
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class DiskTimeModel:
    """Latency parameters for the derived elapsed-time metric.

    Defaults approximate a 2002-era commodity IDE disk (the paper's testbed):
    roughly 8 ms per random page read, writes alike, and a small per-element
    CPU cost (stack push/pop plus comparisons).
    """

    read_ms: float = 8.0
    write_ms: float = 8.0
    cpu_us_per_element: float = 2.0

    def elapsed_seconds(self, page_misses, writebacks=0, elements_scanned=0):
        """Derived elapsed time in seconds for one measured run."""
        io_ms = page_misses * self.read_ms + writebacks * self.write_ms
        cpu_ms = elements_scanned * self.cpu_us_per_element / 1000.0
        return (io_ms + cpu_ms) / 1000.0


class SystemClock:
    """The real monotonic clock; sleeps are interruptible through an event.

    ``sleep(seconds, interrupt=event)`` returns early — without raising —
    as soon as ``event`` is set, which is how a standby promotion cuts
    short an in-flight retry backoff instead of waiting it out.
    """

    virtual = False

    def now(self):
        return time.monotonic()

    def sleep(self, seconds, interrupt=None):
        if seconds <= 0:
            return
        if interrupt is not None:
            interrupt.wait(seconds)
        else:
            time.sleep(seconds)


class VirtualClock:
    """A deterministic clock for tests: sleeping advances simulated time.

    ``now()`` starts at ``start`` and moves only when :meth:`sleep` or
    :meth:`advance` is called, so retry/backoff schedules run in zero
    wall time.  Every sleep's duration is recorded in :attr:`sleeps` —
    the test-visible trace of the backoff sequence a loop produced.
    Thread-safe (sleepers from several threads interleave atomically).
    """

    virtual = True

    def __init__(self, start=0.0):
        self._now = float(start)
        self._lock = threading.Lock()
        self.sleeps = []

    def now(self):
        with self._lock:
            return self._now

    def sleep(self, seconds, interrupt=None):
        if seconds <= 0:
            return
        if interrupt is not None and interrupt.is_set():
            return
        with self._lock:
            self._now += seconds
            self.sleeps.append(seconds)

    def advance(self, seconds):
        """Move time forward without recording a sleep."""
        with self._lock:
            self._now += seconds
