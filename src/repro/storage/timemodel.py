"""Disk-time model turning page-miss counts into derived elapsed time.

The paper's Figure 8 reports wall-clock elapsed time on a 2002-era disk and
notes that elapsed time "is dominated by the I/O's performed, more
specifically, the number of page misses".  Our substrate is a simulator, so we
derive elapsed time from the page transfers the buffer pool actually performed
plus a CPU charge per element scanned.  Absolute values differ from the paper;
the *shape* of the curves (who wins, by what factor, where they cross) depends
only on the counted quantities.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskTimeModel:
    """Latency parameters for the derived elapsed-time metric.

    Defaults approximate a 2002-era commodity IDE disk (the paper's testbed):
    roughly 8 ms per random page read, writes alike, and a small per-element
    CPU cost (stack push/pop plus comparisons).
    """

    read_ms: float = 8.0
    write_ms: float = 8.0
    cpu_us_per_element: float = 2.0

    def elapsed_seconds(self, page_misses, writebacks=0, elements_scanned=0):
        """Derived elapsed time in seconds for one measured run."""
        io_ms = page_misses * self.read_ms + writebacks * self.write_ms
        cpu_ms = elements_scanned * self.cpu_us_per_element / 1000.0
        return (io_ms + cpu_ms) / 1000.0
