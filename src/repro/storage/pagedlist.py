"""Page-chained record lists.

Two users in this library:

* plain *element lists* — the sequential, start-ordered input lists consumed
  by the merge-based join algorithms (the "no-index" representation), and
* *stab lists* of XR-tree internal nodes (which subclass the same record-page
  machinery in :mod:`repro.indexes.xrtree.stablist`).

Pages hold fixed-size records plus a small header (record count and the id of
the next page in the chain).
"""

import struct

from repro.storage.errors import PageDecodeError
from repro.storage.pages import (
    PAGE_HEADER_SIZE,
    ElementEntry,
    Page,
    register_page_type,
)


class RecordPage(Page):
    """A page holding a list of fixed-size records and a next-page link.

    Subclasses set ``RECORD_SIZE``, ``pack_record`` and ``unpack_record``.
    """

    _HEADER = struct.Struct("<HI")  # record count, next page id (0 = nil)
    RECORD_SIZE = None

    def __init__(self, records=None, next_id=0):
        super().__init__()
        self.records = list(records) if records else []
        self.next_id = next_id

    @classmethod
    def capacity(cls, page_size):
        """Maximum number of records a page of ``page_size`` bytes holds."""
        return (page_size - PAGE_HEADER_SIZE - cls._HEADER.size) \
            // cls.RECORD_SIZE

    def encode_payload(self):
        parts = [self._HEADER.pack(len(self.records), self.next_id)]
        parts.extend(self.pack_record(record) for record in self.records)
        return b"".join(parts)

    @classmethod
    def decode_payload(cls, data, page_size):
        count, next_id = cls._HEADER.unpack_from(data, 0)
        if cls._HEADER.size + count * cls.RECORD_SIZE > len(data):
            raise PageDecodeError(
                "%s claims %d records but the payload holds at most %d"
                % (cls.__name__, count,
                   (len(data) - cls._HEADER.size) // cls.RECORD_SIZE)
            )
        offset = cls._HEADER.size
        records = []
        for _ in range(count):
            records.append(cls.unpack_record(data, offset))
            offset += cls.RECORD_SIZE
        return cls(records, next_id)

    @staticmethod
    def pack_record(record):
        raise NotImplementedError

    @staticmethod
    def unpack_record(data, offset):
        raise NotImplementedError


@register_page_type
class ElementListPage(RecordPage):
    """A page of :class:`ElementEntry` records in document order."""

    TYPE_ID = 2
    RECORD_SIZE = ElementEntry.SIZE

    @staticmethod
    def pack_record(record):
        return record.pack()

    @staticmethod
    def unpack_record(data, offset):
        return ElementEntry.unpack_from(data, offset)


class PagedElementList:
    """A start-ordered element list stored as a chain of pages.

    This is the representation scanned by the non-indexed join algorithms: a
    sequential file of ``(DocId, start, end, level)`` records sorted by
    document order, exactly the input format of Section 2.2.
    """

    def __init__(self, pool, head_id=0, length=0, page_count=0):
        self._pool = pool
        self.head_id = head_id
        self.length = length
        self.page_count = page_count

    @property
    def pool(self):
        """The buffer pool the list's pages live in."""
        return self._pool

    @classmethod
    def build(cls, pool, entries, fill_factor=1.0):
        """Bulk-load ``entries`` (already sorted by document order).

        ``fill_factor`` < 1.0 leaves slack in each page, as a freshly loaded
        but updatable file would.
        """
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError("fill factor must be in (0, 1], got %r" % fill_factor)
        capacity = ElementListPage.capacity(pool.page_size)
        per_page = max(1, int(capacity * fill_factor))
        entries = list(entries)
        lst = cls(pool)
        lst.length = len(entries)
        prev_page = None
        for index in range(0, len(entries), per_page):
            page = pool.new_page(ElementListPage(entries[index : index + per_page]))
            lst.page_count += 1
            if prev_page is None:
                lst.head_id = page.page_id
            else:
                prev_page.next_id = page.page_id
                pool.unpin(prev_page, dirty=True)
            prev_page = page
        if prev_page is not None:
            pool.unpin(prev_page, dirty=True)
        return lst

    def __len__(self):
        return self.length

    def __iter__(self):
        """Yield entries in order, touching one page at a time."""
        page_id = self.head_id
        while page_id:
            with self._pool.pinned(page_id) as page:
                next_id = page.next_id
                for record in page.records:
                    yield record
            page_id = next_id

    def cursor(self):
        """Return a forward :class:`ElementListCursor` over this list."""
        return ElementListCursor(self._pool, self.head_id)

    def pages(self):
        """Yield page ids of the chain in order (for space accounting)."""
        page_id = self.head_id
        while page_id:
            yield page_id
            with self._pool.pinned(page_id) as page:
                page_id = page.next_id


class ElementListCursor:
    """Forward cursor over a paged element list.

    Exposes the minimal protocol the merge joins need: the current entry,
    ``advance`` by one, and ``at_end``.  Every page transition goes through
    the buffer pool so sequential scans are charged faithfully.
    """

    def __init__(self, pool, head_id):
        self._pool = pool
        self._page_id = head_id
        self._records = []
        self._next_id = 0
        self._slot = 0
        self._exhausted = head_id == 0
        if not self._exhausted:
            self._load(head_id)
            self._skip_empty_pages()

    def _load(self, page_id):
        with self._pool.pinned(page_id) as page:
            self._records = page.records
            self._next_id = page.next_id
        self._page_id = page_id
        self._slot = 0

    def _skip_empty_pages(self):
        while self._slot >= len(self._records):
            if not self._next_id:
                self._exhausted = True
                return
            self._load(self._next_id)

    @property
    def at_end(self):
        return self._exhausted

    @property
    def current(self):
        if self._exhausted:
            raise StopIteration("cursor is exhausted")
        return self._records[self._slot]

    def advance(self):
        """Move to the next entry; returns False when the list is exhausted."""
        if self._exhausted:
            return False
        self._slot += 1
        self._skip_empty_pages()
        return not self._exhausted

    def clone(self):
        """An independent cursor at the same position.

        Cloning re-reads the current page through the buffer pool, so a
        rescan from a saved position is charged its page accesses — this is
        what makes the MPMGJN baseline's repeated scans visible in the I/O
        counters.
        """
        copy = ElementListCursor.__new__(ElementListCursor)
        copy._pool = self._pool
        copy._page_id = self._page_id
        copy._records = []
        copy._next_id = 0
        copy._slot = self._slot
        copy._exhausted = self._exhausted
        if not copy._exhausted:
            copy._load(self._page_id)
            copy._slot = self._slot
            copy._skip_empty_pages()
        return copy
