"""A pinned, copy-on-write view of another disk (one per session).

:class:`SnapshotDisk` is the storage face of a read session.  It pins a
commit sequence on the base disk at construction and serves every read of
a base page via :meth:`SimulatedDisk.read_snapshot`, so the view stays
frozen at that sequence no matter what the writer commits afterwards.

Sessions are *not* storage-read-only, though: the query engine builds
throwaway XR-trees for intermediate join inputs, and those need pages.
The snapshot therefore keeps a private scratch overlay — pages allocated
through it live in a local dict, invisible to the base disk and to other
sessions, and are simply dropped when the snapshot closes.  Scratch page
ids start at the base disk's allocation frontier as of the pin; a later
base allocation may hand out the same id to the writer, which is
harmless, because the overlay shadows the base on every read and the
pinned catalog can never reference a page allocated after the pin.

Writes to base pages are refused — snapshot isolation here is strictly
read-committed-at-a-sequence, there is no write-merge story.
"""

from repro.storage.disk import SimulatedDisk
from repro.storage.errors import PageNotFoundError, StorageError


class SnapshotDisk(SimulatedDisk):
    """Read view of ``base`` at a pinned sequence + private scratch pages."""

    def __init__(self, base):
        super().__init__(base.page_size)
        self._base = base
        self.sequence = base.pin_snapshot()
        self._released = False
        self._scratch = {}
        # Scratch ids start past everything the pinned catalog can name.
        with base._commit_lock:
            self._next_page_id = base._next_page_id
        self._base_floor = self._next_page_id

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Drop the scratch overlay and release the pin (idempotent)."""
        if not self._released:
            self._released = True
            self._scratch.clear()
            self._base.release_snapshot(self.sequence)

    @property
    def closed(self):
        return self._released

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    # -- SimulatedDisk hooks ---------------------------------------------------

    def _on_allocate(self, page_id):
        self._scratch[page_id] = bytes(self.page_size)

    def _on_free(self, page_id):
        if page_id not in self._scratch:
            raise StorageError(
                "snapshot at sequence %d cannot free base page %d"
                % (self.sequence, page_id)
            )
        del self._scratch[page_id]

    def _read(self, page_id):
        image = self._scratch.get(page_id)
        if image is not None:
            return image
        return self._base.read_snapshot(page_id, self.sequence)

    def _write(self, page_id, data):
        if page_id not in self._scratch:
            raise StorageError(
                "snapshot at sequence %d is read-only for base page %d"
                % (self.sequence, page_id)
            )
        self._scratch[page_id] = data

    def _check_exists(self, page_id):
        if self._released:
            raise StorageError(
                "I/O on a released snapshot (sequence %d)" % self.sequence)
        if page_id in self._scratch:
            return
        if not 1 <= page_id < self._base_floor:
            raise PageNotFoundError(page_id)

    @property
    def scratch_page_count(self):
        return len(self._scratch)
