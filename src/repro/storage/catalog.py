"""A tiny on-disk catalog making indexes and element lists reopenable.

The tree classes keep their metadata (root page, height, size, capacities)
in Python attributes; the catalog persists that metadata into a dedicated
page so a database file created with :class:`~repro.storage.disk.FileDisk`
can be closed and reopened — the missing piece between "index structure" and
"storage engine".

Usage::

    catalog = Catalog.create(pool)          # on a fresh disk (page 1)
    catalog.save_xrtree("emps", tree)
    ...
    catalog = Catalog.open(pool)            # after reopening the disk
    tree = catalog.load_xrtree("emps")
"""

import struct

from repro.storage.errors import PageDecodeError, RecoveryError, StorageError
from repro.storage.pages import PAGE_HEADER_SIZE, Page, register_page_type

KIND_BPLUS = 1
KIND_XRTREE = 2
KIND_ELEMENT_LIST = 3
KIND_BLOB = 4

_KIND_NAMES = {KIND_BPLUS: "b+tree", KIND_XRTREE: "xr-tree",
               KIND_ELEMENT_LIST: "element-list", KIND_BLOB: "blob"}


class CatalogError(StorageError):
    """Unknown names, duplicate names, kind mismatches."""


@register_page_type
class CatalogPage(Page):
    """One page of named structure descriptors."""

    TYPE_ID = 9
    _HEADER = struct.Struct("<HI")  # entry count, next catalog page (0=nil)
    _ENTRY = struct.Struct("<32sBIIQII")
    # name, kind, root/head page, height/page-count, size/length,
    # leaf capacity, internal capacity

    def __init__(self, entries=None, next_id=0):
        super().__init__()
        self.entries = list(entries) if entries else []
        self.next_id = next_id

    @classmethod
    def capacity(cls, page_size):
        return (page_size - PAGE_HEADER_SIZE - cls._HEADER.size) \
            // cls._ENTRY.size

    def encode_payload(self):
        parts = [self._HEADER.pack(len(self.entries), self.next_id)]
        for entry in self.entries:
            name = entry["name"].encode("utf-8")
            if len(name) > 32:
                raise CatalogError("name %r exceeds 32 bytes" % entry["name"])
            parts.append(self._ENTRY.pack(
                name, entry["kind"], entry["root"], entry["height"],
                entry["size"], entry["leaf_capacity"],
                entry["internal_capacity"],
            ))
        return b"".join(parts)

    @classmethod
    def decode_payload(cls, data, page_size):
        count, next_id = cls._HEADER.unpack_from(data, 0)
        if cls._HEADER.size + count * cls._ENTRY.size > len(data):
            raise PageDecodeError(
                "catalog page claims %d entries but the payload holds at "
                "most %d" % (count,
                             (len(data) - cls._HEADER.size) // cls._ENTRY.size)
            )
        offset = cls._HEADER.size
        entries = []
        for _ in range(count):
            name, kind, root, height, size, leaf_cap, internal_cap = \
                cls._ENTRY.unpack_from(data, offset)
            entries.append({
                "name": name.rstrip(b"\x00").decode("utf-8"),
                "kind": kind, "root": root, "height": height, "size": size,
                "leaf_capacity": leaf_cap, "internal_capacity": internal_cap,
            })
            offset += cls._ENTRY.size
        return cls(entries, next_id)


@register_page_type
class BlobPage(Page):
    """One page of an arbitrary byte blob (chained)."""

    TYPE_ID = 12
    _HEADER = struct.Struct("<HI")  # bytes in this page, next page id

    def __init__(self, data=b"", next_id=0):
        super().__init__()
        self.data = bytes(data)
        self.next_id = next_id

    @classmethod
    def capacity(cls, page_size):
        return page_size - PAGE_HEADER_SIZE - cls._HEADER.size

    def encode_payload(self):
        return self._HEADER.pack(len(self.data), self.next_id) + self.data

    @classmethod
    def decode_payload(cls, data, page_size):
        length, next_id = cls._HEADER.unpack_from(data, 0)
        start = cls._HEADER.size
        if start + length > len(data):
            raise PageDecodeError(
                "blob page claims %d bytes but only %d are present"
                % (length, len(data) - start)
            )
        return cls(data[start : start + length], next_id)


class Catalog:
    """Named persistence for B+-trees, XR-trees, element lists and blobs."""

    def __init__(self, pool, page_id):
        self._pool = pool
        self.page_id = page_id

    @classmethod
    def create(cls, pool):
        """Allocate the catalog page on a fresh disk (it becomes page 1)."""
        page = pool.new_page(CatalogPage())
        page_id = page.page_id
        pool.unpin(page, dirty=True)
        return cls(pool, page_id)

    @classmethod
    def open(cls, pool, page_id=1):
        """Attach to an existing catalog (default: the first disk page).

        Raises :class:`~repro.storage.errors.RecoveryError` when the
        catalog root cannot be decoded — the database file survived the
        crash, but its naming root did not, which recovery cannot repair.
        """
        try:
            with pool.pinned(page_id) as page:
                if not isinstance(page, CatalogPage):
                    raise CatalogError(
                        "page %d is not a catalog page" % page_id)
        except PageDecodeError as exc:
            raise RecoveryError(
                "catalog root page %d is unreadable: %s" % (page_id, exc)
            ) from exc
        return cls(pool, page_id)

    # -- raw entry access ------------------------------------------------------

    def _pages(self):
        page_id = self.page_id
        while page_id:
            yield page_id
            with self._pool.pinned(page_id) as page:
                page_id = page.next_id

    def _find(self, name):
        for page_id in self._pages():
            with self._pool.pinned(page_id) as page:
                for index, entry in enumerate(page.entries):
                    if entry["name"] == name:
                        return page_id, index, dict(entry)
        return None, None, None

    def names(self):
        """All catalogued names with their kinds."""
        out = {}
        for page_id in self._pages():
            with self._pool.pinned(page_id) as page:
                for entry in page.entries:
                    out[entry["name"]] = _KIND_NAMES[entry["kind"]]
        return out

    def _put(self, entry):
        page_id, index, _existing = self._find(entry["name"])
        if page_id is not None:
            with self._pool.pinned(page_id) as page:
                page.entries[index] = entry
                page.mark_dirty()
            return
        capacity = CatalogPage.capacity(self._pool.page_size)
        last_id = None
        for last_id in self._pages():
            pass
        with self._pool.pinned(last_id) as page:
            if len(page.entries) < capacity:
                page.entries.append(entry)
                page.mark_dirty()
                return
        overflow = self._pool.new_page(CatalogPage([entry]))
        overflow_id = overflow.page_id
        self._pool.unpin(overflow, dirty=True)
        with self._pool.pinned(last_id) as page:
            page.next_id = overflow_id
            page.mark_dirty()

    def remove(self, name):
        """Drop a catalog entry (the structure's pages are not freed)."""
        page_id, index, _entry = self._find(name)
        if page_id is None:
            raise CatalogError("no catalogued structure named %r" % name)
        with self._pool.pinned(page_id) as page:
            page.entries.pop(index)
            page.mark_dirty()

    def _get(self, name, kind):
        _page, _index, entry = self._find(name)
        if entry is None:
            raise CatalogError("no catalogued structure named %r" % name)
        if entry["kind"] != kind:
            raise CatalogError(
                "%r is a %s, not a %s" % (
                    name, _KIND_NAMES[entry["kind"]], _KIND_NAMES[kind])
            )
        return entry

    # -- typed save/load --------------------------------------------------------

    def save_bptree(self, name, tree):
        self._put({
            "name": name, "kind": KIND_BPLUS, "root": tree.root_id,
            "height": tree.height, "size": tree.size,
            "leaf_capacity": tree.leaf_capacity,
            "internal_capacity": tree.internal_capacity,
        })

    def load_bptree(self, name):
        from repro.indexes.bptree import BPlusTree

        entry = self._get(name, KIND_BPLUS)
        tree = BPlusTree(self._pool, entry["leaf_capacity"],
                         entry["internal_capacity"])
        tree.root_id = entry["root"]
        tree.height = entry["height"]
        tree.size = entry["size"]
        return tree

    def save_xrtree(self, name, tree):
        self._put({
            "name": name, "kind": KIND_XRTREE, "root": tree.root_id,
            "height": tree.height, "size": tree.size,
            "leaf_capacity": tree.leaf_capacity,
            "internal_capacity": tree.internal_capacity,
        })

    def load_xrtree(self, name, optimize_split_keys=True):
        from repro.indexes.xrtree import XRTree

        entry = self._get(name, KIND_XRTREE)
        tree = XRTree(self._pool, entry["leaf_capacity"],
                      entry["internal_capacity"],
                      optimize_split_keys=optimize_split_keys)
        tree.root_id = entry["root"]
        tree.height = entry["height"]
        tree.size = entry["size"]
        return tree

    def save_element_list(self, name, element_list):
        self._put({
            "name": name, "kind": KIND_ELEMENT_LIST,
            "root": element_list.head_id,
            "height": element_list.page_count,
            "size": element_list.length,
            "leaf_capacity": 0, "internal_capacity": 0,
        })

    def load_element_list(self, name):
        from repro.storage.pagedlist import PagedElementList

        entry = self._get(name, KIND_ELEMENT_LIST)
        return PagedElementList(self._pool, entry["root"], entry["size"],
                                entry["height"])

    def save_blob(self, name, data):
        """Store arbitrary bytes under ``name`` (replacing any prior blob)."""
        page_id, _index, existing = self._find(name)
        if existing is not None:
            if existing["kind"] != KIND_BLOB:
                raise CatalogError("%r exists and is not a blob" % name)
            self._free_blob_chain(existing["root"])
        capacity = BlobPage.capacity(self._pool.page_size)
        chunks = [data[i : i + capacity]
                  for i in range(0, len(data), capacity)] or [b""]
        head_id = 0
        previous = None
        page_count = 0
        for chunk in chunks:
            page = self._pool.new_page(BlobPage(chunk))
            page_count += 1
            if previous is None:
                head_id = page.page_id
            else:
                previous.next_id = page.page_id
                self._pool.unpin(previous, dirty=True)
            previous = page
        self._pool.unpin(previous, dirty=True)
        self._put({
            "name": name, "kind": KIND_BLOB, "root": head_id,
            "height": page_count, "size": len(data),
            "leaf_capacity": 0, "internal_capacity": 0,
        })

    def load_blob(self, name):
        """Read back the bytes stored under ``name``."""
        entry = self._get(name, KIND_BLOB)
        parts = []
        page_id = entry["root"]
        while page_id:
            with self._pool.pinned(page_id) as page:
                parts.append(page.data)
                page_id = page.next_id
        return b"".join(parts)

    def _free_blob_chain(self, head_id):
        page_id = head_id
        while page_id:
            page = self._pool.fetch(page_id)
            next_id = page.next_id
            self._pool.free_page(page)
            page_id = next_id
