"""LRU buffer pool over a simulated disk.

All index and data pages are accessed through a buffer pool, mirroring the
paper's experimental system ("storage manager, buffer pool manager, B+-tree
and XR-tree index modules").  The pool keeps decoded page objects resident in
a bounded number of frames; page-miss counts drive the reproduced elapsed-time
results, since the paper reports that "the total elapsed time is dominated by
the I/O's performed, more specifically, the number of page misses".
"""

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

from repro.storage.errors import BufferPoolError, ChecksumError
from repro.storage.pages import Page

DEFAULT_POOL_PAGES = 100  # the paper's fixed buffer pool size


@dataclass
class BufferStats:
    """Counters for logical page requests served by the pool.

    ``max_pinned`` is the high-water mark of *simultaneously pinned*
    frames — the number a per-query page quota must stay above to be
    satisfiable, and the observable ceiling for admission-control tuning.
    ``reset`` rebases it to the pool's current pinned count (a high-water
    mark has no meaningful zero while pages stay pinned).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    max_pinned: int = 0

    def reset(self, pinned_now=0):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.max_pinned = pinned_now

    @property
    def requests(self):
        return self.hits + self.misses

    @property
    def hit_ratio(self):
        if not self.requests:
            return 0.0
        return self.hits / self.requests

    def snapshot(self):
        return BufferStats(self.hits, self.misses, self.evictions,
                           self.writebacks, self.max_pinned)

    def delta(self, earlier):
        # max_pinned is a high-water mark, not a counter: the delta view
        # keeps the later absolute value rather than a meaningless diff.
        return BufferStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
            self.writebacks - earlier.writebacks,
            self.max_pinned,
        )


class LruPolicy:
    """Least-recently-used replacement (the default)."""

    def __init__(self):
        self._order = OrderedDict()  # page_id -> None, oldest first

    def admitted(self, page_id):
        self._order[page_id] = None

    def touched(self, page_id):
        self._order.move_to_end(page_id)

    def removed(self, page_id):
        self._order.pop(page_id, None)

    def choose_victim(self, frames):
        for page_id in self._order:
            if frames[page_id].pin_count == 0:
                return page_id
        return None


class ClockPolicy:
    """Second-chance (clock) replacement.

    A reference bit per frame is set on every touch; the hand sweeps the
    ring, clearing bits and evicting the first unpinned frame whose bit is
    already clear.  Cheaper bookkeeping than LRU at the cost of coarser
    recency — the classic engine trade-off, ablatable via
    ``BufferPool(..., policy="clock")``.
    """

    def __init__(self):
        self._ring = []
        self._position = {}   # page_id -> ring index
        self._referenced = {}
        self._hand = 0

    def admitted(self, page_id):
        self._position[page_id] = len(self._ring)
        self._ring.append(page_id)
        self._referenced[page_id] = True

    def touched(self, page_id):
        self._referenced[page_id] = True

    def removed(self, page_id):
        index = self._position.pop(page_id)
        self._referenced.pop(page_id, None)
        last = self._ring.pop()
        if index < len(self._ring):
            self._ring[index] = last
            self._position[last] = index
        if self._hand >= len(self._ring):
            self._hand = 0

    def choose_victim(self, frames):
        if not self._ring:
            return None
        for _ in range(2 * len(self._ring)):
            page_id = self._ring[self._hand]
            self._hand = (self._hand + 1) % len(self._ring)
            if frames[page_id].pin_count:
                continue
            if self._referenced.get(page_id, False):
                self._referenced[page_id] = False
                continue
            return page_id
        # Everything unpinned was referenced twice around: fall back to the
        # first unpinned frame under the hand.
        for offset in range(len(self._ring)):
            page_id = self._ring[(self._hand + offset) % len(self._ring)]
            if frames[page_id].pin_count == 0:
                return page_id
        return None


_POLICIES = {"lru": LruPolicy, "clock": ClockPolicy}


class _Latch:
    """Re-entrant pool latch that counts contended acquisitions.

    The try-lock fast path means an uncontended acquire costs one C-level
    call; only when another thread holds the latch does ``waits`` tick and
    the blocking acquire begin.  ``waits`` is itself updated without a
    lock — it is a diagnostic counter, and an occasional lost increment
    is acceptable where an extra lock on the hot path is not.
    """

    __slots__ = ("_lock", "waits")

    def __init__(self):
        self._lock = threading.RLock()
        self.waits = 0

    def __enter__(self):
        if not self._lock.acquire(blocking=False):
            self.waits += 1
            self._lock.acquire()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._lock.release()
        return False


class _NullLatch:
    """No-op latch for single-threaded pools (per-session pools)."""

    __slots__ = ()
    waits = 0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


class BufferPool:
    """A fixed-capacity page cache with pin semantics.

    Pages are pinned while in use and must be unpinned by the caller; only
    unpinned frames are eviction candidates.  Dirty frames are written back to
    disk on eviction and on :meth:`flush_all`.  The replacement policy is
    pluggable (``"lru"`` default, ``"clock"`` second-chance).

    With ``latching=True`` (the default) every pool operation runs under a
    single re-entrant latch, making the pool safe for concurrent callers
    (the server's live sessions share the main pool).  Contended
    acquisitions are counted in :attr:`latch_waits`.  Per-session snapshot
    pools are built with ``latching=False`` — they are owned by one thread
    and skip the latch entirely.
    """

    def __init__(self, disk, capacity=DEFAULT_POOL_PAGES, policy="lru",
                 latching=True):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        if policy not in _POLICIES:
            raise BufferPoolError("unknown replacement policy %r" % policy)
        self.disk = disk
        self.capacity = capacity
        self.policy_name = policy
        self.stats = BufferStats()
        #: Optional :class:`~repro.obs.trace.Tracer`; when attached and
        #: enabled, every fetch emits a ``page-fetch`` event.  The default
        #: (None) keeps the hot path at a single predicate check.
        self.tracer = None
        self._policy = _POLICIES[policy]()
        self._frames = {}  # page_id -> Page
        self._pinned = 0   # frames with pin_count > 0 (kept incrementally)
        self._latch = _Latch() if latching else _NullLatch()

    @property
    def latch_waits(self):
        """Contended latch acquisitions since the pool was built."""
        return self._latch.waits

    @property
    def page_size(self):
        return self.disk.page_size

    # -- page access ----------------------------------------------------------

    def fetch(self, page_id):
        """Pin and return the page with ``page_id``, reading it if absent.

        Every miss decodes through :meth:`Page.decode`, which verifies the
        page checksum first — a torn write or flipped bit surfaces here as
        :class:`~repro.storage.errors.ChecksumError` (tagged with the page
        id) instead of silently decoding garbage.
        """
        tracer = self.tracer
        with self._latch:
            page = self._frames.get(page_id)
            if page is not None:
                self.stats.hits += 1
                if tracer is not None and tracer.enabled:
                    tracer.event("page-fetch", page=page_id, hit=True)
                self._policy.touched(page_id)
            else:
                self.stats.misses += 1
                if tracer is not None and tracer.enabled:
                    tracer.event("page-fetch", page=page_id, hit=False)
                self._make_room()
                data = self.disk.read(page_id)
                try:
                    page = Page.decode(data, self.disk.page_size)
                except ChecksumError as exc:
                    raise ChecksumError("page %d: %s" % (page_id, exc),
                                        page_id=page_id) from exc
                page.page_id = page_id
                self._frames[page_id] = page
                self._policy.admitted(page_id)
            if page.pin_count == 0:
                self._note_pinned()
            page.pin_count += 1
            return page

    def new_page(self, page):
        """Allocate a disk page for ``page``, pin it and cache it."""
        if page.page_id is not None:
            raise BufferPoolError("page already has id %r" % (page.page_id,))
        with self._latch:
            self._make_room()
            page.page_id = self.disk.allocate()
            page.dirty = True
            page.pin_count = 1
            self._note_pinned()
            self._frames[page.page_id] = page
            self._policy.admitted(page.page_id)
            return page

    def unpin(self, page, dirty=False):
        """Release one pin on ``page``; ``dirty`` marks it modified."""
        with self._latch:
            if page.pin_count <= 0:
                raise BufferPoolError(
                    "unpin of page %r with no pins" % (page.page_id,))
            if dirty:
                page.dirty = True
            page.pin_count -= 1
            if page.pin_count == 0:
                self._pinned -= 1

    @contextmanager
    def pinned(self, page_id):
        """Context manager pinning ``page_id`` for the duration of the block."""
        page = self.fetch(page_id)
        try:
            yield page
        finally:
            self.unpin(page, dirty=page.dirty)

    def free_page(self, page):
        """Drop ``page`` from the pool and release its disk page.

        The caller must hold the only pin.
        """
        with self._latch:
            if page.pin_count != 1:
                raise BufferPoolError(
                    "freeing page %r with pin count %d"
                    % (page.page_id, page.pin_count)
                )
            del self._frames[page.page_id]
            self._policy.removed(page.page_id)
            self.disk.free(page.page_id)
            page.page_id = None
            page.pin_count = 0
            self._pinned -= 1
            page.dirty = False

    # -- maintenance ------------------------------------------------------------

    def flush_all(self):
        """Write back every dirty frame (pages stay cached).

        On a journaling disk this is also a commit point: the written-back
        pages are staged into the write-ahead journal and ``sync()`` makes
        them durable as one atomic group.
        """
        with self._latch:
            for page in self._frames.values():
                if page.dirty:
                    self._writeback(page)
            sync = getattr(self.disk, "sync", None)
            if sync is not None:
                sync()

    def clear(self):
        """Flush and drop every frame; fails if any page is still pinned."""
        with self._latch:
            for page in self._frames.values():
                if page.pin_count:
                    raise BufferPoolError(
                        "clear with page %r still pinned" % (page.page_id,)
                    )
            self.flush_all()
            for page_id in list(self._frames):
                self._policy.removed(page_id)
            self._frames.clear()

    def reset_stats(self):
        with self._latch:
            self.stats.reset(pinned_now=self._pinned)

    def _note_pinned(self):
        """A frame's pin count just went 0 -> 1: update the high-water mark."""
        self._pinned += 1
        if self._pinned > self.stats.max_pinned:
            self.stats.max_pinned = self._pinned

    @property
    def pinned_count(self):
        return self._pinned

    @property
    def resident_count(self):
        return len(self._frames)

    # -- internals ---------------------------------------------------------------

    def _writeback(self, page):
        self.stats.writebacks += 1
        self.disk.write(page.page_id, page.encode(self.disk.page_size))
        page.dirty = False

    def _make_room(self):
        if len(self._frames) < self.capacity:
            return
        victim_id = self._policy.choose_victim(self._frames)
        if victim_id is None:
            raise BufferPoolError("all %d frames are pinned" % self.capacity)
        victim = self._frames[victim_id]
        if victim.dirty:
            self._writeback(victim)
        self.stats.evictions += 1
        del self._frames[victim_id]
        self._policy.removed(victim_id)
