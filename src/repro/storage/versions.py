"""Pre-commit page versions backing snapshot-isolated reads.

MVCC on this engine rides on the commit protocol PR 2 built: every
``sync()`` is an atomic, sequence-numbered commit group, so "the database
at sequence S" is a perfectly defined set of page images.  A reader that
*pins* S must keep seeing those images while writers commit T = S+1, S+2,
... on top.  The :class:`PageVersionStore` makes that possible with
copy-on-write at the apply boundary:

* when a commit group is about to overwrite page P while any snapshot is
  pinned, the disk first hands the *pre-commit* image to
  :meth:`PageVersionStore.record` tagged with ``upto_sequence = T - 1``
  ("this is P's content for any pinned sequence <= T-1");
* a snapshot read of P at pinned sequence S calls
  :meth:`PageVersionStore.lookup`: the entry with the smallest
  ``upto_sequence >= S`` is P's image at S; no such entry means P has not
  been overwritten since S, so the live committed image is still correct
  and the caller reads the data file (or page dict) directly.

Entries whose ``upto_sequence`` is below every pinned sequence can never
be returned again and are pruned on release; with no snapshots pinned the
store is empty and :attr:`pinned` is False, so the writer's fast path is a
single attribute check per applied page.

The store is shared by one writer and any number of reader threads; a
single lock guards the maps (operations are dict appends and list scans —
micro-critical sections).
"""

import threading


class PageVersionStore:
    """Copy-on-write pre-images of overwritten pages, keyed by sequence."""

    def __init__(self):
        self._lock = threading.Lock()
        self._versions = {}   # page_id -> [(upto_sequence, image), ...] asc
        self._pins = {}       # sequence -> pin count
        #: Lifetime counters (surfaced as gauges by the database hub).
        self.recorded_images = 0
        self.pruned_images = 0

    # -- pinning ---------------------------------------------------------------

    @property
    def pinned(self):
        """True when at least one snapshot is pinned (writer fast path)."""
        return bool(self._pins)

    def pin(self, sequence):
        """Register one snapshot reading at ``sequence``."""
        with self._lock:
            self._pins[sequence] = self._pins.get(sequence, 0) + 1
        return sequence

    def release(self, sequence):
        """Drop one pin on ``sequence``; prunes unreachable versions."""
        with self._lock:
            count = self._pins.get(sequence, 0)
            if count <= 1:
                self._pins.pop(sequence, None)
            else:
                self._pins[sequence] = count - 1
            self._prune_locked()

    def min_pinned(self):
        """The oldest pinned sequence, or None when nothing is pinned."""
        with self._lock:
            return min(self._pins) if self._pins else None

    @property
    def pin_count(self):
        with self._lock:
            return sum(self._pins.values())

    # -- recording -------------------------------------------------------------

    def record(self, page_id, upto_sequence, image):
        """Keep ``image`` as page ``page_id``'s content for pinned
        sequences <= ``upto_sequence``.

        Called by the disk *before* overwriting the committed image (apply
        or free), only while snapshots are pinned.  Re-recording the same
        ``upto_sequence`` is a no-op (the first pre-image wins: it is the
        one that was actually committed).
        """
        with self._lock:
            if not self._pins or min(self._pins) > upto_sequence:
                return
            chain = self._versions.setdefault(page_id, [])
            if chain and chain[-1][0] >= upto_sequence:
                return
            chain.append((upto_sequence, bytes(image)))
            self.recorded_images += 1

    def lookup(self, page_id, sequence):
        """Page ``page_id``'s image as of pinned ``sequence``, or None.

        None means the page has not been overwritten since ``sequence``:
        the caller reads the live committed image instead.
        """
        with self._lock:
            chain = self._versions.get(page_id)
            if not chain:
                return None
            for upto, image in chain:
                if upto >= sequence:
                    return image
            return None

    # -- maintenance -----------------------------------------------------------

    def _prune_locked(self):
        if not self._pins:
            dropped = sum(len(chain) for chain in self._versions.values())
            self._versions.clear()
            self.pruned_images += dropped
            return
        floor = min(self._pins)
        doomed = []
        for page_id, chain in self._versions.items():
            keep = [entry for entry in chain if entry[0] >= floor]
            self.pruned_images += len(chain) - len(keep)
            if keep:
                self._versions[page_id] = keep
            else:
                doomed.append(page_id)
        for page_id in doomed:
            del self._versions[page_id]

    @property
    def versioned_pages(self):
        """Pages with at least one retained pre-image (gauge fodder)."""
        with self._lock:
            return len(self._versions)

    @property
    def retained_images(self):
        with self._lock:
            return sum(len(chain) for chain in self._versions.values())
