"""Holistic twig matching: PathStack generalized to branching patterns.

Where :mod:`repro.query.pathstack` matches linear paths, this module matches
*twigs* — query trees such as ``//employee[email]/name`` viewed as a pattern
with branches — in the holistic style: one synchronized pass over all
per-tag streams builds linked stacks along every root-to-leaf query path,
emitting path solutions, which a final merge phase combines into full twig
matches (one element bound per query node, consistent across branches).

This is the PathStack-based twig evaluation of Bruno et al. (SIGMOD 2002,
their Section 3) — the paper's TwigStack refinement additionally skips
elements that cannot contribute (optimal for descendant-only edges); the
pass here processes every stream element once, which keeps it simple and
strictly correct for both axes.  Element scans are counted, so the engines
can be compared quantitatively.
"""

from dataclasses import dataclass, field

from repro.joins.base import JoinStats
from repro.query.path import Axis, parse_path


@dataclass
class TwigNode:
    """One node of the query twig.

    ``axis`` is the edge type linking this node to its parent (ignored on
    the root).  ``index`` is the node's preorder number, assigned by
    :func:`twig_from_path`.
    """

    tag: str
    axis: object = Axis.DESCENDANT
    children: list = field(default_factory=list)
    index: int = -1
    parent: object = None

    def add(self, child):
        child.parent = self
        self.children.append(child)
        return child

    @property
    def is_leaf(self):
        return not self.children

    def preorder(self):
        out = [self]
        for child in self.children:
            out.extend(child.preorder())
        return out

    def __str__(self):
        text = self.tag
        for child in self.children:
            text += "[%s%s]" % ("" if child.axis is Axis.CHILD else "//",
                                str(child))
        return text


def twig_from_path(path):
    """Build a query twig from a path expression with predicates.

    The main path becomes the trunk; each ``[rel-path]`` predicate becomes a
    branch at its step.  The *last trunk node* is the output node (its
    bindings are the query's matches).
    """
    expression = parse_path(path) if isinstance(path, str) else path
    root = None
    current = None
    for step in expression.steps:
        if step.axis.is_reverse:
            raise ValueError("twig executors handle forward axes only")
        node = TwigNode(step.tag, step.axis)
        if root is None:
            root = node
        else:
            current.add(node)
        current = node
        for predicate in step.predicates:
            _attach_predicate(node, predicate)
    for index, node in enumerate(root.preorder()):
        node.index = index
    return root, current


def _attach_predicate(anchor, predicate):
    from repro.query.path import AttributePredicate

    if isinstance(predicate, AttributePredicate):
        raise ValueError(
            "attribute predicates are value filters, outside the holistic "
            "twig executor's scope; use PathQueryEngine"
        )
    current = anchor
    for step in predicate.steps:
        node = TwigNode(step.tag, step.axis)
        current.add(node)
        current = node
        for nested in step.predicates:
            _attach_predicate(node, nested)


@dataclass
class TwigSolutions:
    """Output of one twig run."""

    twig: str
    matches: list = field(default_factory=list)  # tuples indexed by node
    count: int = 0
    stats: JoinStats = field(default_factory=JoinStats)

    def __len__(self):
        return self.count

    def bindings_of(self, node_index):
        """Distinct elements bound to one query node, in document order."""
        seen = set()
        out = []
        for match in self.matches:
            element = match[node_index]
            if element.start not in seen:
                seen.add(element.start)
                out.append(element)
        out.sort(key=lambda e: e.start)
        return out


def twig_join(entry_source, root, collect=True, stats=None):
    """Match the twig rooted at ``root`` against per-tag element lists.

    ``entry_source(tag)`` must return the start-sorted element list for a
    tag.  Returns a :class:`TwigSolutions` whose matches are tuples indexed
    by query-node preorder index.
    """
    stats = stats or JoinStats()
    nodes = root.preorder()
    streams = {node.index: _Stream(entry_source(node.tag))
               for node in nodes}
    if any(not streams[node.index]._entries for node in nodes):
        return TwigSolutions(str(root), [], 0, stats)
    stacks = {node.index: [] for node in nodes}
    # Path solutions per leaf: lists of dicts {node_index: element}.
    leaf_solutions = {node.index: [] for node in nodes if node.is_leaf}

    by_index = {node.index: node for node in nodes}
    while True:
        # Guardrail checkpoint: streams are in-memory lists, nothing is
        # pinned between iterations.
        stats.checkpoint()
        q = _min_stream(nodes, streams)
        if q is None:
            break
        head = streams[q.index].head
        stats.count(1)
        for stack in stacks.values():
            while stack and stack[-1][0].end < head.start:
                stack.pop()
        parent = q.parent
        if parent is None or stacks[parent.index]:
            link = len(stacks[parent.index]) if parent is not None else 0
            stacks[q.index].append((head, link))
            if q.is_leaf:
                _expand_path(q, stacks, head, leaf_solutions[q.index])
                stacks[q.index].pop()
        streams[q.index].advance()

    matches = _merge_leaf_solutions(root, leaf_solutions, collect)
    result = TwigSolutions(str(root))
    result.stats = stats
    result.count = len(matches)
    result.matches = matches if collect else []
    return result


class _Stream:
    def __init__(self, entries):
        self._entries = entries
        self._index = 0

    @property
    def exhausted(self):
        return self._index >= len(self._entries)

    @property
    def head(self):
        return self._entries[self._index]

    def advance(self):
        self._index += 1


def _min_stream(nodes, streams):
    """The query node whose stream head has the globally smallest start.

    Ties break toward the shallower query node (preorder), so for same-tag
    twigs the ancestor-side copy is stacked before descendants look for it.
    """
    best = None
    best_start = None
    for node in nodes:
        stream = streams[node.index]
        if stream.exhausted:
            continue
        if best_start is None or stream.head.start < best_start:
            best = node
            best_start = stream.head.start
    return best


def _expand_path(leaf, stacks, leaf_element, sink):
    """Enumerate root-to-leaf path solutions ending at ``leaf_element``."""
    query_path = []
    node = leaf
    while node is not None:
        query_path.append(node)
        node = node.parent
    query_path.reverse()  # root .. leaf

    def _recurse(position, max_index, binding):
        if position < 0:
            sink.append(dict(binding))
            return
        node = query_path[position]
        below = binding[query_path[position + 1].index]
        for index in range(max_index - 1, -1, -1):
            element, link = stacks[node.index][index]
            if element.start >= below.start or element.end < below.end:
                continue
            if query_path[position + 1].axis is Axis.CHILD and \
                    element.level != below.level - 1:
                continue
            binding[node.index] = element
            _recurse(position - 1, link if position else 0, binding)
            del binding[node.index]

    if len(query_path) == 1:
        sink.append({leaf.index: leaf_element})
        return
    leaf_frame = stacks[leaf.index][-1]
    _recurse(len(query_path) - 2, leaf_frame[1],
             {leaf.index: leaf_element})


def _merge_leaf_solutions(root, leaf_solutions, collect):
    """Hash-join per-leaf path solutions on their shared query nodes."""
    leaves = [node for node in root.preorder() if node.is_leaf]
    if not leaves:
        return []
    first = leaves[0]
    covered = _path_node_indexes(first)
    current = leaf_solutions[first.index]
    for leaf in leaves[1:]:
        path_indexes = _path_node_indexes(leaf)
        shared = sorted(covered & path_indexes)
        grouped = {}
        for solution in leaf_solutions[leaf.index]:
            key = tuple(solution[i].start for i in shared)
            grouped.setdefault(key, []).append(solution)
        merged = []
        for partial in current:
            key = tuple(partial[i].start for i in shared)
            for solution in grouped.get(key, ()):
                combined = dict(partial)
                combined.update(solution)
                merged.append(combined)
        current = merged
        covered |= path_indexes
    total = len(root.preorder())
    return [tuple(binding[i] for i in range(total)) for binding in current]


def _path_node_indexes(leaf):
    indexes = set()
    node = leaf
    while node is not None:
        indexes.add(node.index)
        node = node.parent
    return indexes


_INF = float("inf")


def twig_stack_join(entry_source, root, collect=True, stats=None):
    """TwigStack proper: the getNext-guided holistic twig join.

    Unlike :func:`twig_join` (which examines every stream element once),
    TwigStack's ``getNext`` advances streams past elements that provably
    cannot participate — an element of query node ``q`` whose region ends
    before the *largest* current head start among ``q``'s children cannot
    contain any current or future element of that child, so it is skipped
    unexamined.  For descendant-only twigs this makes the pass worst-case
    optimal (Bruno et al.); with child edges the skip condition is still
    safe (containment is necessary for parenthood), merely less tight.
    """
    stats = stats or JoinStats()
    nodes = root.preorder()
    streams = {node.index: _Stream(entry_source(node.tag))
               for node in nodes}
    if any(not streams[node.index]._entries for node in nodes):
        return TwigSolutions(str(root), [], 0, stats)
    stacks = {node.index: [] for node in nodes}
    leaf_solutions = {node.index: [] for node in nodes if node.is_leaf}

    def head_start(node):
        stream = streams[node.index]
        return stream.head.start if not stream.exhausted else _INF

    def head_end(node):
        stream = streams[node.index]
        return stream.head.end if not stream.exhausted else _INF

    def subtree_live(node):
        """Can this subtree still produce *new* path solutions?  Yes iff
        some leaf stream under it is not exhausted (already-stacked
        ancestor frames serve the rest of the path)."""
        if node.is_leaf:
            return not streams[node.index].exhausted
        return any(subtree_live(child) for child in node.children)

    def get_next(q):
        """The query node whose head should be processed next (None when
        the subtree is inert), advancing streams past elements that
        provably cannot participate.

        When every live child has returned itself, each live child's own
        stream is live (an exhausted-stream child always hands back a
        deeper node), so the min/max head comparisons below see finite
        starts only.
        """
        if q.is_leaf:
            return q if not streams[q.index].exhausted else None
        live = [child for child in q.children if subtree_live(child)]
        if not live:
            return None
        for child in live:
            n = get_next(child)
            if n is not None and n is not child:
                return n
        n_min = min(live, key=head_start)
        n_max = max(live, key=head_start)
        # Elements of q that end before the largest live child head cannot
        # contain any current or future element of that child: skip them.
        while not streams[q.index].exhausted and \
                head_end(q) < head_start(n_max):
            stats.count(1)  # examined and skipped
            streams[q.index].advance()
        if head_start(q) < head_start(n_min):
            return q
        return n_min

    while True:
        # Guardrail checkpoint (pin-free: twig streams are in-memory).
        stats.checkpoint()
        q = get_next(root)
        if q is None:
            break
        stream = streams[q.index]
        if stream.exhausted:
            break
        head = stream.head
        stats.count(1)
        parent = q.parent
        # Clean ONLY q's and its parent's stacks (Bruno et al.).  Unlike
        # the exhaustive twig_join, getNext does not process elements in
        # global start order: a sibling branch may later deliver an element
        # with a *smaller* start, so frames further up the path that ended
        # before this head can still be needed and must not be popped here
        # (the solution expansion filters non-ancestors itself).
        for node in (q, parent):
            if node is None:
                continue
            stack = stacks[node.index]
            while stack and stack[-1][0].end < head.start:
                stack.pop()
        if parent is None or stacks[parent.index]:
            link = len(stacks[parent.index]) if parent is not None else 0
            stacks[q.index].append((head, link))
            if q.is_leaf:
                _expand_path(q, stacks, head, leaf_solutions[q.index])
                stacks[q.index].pop()
        stream.advance()

    matches = _merge_leaf_solutions(root, leaf_solutions, collect)
    result = TwigSolutions(str(root))
    result.stats = stats
    result.count = len(matches)
    result.matches = matches if collect else []
    return result


def evaluate_twig(document, path, collect=True, runtime=None, profile=None):
    """Convenience wrapper: match ``path`` (with predicates) holistically.

    Returns ``(solutions, output_node_index)`` — the output node is the last
    trunk step, whose distinct bindings equal the pipeline engine's matches.
    ``runtime`` optionally attaches a :class:`~repro.query.runtime.\
    QueryContext` so the holistic pass honours deadlines and cancellation;
    ``profile`` (or ``runtime.profile``) records the pass as one
    ``"holistic"`` operator.
    """
    root, output = twig_from_path(path)
    stats = JoinStats()
    if runtime is not None:
        stats.runtime = runtime.start()
        if profile is None:
            profile = runtime.profile
    if profile is not None:
        with profile.operator("twig-stack %s" % path, "holistic",
                              algorithm="twig-stack",
                              stats=stats) as op:
            solutions = twig_join(document.entries_for_tag, root,
                                  collect=collect, stats=stats)
            op.rows_out = solutions.count
    else:
        solutions = twig_join(document.entries_for_tag, root,
                              collect=collect, stats=stats)
    return solutions, output.index
