"""Path-expression evaluation over XR-tree indexed documents.

This is the paper's stated future work (Section 7): "query evaluation
strategies for complex XML queries (i.e. a combination of multiple structural
joins) over XML data on which proper XR-tree indexes have been built."

A path like ``//department//employee/name`` is parsed into steps
(:mod:`repro.query.path`) and evaluated as a pipeline of structural joins
(:mod:`repro.query.engine`), with XR-tree indexes built per element set and
reused across queries.
"""

from repro.query.admission import (
    AdmissionController,
    AdmissionStats,
    QueryRejected,
)
from repro.query.engine import PathQueryEngine, QueryError, QueryResult
from repro.query.runtime import (
    CancellationToken,
    DeadlineExceeded,
    PageQuotaExceeded,
    QueryCancelled,
    QueryContext,
    QueryRuntimeError,
    RowCapExceeded,
)
from repro.query.path import (
    AttributePredicate,
    Axis,
    PathExpression,
    PathStep,
    parse_path,
)
from repro.query.pathstack import (
    PathSolutions,
    evaluate_path_stack,
    path_stack,
)
from repro.query.estimate import JoinEstimate, estimate_join
from repro.query.planner import (
    EstimatingPlanner,
    GreedyPlanner,
    LeftToRightPlanner,
    execute_plan,
)
from repro.query.twigjoin import (
    TwigNode,
    TwigSolutions,
    evaluate_twig,
    twig_from_path,
    twig_join,
    twig_stack_join,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CancellationToken",
    "DeadlineExceeded",
    "PageQuotaExceeded",
    "QueryCancelled",
    "QueryContext",
    "QueryError",
    "QueryRejected",
    "QueryRuntimeError",
    "RowCapExceeded",
    "EstimatingPlanner",
    "GreedyPlanner",
    "JoinEstimate",
    "estimate_join",
    "LeftToRightPlanner",
    "execute_plan",
    "TwigNode",
    "TwigSolutions",
    "evaluate_twig",
    "twig_from_path",
    "twig_join",
    "AttributePredicate",
    "Axis",
    "PathExpression",
    "PathQueryEngine",
    "PathSolutions",
    "PathStep",
    "QueryResult",
    "evaluate_path_stack",
    "parse_path",
    "path_stack",
]
