"""Query-runtime guardrails: deadlines, cancellation, budgets, row caps.

The paper's cost model prices every index operation in I/Os
(``O(log_F N + R)`` for FindAncestors, Theorem 4), which makes page
requests the natural budget unit for an entire query: a
:class:`QueryContext` carries a wall-clock deadline, a cooperative
:class:`CancellationToken`, a buffer-pool page quota and a result-row cap,
and the join loops call back into it at *pin-free* checkpoints so a tripped
guardrail can never leak a pinned buffer frame.

The hook is :class:`~repro.joins.base.JoinStats`: every join algorithm
already threads one stats object through its hot loop, so attaching a
context to the stats (``stats.runtime = context``) arms every loop at once.
``JoinStats.checkpoint()`` — called once per loop iteration, at the top,
where no page is pinned — forwards to :meth:`QueryContext.tick`;
``JoinSink.emit`` charges every output pair against the row cap.

Trip semantics:

* a trip raises a typed subclass of :class:`QueryRuntimeError` —
  :class:`QueryCancelled`, :class:`DeadlineExceeded`,
  :class:`PageQuotaExceeded` or :class:`RowCapExceeded`;
* :class:`PageQuotaExceeded` is special: the query engine catches it and
  retries once on the streaming stack-tree plan (the *degradation ladder*,
  see :meth:`PathQueryEngine.evaluate`), with the quota rebased for the
  retry but the deadline left running;
* cancellation and budget checks are O(1) integer comparisons on every
  tick; the deadline reads the clock only every ``check_every`` ticks, so
  an idle context adds almost nothing to a join's per-element cost
  (bounded by ``benchmarks/bench_runtime_overhead.py``).
"""

import time


class QueryRuntimeError(Exception):
    """Base class for guardrail trips; ``reason`` names the guardrail."""

    reason = "runtime"


class QueryCancelled(QueryRuntimeError):
    """The query's :class:`CancellationToken` was cancelled."""

    reason = "cancelled"


class DeadlineExceeded(QueryRuntimeError):
    """The query ran past its wall-clock deadline."""

    reason = "deadline"


class PageQuotaExceeded(QueryRuntimeError):
    """The query used more buffer-pool page requests than its quota.

    The query engine treats this trip as a *degradation* signal, not a
    failure: an xr-stack plan is retried once as a streaming stack-tree
    plan before the error is allowed to surface.
    """

    reason = "page-quota"


class RowCapExceeded(QueryRuntimeError):
    """The query emitted more output rows than its cap allows."""

    reason = "row-cap"


class CancellationToken:
    """A cooperative cancellation flag shared between caller and query.

    The caller keeps a reference and calls :meth:`cancel` (from a signal
    handler, another thread, an admission controller shedding load, ...);
    the running query observes the flag at its next checkpoint and raises
    :class:`QueryCancelled`.

    >>> token = CancellationToken()
    >>> token.cancelled
    False
    >>> token.cancel("client disconnected")
    >>> token.cancelled
    True
    """

    __slots__ = ("_cancelled", "_message")

    def __init__(self):
        self._cancelled = False
        self._message = None

    def cancel(self, message="cancelled"):
        """Request cancellation (idempotent; the first message wins)."""
        if not self._cancelled:
            self._message = message
            self._cancelled = True

    @property
    def cancelled(self):
        return self._cancelled

    @property
    def message(self):
        return self._message


#: How many checkpoint ticks pass between clock reads by default.  Token
#: and budget checks are plain integer comparisons and run on every tick.
DEFAULT_CHECK_EVERY = 32


class QueryContext:
    """Per-query guardrails: deadline, cancellation, page quota, row cap.

    All limits are optional; a context with none set is *idle* and adds
    only a counter increment per checkpoint.  One context governs one
    query evaluation — create a fresh one per query (or use
    :meth:`AdmissionController.runtime_for
    <repro.query.admission.AdmissionController.runtime_for>`).

    ``deadline`` is in wall-clock seconds from :meth:`start`.
    ``page_budget`` bounds *logical* page requests (buffer-pool hits plus
    misses) — the deterministic superset of the paper's page-miss cost
    unit, so tests and quotas behave identically whatever the pool size.
    ``row_cap`` bounds emitted join output pairs.  ``allow_degraded``
    permits the engine's one-shot fallback to a streaming plan when the
    page quota trips.

    ``profile`` optionally attaches a :class:`~repro.obs.profile.\
    QueryProfile`: every join driver governed by this context records its
    per-operator actuals (wall time, logical page fetches, stab-list
    pages, skip counts) there — the mechanism behind
    ``explain(path, analyze=True)``.  The context itself never touches
    the profile; it only carries it to the engine.
    """

    def __init__(self, deadline=None, page_budget=None, row_cap=None,
                 token=None, check_every=DEFAULT_CHECK_EVERY,
                 allow_degraded=True, profile=None):
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        if page_budget is not None and page_budget < 1:
            raise ValueError("page budget must be at least 1")
        if row_cap is not None and row_cap < 0:
            raise ValueError("row cap must be non-negative")
        if check_every < 1:
            raise ValueError("check_every must be at least 1")
        self.deadline = deadline
        self.page_budget = page_budget
        self.row_cap = row_cap
        self.token = token
        self.check_every = check_every
        self.allow_degraded = allow_degraded
        self.profile = profile
        self.degraded = False
        self.degrade_reason = None
        self._pool = None
        self._base_requests = 0
        self._deadline_at = None
        self._started_at = None
        self._ticks = 0
        self._since_clock = 0
        self._rows = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self, pool=None):
        """Arm the context: start the deadline clock, bind the pool.

        Idempotent per query: calling ``start`` again restarts the clock
        and rebases the page accounting (a context must not be shared by
        two concurrent queries).  Returns ``self``.
        """
        self._started_at = time.monotonic()
        if self.deadline is not None:
            self._deadline_at = self._started_at + self.deadline
        self._ticks = 0
        self._since_clock = 0
        self._rows = 0
        self.degraded = False
        self.degrade_reason = None
        if pool is not None:
            self.bind_pool(pool)
        return self

    def bind_pool(self, pool):
        """Charge this pool's page requests against the quota from now on."""
        self._pool = pool
        self._base_requests = pool.stats.requests

    def enter_degraded(self, reason):
        """Record a plan downgrade and rebase the page quota for the retry.

        The wall-clock deadline keeps running — degradation buys a cheaper
        plan, not more time.  Row accounting restarts because the retry
        re-emits its output from scratch.
        """
        self.degraded = True
        self.degrade_reason = reason
        self._rows = 0
        if self._pool is not None:
            self._base_requests = self._pool.stats.requests

    # -- checkpoints ---------------------------------------------------------

    def tick(self):
        """One pin-free checkpoint: cheap checks now, the clock every
        ``check_every`` ticks.  Raises the matching guardrail error."""
        self._ticks += 1
        token = self.token
        if token is not None and token.cancelled:
            raise QueryCancelled(token.message or "query cancelled")
        if self.page_budget is not None and self._pool is not None:
            used = self._pool.stats.requests - self._base_requests
            if used > self.page_budget:
                raise PageQuotaExceeded(
                    "page quota exhausted: %d requests > budget %d"
                    % (used, self.page_budget)
                )
        if self._deadline_at is not None:
            self._since_clock += 1
            if self._since_clock >= self.check_every:
                self._since_clock = 0
                if time.monotonic() >= self._deadline_at:
                    raise DeadlineExceeded(
                        "deadline of %.3fs exceeded" % self.deadline
                    )

    def check(self):
        """A full checkpoint (clock included), for non-loop call sites."""
        self._since_clock = self.check_every
        self.tick()

    def note_pair(self):
        """Charge one emitted output row against the cap."""
        self._rows += 1
        if self.row_cap is not None and self._rows > self.row_cap:
            raise RowCapExceeded(
                "row cap exceeded: more than %d output pairs" % self.row_cap
            )

    # -- observability -------------------------------------------------------

    @property
    def ticks(self):
        """Checkpoints passed so far (accumulates across a degraded retry)."""
        return self._ticks

    @property
    def rows_emitted(self):
        return self._rows

    @property
    def pages_used(self):
        """Logical page requests charged since the last (re)base."""
        if self._pool is None:
            return 0
        return self._pool.stats.requests - self._base_requests

    @property
    def elapsed_seconds(self):
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def describe(self):
        """One-line human summary of limits and consumption."""
        limits = []
        if self.deadline is not None:
            limits.append("deadline=%.3fs" % self.deadline)
        if self.page_budget is not None:
            limits.append("page_budget=%d" % self.page_budget)
        if self.row_cap is not None:
            limits.append("row_cap=%d" % self.row_cap)
        if self.token is not None:
            limits.append("token=%s"
                          % ("cancelled" if self.token.cancelled else "armed"))
        state = "degraded(%s)" % self.degrade_reason if self.degraded \
            else "normal"
        return "QueryContext(%s; %s; pages=%d rows=%d elapsed=%.3fs)" % (
            ", ".join(limits) or "unlimited", state, self.pages_used,
            self._rows, self.elapsed_seconds,
        )
