"""Admission control for concurrent queries: slots, a bounded wait queue,
per-query resource quotas, and load shedding.

The ROADMAP's serving story ("heavy traffic from millions of users") needs
one more layer above per-query guardrails: a governor deciding *whether a
query may run at all*.  :class:`AdmissionController` implements the classic
policy production engines converge on:

* at most ``max_active`` queries hold an execution slot at once;
* up to ``max_waiting`` callers may queue for a slot (bounded — the queue
  cannot grow without limit under overload);
* beyond that the controller **sheds load**: :meth:`acquire` fails
  immediately with :class:`QueryRejected` instead of queueing, so a
  saturated server answers "try later" in O(1) rather than stacking work
  it will never finish;
* every admitted query receives a fresh :class:`~repro.query.runtime.\
  QueryContext` carrying the controller's per-query quotas (page quota,
  deadline, row cap), so admission and in-flight guardrails are one
  policy object.

The controller is thread-safe (a condition variable guards the counters)
and also works single-threaded, where a full house simply rejects.

Usage::

    controller = AdmissionController(max_active=4, max_waiting=8,
                                     page_quota=10_000, deadline=2.0)
    with controller.slot() as runtime:
        result = engine.evaluate(path, runtime=runtime)

or, wired into a database, ``XmlDatabase.attach_admission(controller)``
makes every ``db.query(...)`` pass through it.
"""

import threading
from dataclasses import dataclass

from repro.query.runtime import QueryContext, QueryRuntimeError


class QueryRejected(QueryRuntimeError):
    """Admission refused: the server is saturated (load shedding) or the
    caller's patience (``wait_timeout``) ran out before a slot freed."""

    reason = "rejected"


@dataclass
class AdmissionStats:
    """Counters for one controller's lifetime.

    ``admitted``/``rejected`` count acquire outcomes (``rejected`` includes
    wait timeouts); ``completed`` counts released slots; ``queued`` counts
    acquisitions that had to wait; ``peak_active``/``peak_waiting`` are
    high-water marks for capacity tuning.
    """

    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    queued: int = 0
    peak_active: int = 0
    peak_waiting: int = 0

    def reset(self):
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.queued = 0
        self.peak_active = 0
        self.peak_waiting = 0


class _Slot:
    """An execution slot held by one admitted query (context manager)."""

    __slots__ = ("_controller", "runtime", "_released")

    def __init__(self, controller, runtime):
        self._controller = controller
        self.runtime = runtime
        self._released = False

    def release(self):
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self):
        return self.runtime

    def __exit__(self, exc_type, exc, tb):
        self.release()


class AdmissionController:
    """Bounded concurrency with load shedding and per-query quotas.

    ``max_active`` execution slots; ``max_waiting`` bounded queue (0 =
    never queue, reject as soon as the slots are full); ``wait_timeout``
    seconds a queued caller waits before being rejected (None = wait
    forever).  ``page_quota``, ``deadline`` and ``row_cap`` are stamped
    onto the :class:`~repro.query.runtime.QueryContext` each admitted
    query receives.
    """

    def __init__(self, max_active=4, max_waiting=8, wait_timeout=None,
                 page_quota=None, deadline=None, row_cap=None):
        if max_active < 1:
            raise ValueError("max_active must be at least 1")
        if max_waiting < 0:
            raise ValueError("max_waiting must be non-negative")
        self.max_active = max_active
        self.max_waiting = max_waiting
        self.wait_timeout = wait_timeout
        self.page_quota = page_quota
        self.deadline = deadline
        self.row_cap = row_cap
        self.stats = AdmissionStats()
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0

    # -- admission -----------------------------------------------------------

    def acquire(self, timeout=None):
        """Obtain an execution slot or raise :class:`QueryRejected`.

        Returns a slot usable as a context manager whose ``as`` value is
        the per-query :class:`~repro.query.runtime.QueryContext` (None
        when the controller has no per-query quotas configured).
        ``timeout`` overrides the controller's ``wait_timeout``.
        """
        wait_limit = self.wait_timeout if timeout is None else timeout
        with self._cond:
            if self._active >= self.max_active:
                if self._waiting >= self.max_waiting:
                    self.stats.rejected += 1
                    raise QueryRejected(
                        "admission queue full (%d active, %d waiting)"
                        % (self._active, self._waiting)
                    )
                self.stats.queued += 1
                self._waiting += 1
                self.stats.peak_waiting = max(self.stats.peak_waiting,
                                              self._waiting)
                try:
                    if not self._cond.wait_for(
                            lambda: self._active < self.max_active,
                            timeout=wait_limit):
                        self.stats.rejected += 1
                        raise QueryRejected(
                            "no slot freed within %.3fs" % wait_limit
                        )
                finally:
                    self._waiting -= 1
            self._active += 1
            self.stats.admitted += 1
            self.stats.peak_active = max(self.stats.peak_active, self._active)
        return _Slot(self, self.runtime_for())

    def slot(self, timeout=None):
        """Alias for :meth:`acquire` reading naturally as a ``with`` block."""
        return self.acquire(timeout)

    def _release(self):
        with self._cond:
            self._active -= 1
            self.stats.completed += 1
            self._cond.notify()

    # -- policy --------------------------------------------------------------

    def runtime_for(self):
        """A fresh per-query context carrying this controller's quotas.

        None when no per-query limit is configured — callers then run
        unguarded (or supply their own context).
        """
        if (self.page_quota is None and self.deadline is None
                and self.row_cap is None):
            return None
        return QueryContext(deadline=self.deadline,
                            page_budget=self.page_quota,
                            row_cap=self.row_cap)

    # -- introspection -------------------------------------------------------

    @property
    def active(self):
        return self._active

    @property
    def waiting(self):
        return self._waiting

    def describe(self):
        return ("AdmissionController(active=%d/%d, waiting=%d/%d, "
                "admitted=%d, rejected=%d)"
                % (self._active, self.max_active, self._waiting,
                   self.max_waiting, self.stats.admitted,
                   self.stats.rejected))
