"""PathStack — holistic path matching over element streams.

The paper evaluates *binary* structural joins and leaves "complex XML
queries (i.e. a combination of multiple structural joins)" as future work
(Section 7).  The join-pipeline engine in :mod:`repro.query.engine` is one
answer; this module implements the other classic answer: the PathStack
algorithm (Bruno, Koudas, Srivastava: *Holistic Twig Joins*, SIGMOD 2002),
which matches an entire linear path pattern in one synchronized pass over
the per-tag element streams, with a chain of linked stacks encoding all
partial solutions compactly.

Unlike the pipeline (which materializes each step's matches), PathStack
emits complete *path solutions* — one tuple per embedding of the whole
pattern — using memory bounded by the document depth times the path length.
Parent-child edges are checked during solution enumeration, the standard
variant.
"""

from dataclasses import dataclass, field

from repro.joins.base import JoinStats
from repro.query.path import Axis, parse_path


@dataclass
class PathSolutions:
    """Output of one PathStack run."""

    path: str
    solutions: list = field(default_factory=list)
    count: int = 0
    stats: JoinStats = field(default_factory=JoinStats)

    def __len__(self):
        return self.count

    def last_elements(self):
        """Distinct final-step elements, in document order (for comparison
        with the join-pipeline engine's result)."""
        seen = set()
        out = []
        for solution in self.solutions:
            last = solution[-1]
            if last.start not in seen:
                seen.add(last.start)
                out.append(last)
        out.sort(key=lambda e: e.start)
        return out


class _Stream:
    """A peekable iterator over one query node's element list."""

    def __init__(self, entries):
        self._entries = entries
        self._index = 0

    @property
    def exhausted(self):
        return self._index >= len(self._entries)

    @property
    def head(self):
        return self._entries[self._index]

    def advance(self):
        self._index += 1


def path_stack(streams_entries, axes, collect=True, stats=None):
    """Run PathStack over per-step element lists.

    ``streams_entries[i]`` is the start-sorted element list of step ``i``;
    ``axes[i]`` is the axis linking step ``i`` to step ``i - 1``
    (``axes[0]`` is ignored — the first step matches anywhere).  Returns a
    :class:`PathSolutions`.
    """
    stats = stats or JoinStats()
    n = len(streams_entries)
    if n == 0 or any(not entries for entries in streams_entries):
        return PathSolutions("", [], 0, stats)
    streams = [_Stream(entries) for entries in streams_entries]
    # stacks[i] holds (element, parent_stack_size_at_push): the second
    # component links each frame to the frames of stack i-1 it may combine
    # with (every frame at index < link is a valid ancestor candidate).
    stacks = [[] for _ in range(n)]
    result = PathSolutions("")
    result.stats = stats

    while not streams[-1].exhausted:
        q_min = _min_stream(streams)
        if q_min is None:
            break
        head = streams[q_min].head
        stats.count(1)
        # Pop frames that ended before the new element from every stack.
        for stack in stacks:
            while stack and stack[-1][0].end < head.start:
                stack.pop()
        if q_min == 0 or stacks[q_min - 1]:
            stacks[q_min].append((head, len(stacks[q_min - 1])
                                  if q_min else 0))
            if q_min == n - 1:
                _expand_solutions(stacks, axes, head, result, collect)
                stacks[q_min].pop()
        streams[q_min].advance()
    return result


def _min_stream(streams):
    """Index of the non-exhausted stream with the smallest head start.

    Ties keep the shallowest query node, so for same-tag self-paths the
    ancestor-side copy of an element is stacked before the descendant-side
    copy considers it.  (Exhausted interior streams are fine: deeper
    elements can still combine with frames already on the stacks, and the
    stack-emptiness test in the main loop discards the rest.)
    """
    best = None
    best_start = None
    for index, stream in enumerate(streams):
        if stream.exhausted:
            continue
        if best_start is None or stream.head.start < best_start:
            best = index
            best_start = stream.head.start
    return best


def _expand_solutions(stacks, axes, leaf_element, result, collect):
    """Enumerate all root-to-leaf combinations ending at ``leaf_element``.

    Walks the linked stacks from the leaf inward; a frame at stack ``i``
    pushed with link ``p`` may pair with any frame of stack ``i - 1`` at
    index < ``p`` — plus the parent-child level check when the axis is
    CHILD.
    """
    n = len(stacks)

    def _recurse(step, max_index, suffix):
        if step < 0:
            result.count += 1
            if collect:
                result.solutions.append(tuple(suffix))
            return
        for index in range(max_index - 1, -1, -1):
            element, link = stacks[step][index]
            below = suffix[0]
            if element.start >= below.start or element.end < below.end:
                # Not a strict ancestor — happens for same-tag self-paths
                # (a//a), where one element appears in adjacent streams.
                continue
            if axes[step + 1] is Axis.CHILD and \
                    element.level != below.level - 1:
                continue
            _recurse(step - 1, link if step else 0, [element] + suffix)

    leaf_frame = stacks[n - 1][-1]
    if n == 1:
        result.count += 1
        if collect:
            result.solutions.append((leaf_element,))
        return
    _recurse(n - 2, leaf_frame[1], [leaf_element])


def evaluate_path_stack(document, path, collect=True, profile=None):
    """Convenience wrapper: run PathStack for ``path`` over ``document``.

    Only predicate-free linear paths are supported (PathStack's domain);
    use :class:`~repro.query.engine.PathQueryEngine` for twigs.
    ``profile`` optionally records the pass as one ``"holistic"``
    operator on a :class:`~repro.obs.profile.QueryProfile`.
    """
    expression = parse_path(path) if isinstance(path, str) else path
    if any(step.predicates for step in expression.steps):
        raise ValueError("PathStack handles linear paths; "
                         "use PathQueryEngine for predicates")
    if any(step.axis.is_reverse for step in expression.steps):
        raise ValueError("PathStack handles forward axes only")
    streams = []
    for index, step in enumerate(expression.steps):
        entries = document.entries_for_tag(step.tag)
        if index == 0 and step.axis is Axis.CHILD:
            # Absolute /tag first step binds root-level elements only.
            entries = [e for e in entries if e.level == 0]
        streams.append(entries)
    axes = [step.axis for step in expression.steps]
    if profile is not None:
        stats = JoinStats()
        with profile.operator("path-stack %s" % expression, "holistic",
                              algorithm="path-stack",
                              input_d=sum(len(s) for s in streams),
                              stats=stats) as op:
            result = path_stack(streams, axes, collect=collect, stats=stats)
            op.rows_out = result.count
    else:
        result = path_stack(streams, axes, collect=collect)
    result.path = str(expression)
    return result
