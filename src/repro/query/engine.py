"""Evaluating path expressions as pipelines of structural joins.

The engine indexes each queried element set with an XR-tree (built lazily and
cached), then evaluates a path left to right: the current matched set plays
the ancestor role in a structural join against the next step's element set,
and the matched descendants become the new current set.  This is precisely
the "combination of multiple structural joins" execution model the paper
leaves as future work, built on the primitives it provides.

Intermediate results are bulk-loaded into throwaway XR-trees so every join in
the pipeline is an XR-stack join; a ``strategy="stack-tree"`` escape hatch
runs the pipeline on plain merged lists instead (useful for comparing plans).
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.api import StorageContext, build_element_list, build_xr_tree
from repro.joins import stack_tree_join, xr_stack_join
from repro.joins.base import JoinStats
from repro.obs.profile import QueryProfile
from repro.obs.trace import NULL_SPAN
from repro.query.path import AttributePredicate, Axis, parse_path
from repro.query.runtime import PageQuotaExceeded, QueryContext
from repro.storage.errors import ChecksumError


class QueryError(Exception):
    """Evaluation-time failure (unknown tag, unsupported feature, or a
    storage-level fault wrapped with query context).

    When the underlying cause is a :class:`~repro.storage.errors.\
    ChecksumError` surfacing mid-join, the instance carries ``query`` (the
    path text) and ``index_name`` (the tag whose index failed), and chains
    the original error.
    """

    def __init__(self, message, query=None, index_name=None):
        super().__init__(message)
        self.query = query
        self.index_name = index_name


@dataclass
class QueryResult:
    """Matched elements plus the run's accumulated join statistics.

    ``degraded`` is True when the page quota tripped mid-evaluation and
    the engine completed the query on the streaming stack-tree plan
    instead (``degrade_reason`` names the trigger); ``runtime`` is the
    governing :class:`~repro.query.runtime.QueryContext`, if any;
    ``profile`` is the :class:`~repro.obs.profile.QueryProfile` with
    per-operator actuals, when one was attached.
    """

    path: str
    matches: list
    stats: JoinStats = field(default_factory=JoinStats)
    joins_run: int = 0
    degraded: bool = False
    degrade_reason: str = None
    runtime: object = None
    profile: object = None

    def __len__(self):
        return len(self.matches)

    def starts(self):
        return [entry.start for entry in self.matches]


class PathQueryEngine:
    """Evaluates path expressions over one region-encoded document.

    >>> from repro.workloads import department_dataset
    >>> engine = PathQueryEngine(department_dataset(2000).document)
    >>> result = engine.evaluate("//employee/name")
    >>> len(result) > 0
    True
    """

    def __init__(self, document, context=None, strategy="xr-stack",
                 index_loader=None, observability=None):
        """``index_loader(tag)`` may supply a pre-built XR-tree for a tag
        (e.g. one persisted in a catalog); return None to fall back to
        building one from the document's entries.

        ``observability`` optionally attaches an
        :class:`~repro.obs.Observability` hub: its tracer is wired to the
        buffer pool (page-fetch events) and every evaluation feeds the
        hub's query metrics and slow-query log.
        """
        if strategy not in ("xr-stack", "stack-tree"):
            raise QueryError("unknown strategy %r" % strategy)
        self.document = document
        self.context = context or StorageContext()
        self.strategy = strategy
        self.observability = observability
        if observability is not None and self.context.pool.tracer is None:
            self.context.pool.tracer = observability.tracer
        self._index_loader = index_loader
        self._tag_entries = {}
        self._tag_indexes = {}
        self._all_tags = None
        self._strategy_override = None
        self._active_tag = None
        self._profile = None

    # -- element-set access -----------------------------------------------------

    def entries_for(self, tag):
        """The start-sorted element set for ``tag`` (cached)."""
        self._active_tag = tag  # checksum-failure attribution
        if tag not in self._tag_entries:
            if tag == "*":
                if self._all_tags is None:
                    self._all_tags = sorted(self.document.tags())
                entries = []
                for known in self._all_tags:
                    entries.extend(self.entries_for(known))
                entries.sort(key=lambda e: e.start)
                self._tag_entries[tag] = entries
            else:
                self._tag_entries[tag] = self.document.entries_for_tag(tag)
        return self._tag_entries[tag]

    def index_for(self, tag):
        """The XR-tree index over ``tag``'s element set.

        Loader-provided trees are *not* cached here: the loader (typically
        an :class:`~repro.storage.indexmanager.IndexManager` behind an
        :class:`~repro.core.database.XmlDatabase`) owns their lifecycle,
        and double-caching would let this engine serve a handle the manager
        already evicted or mutated.  Only trees the engine builds itself
        are kept in ``_tag_indexes``.
        """
        self._active_tag = tag  # checksum-failure attribution
        if self._index_loader is not None:
            tree = self._index_loader(tag)
            if tree is not None:
                return tree
        if tag not in self._tag_indexes:
            self._tag_indexes[tag] = build_xr_tree(self.entries_for(tag),
                                                   self.context.pool)
        return self._tag_indexes[tag]

    # -- cache invalidation ---------------------------------------------------

    def invalidate_tag(self, tag):
        """Drop cached state for one tag (after its element set mutated).

        The ``"*"`` wildcard set aggregates every tag, so it is dropped
        alongside, as is the known-tag list (the mutation may have
        introduced or removed a tag).
        """
        for cache in (self._tag_entries, self._tag_indexes):
            cache.pop(tag, None)
            cache.pop("*", None)
        self._all_tags = None

    def invalidate_all(self):
        """Drop every cached element set and index."""
        self._tag_entries.clear()
        self._tag_indexes.clear()
        self._all_tags = None

    # -- evaluation -----------------------------------------------------------------

    def evaluate(self, path, runtime=None, profile=None):
        """Evaluate ``path`` (text or a parsed expression).

        Returns a :class:`QueryResult` whose matches are the elements bound
        to the path's *last* step, in document order.

        ``runtime`` optionally attaches a :class:`~repro.query.runtime.\
        QueryContext` governing the run.  Deadlines, cancellation and row
        caps raise their typed errors; a tripped *page quota* instead
        walks the degradation ladder: an xr-stack evaluation is retried
        once as a streaming stack-tree plan (no throwaway index builds,
        sequential list scans) with the quota rebased, and the result is
        marked ``degraded``.  If the streaming plan exhausts the quota
        too, :class:`~repro.query.runtime.PageQuotaExceeded` surfaces.

        ``profile`` optionally attaches a :class:`~repro.obs.profile.\
        QueryProfile` recording per-operator actuals (it may also ride in
        on ``runtime.profile``); when an observability hub is wired, every
        evaluation — including failed ones — feeds the query metrics.
        """
        expression = parse_path(path) if isinstance(path, str) else path
        if profile is None and runtime is not None:
            profile = runtime.profile
        if profile is not None:
            if not profile.path:
                profile.path = str(expression)
            if not profile.strategy:
                profile.strategy = self.strategy
        obs = self.observability
        tracer = obs.tracer if obs is not None else None
        span = (tracer.span("query", path=str(expression),
                            strategy=self.strategy)
                if tracer is not None else NULL_SPAN)
        pool = self.context.pool
        base_hits = pool.stats.hits
        base_misses = pool.stats.misses
        started = time.perf_counter()
        if runtime is not None:
            runtime.start(pool)
        try:
            with span:
                try:
                    result = self._evaluate_once(expression, runtime,
                                                 profile=profile)
                except PageQuotaExceeded:
                    if (runtime is None or not runtime.allow_degraded
                            or runtime.degraded
                            or self.strategy != "xr-stack"):
                        raise
                    runtime.enter_degraded("page-quota")
                    if tracer is not None and tracer.enabled:
                        tracer.event("degrade", reason="page-quota",
                                     fallback="stack-tree")
                    if profile is not None:
                        profile.degraded = True
                    result = self._evaluate_once(expression, runtime,
                                                 strategy="stack-tree",
                                                 profile=profile)
                    result.degraded = True
                    result.degrade_reason = "page-quota"
        except Exception as exc:
            self._finish_query(expression, profile, started, base_hits,
                               base_misses, rows=0, degraded=False,
                               error=type(exc).__name__)
            raise
        self._finish_query(expression, profile, started, base_hits,
                           base_misses, rows=len(result),
                           degraded=result.degraded, error=None)
        return result

    def _finish_query(self, expression, profile, started, base_hits,
                      base_misses, rows, degraded, error):
        """Stamp query-level totals on the profile and feed the metrics."""
        seconds = time.perf_counter() - started
        stats = self.context.pool.stats
        hits = stats.hits - base_hits
        misses = stats.misses - base_misses
        if profile is not None:
            profile.wall_seconds += seconds
            profile.page_hits += hits
            profile.page_misses += misses
            profile.page_requests += hits + misses
            profile.rows = rows
            profile.degraded = profile.degraded or degraded
        obs = self.observability
        if obs is not None:
            obs.observe_query(str(expression), seconds, hits + misses,
                              rows, degraded=degraded, error=error)

    def _evaluate_once(self, expression, runtime=None, strategy=None,
                       profile=None):
        """One evaluation pass under an optional forced strategy.

        A :class:`~repro.storage.errors.ChecksumError` escaping from deep
        inside a join loop (a corrupt index page read mid-query) is
        wrapped into :class:`QueryError` carrying the query text and the
        failing index's tag, chaining the original error.
        """
        stats = JoinStats()
        stats.runtime = runtime
        self._joins_run = 0
        self._strategy_override = strategy
        self._active_tag = None
        self._profile = profile
        obs = self.observability
        tracer = obs.tracer if obs is not None else None
        try:
            steps = list(expression.steps)
            if tracer is not None and tracer.enabled:
                tracer.event("plan", strategy=self._current_strategy(),
                             steps=len(steps), path=str(expression))
            first = steps[0]
            if first.axis.is_reverse:
                raise QueryError("a path cannot start with a reverse axis")
            self._active_tag = first.tag
            with self._operator("scan //%s" % first.tag, "scan",
                                "element-list", stats,
                                tag=first.tag) as op:
                current = list(self.entries_for(first.tag))
                if first.axis is Axis.CHILD:
                    # An absolute /tag step binds only root-level elements.
                    current = [e for e in current if e.level == 0]
                if op is not None:
                    op.input_d = len(current)
                    op.rows_out = len(current)
            current = self._apply_predicates(current, first, stats)
            for step in steps[1:]:
                if not current:
                    break
                if runtime is not None:
                    runtime.check()
                self._active_tag = step.tag
                current = self._join_step(current, step, stats)
                self._joins_run += 1
                current = self._apply_predicates(current, step, stats)
        except ChecksumError as exc:
            raise QueryError(
                "query %s failed: %s (index for tag %r is corrupt)"
                % (expression, exc, self._active_tag),
                query=str(expression), index_name=self._active_tag,
            ) from exc
        finally:
            self._strategy_override = None
            self._profile = None
        return QueryResult(str(expression), current, stats, self._joins_run,
                           runtime=runtime, profile=profile)

    def _current_strategy(self):
        """The strategy in force: a degradation override, else the default."""
        return self._strategy_override or self.strategy

    @contextmanager
    def _operator(self, name, kind, algorithm, stats, tag="",
                  input_a=0, input_d=0):
        """Record one executed operator: a profiler entry (when a profile
        is armed) plus a tracer span (when tracing is enabled).  Yields the
        :class:`~repro.obs.profile.OperatorProfile` — or None when no
        profile is attached, so callers guard their ``rows_out`` stamp."""
        obs = self.observability
        tracer = obs.tracer if obs is not None else None
        span = (tracer.span("operator", name=name, op=kind,
                            algorithm=algorithm)
                if tracer is not None else NULL_SPAN)
        profile = self._profile
        with span:
            if profile is None:
                yield None
                return
            with profile.operator(name, kind=kind, algorithm=algorithm,
                                  tag=tag, input_a=input_a, input_d=input_d,
                                  stats=stats,
                                  pool=self.context.pool) as op:
                yield op
            span.note(rows=op.rows_out, pairs=op.pairs,
                      pages=op.page_requests)

    def _reverse_step(self, context, step, stats):
        """``parent::`` / ``ancestor::`` steps: one FindAncestors probe per
        context element against the target tag's XR-tree — the Section 5.1
        primitives driving navigation *up* the tree."""
        tree = self.index_for(step.tag)
        axis_name = "parent" if step.axis is Axis.PARENT else "ancestor"
        with self._operator("%s-probe //%s" % (axis_name, step.tag),
                            "probe", "find-ancestors", stats, tag=step.tag,
                            input_a=tree.size,
                            input_d=len(context)) as op:
            seen = set()
            out = []
            for element in context:
                stats.checkpoint()
                required = (element.level - 1 if step.axis is Axis.PARENT
                            else None)
                found = tree.find_ancestors(element.start, counter=stats,
                                            required_level=required)
                for ancestor in found:
                    if ancestor.start not in seen:
                        seen.add(ancestor.start)
                        out.append(ancestor)
            out.sort(key=lambda e: e.start)
            if op is not None:
                op.rows_out = len(out)
        return out

    # -- predicates (twig filters) ------------------------------------------------

    def _apply_predicates(self, matches, step, stats):
        """Keep only elements satisfying every ``[...]`` predicate —
        structural (``[rel-path]``) or value (``[@attr=...]``)."""
        for predicate in step.predicates:
            if not matches:
                break
            if isinstance(predicate, AttributePredicate):
                matches = self._filter_attribute(matches, predicate, stats)
            else:
                matches = self._filter_exists(matches, predicate, stats)
        return matches

    def _filter_attribute(self, matches, predicate, stats):
        """Value search: keep elements whose source node carries the
        attribute (and value, when given).  Requires a document exposing
        ``node_at`` — entry ``ptr`` fields are document ordinals."""
        node_at = getattr(self.document, "node_at", None)
        if node_at is None:
            raise QueryError(
                "attribute predicates need node access; this document "
                "view does not provide node_at()"
            )
        with self._operator("filter [@%s]" % predicate.name, "filter",
                            "value-lookup", stats,
                            input_d=len(matches)) as op:
            survivors = []
            for element in matches:
                stats.checkpoint()
                stats.count(1)
                node = node_at(element.ptr)
                value = node.attributes.get(predicate.name)
                if value is None:
                    continue
                if predicate.value is None or value == predicate.value:
                    survivors.append(element)
            if op is not None:
                op.rows_out = len(survivors)
        return survivors

    def _filter_exists(self, context, predicate, stats):
        """Existential twig filter, evaluated as semi-joins right to left.

        For a predicate ``t1 / t2 // t3`` the qualifying ``t2`` elements are
        those with a ``t3`` descendant, the qualifying ``t1`` those with a
        qualifying ``t2`` child, and the surviving context elements those
        with a qualifying ``t1`` on the predicate's leading axis.
        """
        steps = list(predicate.steps)
        if any(step.axis.is_reverse for step in steps):
            raise QueryError("reverse axes are not supported inside "
                             "predicates")
        current = list(self.entries_for(steps[-1].tag))
        current = self._apply_predicates(current, steps[-1], stats)
        for earlier, later in zip(reversed(steps[:-1]), reversed(steps[1:])):
            candidates = list(self.entries_for(earlier.tag))
            candidates = self._apply_predicates(candidates, earlier, stats)
            current = self._semi_join(candidates, current, later.axis, stats)
        return self._semi_join(context, current, steps[0].axis, stats)

    def _semi_join(self, ancestors, descendants, axis, stats):
        """Distinct ancestors with at least one match among descendants."""
        if not ancestors or not descendants:
            return []
        self._joins_run += 1
        parent_child = axis is Axis.CHILD
        ancestors = sorted(ancestors, key=lambda e: e.start)
        descendants = sorted(descendants, key=lambda e: e.start)
        algorithm = self._current_strategy()
        name = "semi-join (%s)" % ("child" if parent_child
                                   else "descendant")
        with self._operator(name, "semi-join", algorithm, stats,
                            input_a=len(ancestors),
                            input_d=len(descendants)) as op:
            if algorithm == "xr-stack":
                a_tree = build_xr_tree(ancestors, self.context.pool)
                d_tree = build_xr_tree(descendants, self.context.pool)
                pairs, _ = xr_stack_join(a_tree, d_tree,
                                         parent_child=parent_child,
                                         stats=stats)
            else:
                a_list = build_element_list(ancestors, self.context.pool)
                d_list = build_element_list(descendants, self.context.pool)
                pairs, _ = stack_tree_join(a_list, d_list,
                                           parent_child=parent_child,
                                           stats=stats)
            seen = set()
            survivors = []
            for ancestor, _descendant in pairs:
                if ancestor.start not in seen:
                    seen.add(ancestor.start)
                    survivors.append(ancestor)
            survivors.sort(key=lambda e: e.start)
            if op is not None:
                op.rows_out = len(survivors)
        return survivors

    def explain(self, path, analyze=False, runtime=None, profile=None):
        """Describe how ``path`` would run — and, with ``analyze=True``,
        how it *did* run.

        Returns a multi-line plan: one line per binary structural join or
        predicate filter, with the element-set sizes the engine would feed
        each operator and the estimated join cardinalities (sampled — see
        :mod:`repro.query.estimate`).

        ``analyze=True`` additionally executes the query under a
        :class:`~repro.obs.profile.QueryProfile` (governed by ``runtime``
        when given) and appends the per-operator actuals, with the
        sampled estimate shown beside each join's measured pair count —
        EXPLAIN ANALYZE.  Without ``analyze`` no join is executed.

        ``profile`` optionally supplies the profile to fill instead of a
        fresh one — the same ``(runtime=None, profile=None)`` trio
        :meth:`evaluate` takes; passing a profile implies ``analyze``.
        """
        from repro.query.estimate import estimate_join

        expression = parse_path(path) if isinstance(path, str) else path
        lines = ["plan for %s (strategy=%s)" % (expression, self.strategy)]
        steps = list(expression.steps)
        size = len(self.entries_for(steps[0].tag))
        lines.append("  scan %-20s -> %d elements"
                     % (steps[0].tag, size))
        lines.extend(self._explain_predicates(steps[0], indent="  "))
        previous_tag = steps[0].tag
        previous_entries = self.entries_for(steps[0].tag)
        step_estimates = []  # one entry per non-first step; None for probes
        for step in steps[1:]:
            entries = self.entries_for(step.tag)
            if step.axis.is_reverse:
                step_estimates.append(None)
                lines.append(
                    "  %s-probe into %s (%d): FindAncestors per match"
                    % ("parent" if step.axis.name == "PARENT"
                       else "ancestor", step.tag, len(entries))
                )
                lines.extend(self._explain_predicates(step, indent="  "))
                previous_tag = step.tag
                previous_entries = entries
                continue
            estimate = estimate_join(
                previous_entries, entries,
                parent_child=step.axis is Axis.CHILD,
            )
            step_estimates.append(estimate)
            lines.append(
                "  %s-join %s (%d) with %s (%d) -> ~%d pairs, "
                "~%d%% of %s match"
                % ("child" if step.axis is Axis.CHILD else "descendant",
                   previous_tag, len(previous_entries), step.tag,
                   len(entries), round(estimate.pairs),
                   round(100 * estimate.descendant_fraction), step.tag)
            )
            lines.extend(self._explain_predicates(step, indent="  "))
            previous_tag = step.tag
            previous_entries = entries
        if not analyze and profile is None:
            return "\n".join(lines)
        if profile is None:
            profile = QueryProfile(str(expression), self.strategy)
        if runtime is None:
            runtime = QueryContext()
        runtime.profile = profile
        self.evaluate(expression, runtime=runtime)
        # Match sampled estimates to the executed step operators in step
        # order (scan/filter/semi-join operators are interleaved but keep
        # their own kinds, so only join/probe entries consume a step).
        step_ops = [op for op in profile.operators
                    if op.kind in ("join", "probe")]
        for op, estimate in zip(step_ops, step_estimates):
            if estimate is not None and op.kind == "join":
                op.est_pairs = estimate.pairs
        return "\n".join(lines) + "\n\n" + profile.render()

    def _explain_predicates(self, step, indent):
        from repro.query.path import render_predicate

        lines = []
        for predicate in step.predicates:
            if isinstance(predicate, AttributePredicate):
                lines.append("%s  filter [%s] (value lookup per match)"
                             % (indent, render_predicate(predicate)))
            else:
                lines.append("%s  semi-join filter [%s]"
                             % (indent, render_predicate(predicate)))
        return lines

    def _join_step(self, ancestors, step, stats):
        if step.axis.is_reverse:
            return self._reverse_step(ancestors, step, stats)
        parent_child = step.axis is Axis.CHILD
        descendants = self.entries_for(step.tag)
        if not descendants:
            return []
        algorithm = self._current_strategy()
        name = "%s-join //%s" % ("child" if parent_child else "descendant",
                                 step.tag)
        with self._operator(name, "join", algorithm, stats, tag=step.tag,
                            input_a=len(ancestors),
                            input_d=len(descendants)) as op:
            if algorithm == "xr-stack":
                a_tree = build_xr_tree(
                    sorted(ancestors, key=lambda e: e.start),
                    self.context.pool,
                )
                d_tree = self.index_for(step.tag)
                pairs, _ = xr_stack_join(a_tree, d_tree,
                                         parent_child=parent_child,
                                         stats=stats)
            else:
                a_list = build_element_list(
                    sorted(ancestors, key=lambda e: e.start),
                    self.context.pool,
                )
                d_list = build_element_list(descendants, self.context.pool)
                pairs, _ = stack_tree_join(a_list, d_list,
                                           parent_child=parent_child,
                                           stats=stats)
            # Distinct matched descendants, in document order.
            seen = set()
            matched = []
            for _, descendant in pairs:
                if descendant.start not in seen:
                    seen.add(descendant.start)
                    matched.append(descendant)
            matched.sort(key=lambda e: e.start)
            if op is not None:
                op.rows_out = len(matched)
        return matched
