"""Sampling-based cardinality estimation for structural joins.

A join-order planner is only as good as its size estimates.  This module
estimates, without running the join, (a) the number of output pairs and
(b) the surviving fraction of each side, by joining a systematic sample of
the descendant side against the full ancestor side's *top-level region
index* — an O(|sample| · log |A|) probe using the same containment sweep the
workload analyses use.

The estimator powers :class:`repro.query.planner.EstimatingPlanner`, which
orders a path's joins by estimated surviving frontier sizes instead of raw
input sizes.
"""

from dataclasses import dataclass

from repro.workloads.selectivity import ancestor_chains


@dataclass(frozen=True)
class JoinEstimate:
    """Estimated outcome of one structural join."""

    pairs: float                 # expected output pairs
    ancestor_fraction: float     # expected fraction of A with >= 1 match
    descendant_fraction: float   # expected fraction of D with >= 1 match

    def survivors(self, ancestor_count, descendant_count):
        return (self.ancestor_fraction * ancestor_count,
                self.descendant_fraction * descendant_count)


def estimate_join(ancestors, descendants, sample_size=256,
                  parent_child=False):
    """Estimate the join between two start-sorted element lists.

    A systematic sample of descendants is fully resolved against the
    ancestor list (chain lookup via one sweep); pair counts and the
    matched-descendant fraction extrapolate directly, while the matched-
    ancestor fraction uses the coverage the sampled chains achieve, scaled
    by the sampling rate with a union-style correction (covering is
    sub-linear because chains overlap).
    """
    if not ancestors or not descendants:
        return JoinEstimate(0.0, 0.0, 0.0)
    step = max(1, len(descendants) // sample_size)
    sample = descendants[::step]
    chains = ancestor_chains(ancestors, sample)
    if parent_child:
        chains = _parent_only(ancestors, sample, chains)
    matched = sum(1 for chain in chains if chain)
    pair_rate = sum(len(chain) for chain in chains) / len(sample)
    covered = set()
    for chain in chains:
        covered.update(chain)
    scale = len(descendants) / len(sample)
    # Coverage extrapolation: treat each unsampled descendant as covering
    # the same ancestors with probability proportional to the sampled
    # coverage rate (capped at the whole ancestor set).
    expected_covered = min(
        len(ancestors),
        len(ancestors) * (1.0 - (1.0 - len(covered) / len(ancestors))
                          ** scale) if covered else 0.0,
    )
    return JoinEstimate(
        pairs=pair_rate * len(descendants),
        ancestor_fraction=expected_covered / len(ancestors),
        descendant_fraction=matched / len(sample),
    )


def _parent_only(ancestors, sample, chains):
    out = []
    for descendant, chain in zip(sample, chains):
        out.append(tuple(
            index for index in chain
            if ancestors[index].level == descendant.level - 1
        ))
    return out


def true_join_size(ancestors, descendants, parent_child=False):
    """Exact pair count via one containment sweep (testing reference)."""
    chains = ancestor_chains(ancestors, descendants)
    if parent_child:
        chains = _parent_only(ancestors, descendants, chains)
    return sum(len(chain) for chain in chains)
