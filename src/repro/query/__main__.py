"""Interactive path-query runner.

Usage::

    python -m repro.query "//employee[email]/name" --file doc.xml
    python -m repro.query "//employee//name" --generate 5000
    python -m repro.query "//employee//name" --generate 5000 --holistic
    python -m repro.query "//employee//name" --generate 5000 --profile \
        --trace-out trace.jsonl

Evaluates the path with the XR-stack join pipeline (default), the no-index
pipeline (``--strategy stack-tree``) or the holistic PathStack executor
(``--holistic``, linear paths only) and prints matches plus execution
statistics.  ``--profile`` prints the per-operator actuals (EXPLAIN
ANALYZE); ``--trace-out FILE`` records the run with an enabled tracer and
exports the span/event ring as JSONL.
"""

import argparse
import sys

from repro.obs import Observability, QueryProfile, Tracer
from repro.query.engine import PathQueryEngine
from repro.query.pathstack import evaluate_path_stack
from repro.xmldata.dtd import CONFERENCE_DTD, DEPARTMENT_DTD
from repro.xmldata.generator import XmlGenerator
from repro.xmldata.parser import parse_document
from repro.xmldata.stats import document_stats


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.query")
    parser.add_argument("path", help="path expression, e.g. //a//b[c]")
    parser.add_argument("--file", help="XML file to query")
    parser.add_argument("--generate", type=int, metavar="N",
                        help="query a generated Department document of ~N "
                             "elements instead of a file")
    parser.add_argument("--dtd", choices=("department", "conference"),
                        default="department")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--strategy", choices=("xr-stack", "stack-tree"),
                        default="xr-stack")
    parser.add_argument("--holistic", action="store_true",
                        help="use the PathStack executor (linear paths)")
    parser.add_argument("--twig-stack", action="store_true",
                        help="use the getNext-optimized TwigStack executor")
    parser.add_argument("--explain", action="store_true",
                        help="print the engine's plan before executing")
    parser.add_argument("--profile", action="store_true",
                        help="print per-operator actuals after executing "
                             "(EXPLAIN ANALYZE)")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="record the run with tracing enabled and "
                             "export the trace ring as JSONL to FILE")
    parser.add_argument("--limit", type=int, default=10,
                        help="matches to print (default 10)")
    args = parser.parse_args(argv)

    if bool(args.file) == bool(args.generate):
        parser.error("choose exactly one of --file or --generate")
    if args.file:
        with open(args.file) as handle:
            document = parse_document(handle.read())
    else:
        dtd = DEPARTMENT_DTD if args.dtd == "department" else CONFERENCE_DTD
        document = XmlGenerator(dtd, seed=args.seed).generate(args.generate)
    print(document_stats(document).describe())

    observability = None
    if args.trace_out:
        observability = Observability(tracer=Tracer(enabled=True))
    profile = QueryProfile() if args.profile else None

    if args.explain:
        engine = PathQueryEngine(document, strategy=args.strategy)
        print()
        print(engine.explain(args.path))

    if args.holistic:
        result = evaluate_path_stack(document, args.path, profile=profile)
        matches = result.last_elements()
        print("\n%s: %d path solutions, %d distinct matches, "
              "%d elements scanned"
              % (args.path, result.count, len(matches),
                 result.stats.elements_scanned))
    elif args.twig_stack:
        from repro.query.twigjoin import twig_from_path, twig_stack_join

        root, output = twig_from_path(args.path)
        solutions = twig_stack_join(document.entries_for_tag, root)
        matches = solutions.bindings_of(output.index)
        print("\n%s: %d twig matches, %d distinct output bindings, "
              "%d elements scanned"
              % (args.path, solutions.count, len(matches),
                 solutions.stats.elements_scanned))
    else:
        engine = PathQueryEngine(document, strategy=args.strategy,
                                 observability=observability)
        result = engine.evaluate(args.path, profile=profile)
        matches = result.matches
        print("\n%s: %d matches, %d joins, %d elements scanned"
              % (args.path, len(matches), result.joins_run,
                 result.stats.elements_scanned))
    for match in matches[: args.limit]:
        print("  region (%d, %d) level %d"
              % (match.start, match.end, match.level))
    if len(matches) > args.limit:
        print("  ... and %d more" % (len(matches) - args.limit))
    if profile is not None:
        if not profile.path:  # holistic runs don't stamp query-level fields
            profile.path = args.path
            profile.strategy = "path-stack"
        print()
        print(profile.render())
    if observability is not None and args.trace_out:
        observability.tracer.export_jsonl(args.trace_out)
        print("\ntrace: %d records -> %s"
              % (len(observability.tracer), args.trace_out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
