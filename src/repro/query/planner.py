"""Join-order planning for path pipelines.

The paper closes with: "we will be working on query evaluation strategies
for complex XML queries (i.e. a combination of multiple structural joins)".
A pipeline of binary structural joins can associate a linear path in any
order; the intermediate sizes — and hence elements scanned — depend heavily
on which steps join first.  This module provides:

* :func:`chain_plans` — the possible association orders of a step chain;
* :class:`GreedyPlanner` — picks, at each round, the adjacent pair whose
  estimated output is smallest (classic greedy join ordering with
  containment-selectivity estimates);
* :func:`execute_plan` — runs a plan with XR-stack joins, tracking per-join
  statistics, and binds the path's *last* step as the result.

Each binary join between adjacent path fragments keeps, for the left
fragment, the elements that matched as ancestors, and for the right, those
that matched as descendants — so fragments shrink monotonically and the
final intersection at the last step equals the left-to-right pipeline's
answer.
"""

from dataclasses import dataclass, field

from repro.core.api import build_xr_tree
from repro.joins import xr_stack_join
from repro.joins.base import JoinStats
from repro.query.path import Axis, parse_path


@dataclass
class PlannedJoin:
    """One executed binary join of a plan."""

    left_tag: str
    right_tag: str
    axis: object
    left_in: int
    right_in: int
    survivors_left: int
    survivors_right: int


@dataclass
class PlanResult:
    path: str
    matches: list
    order: list                      # join order as (left_tag, right_tag)
    joins: list = field(default_factory=list)
    stats: JoinStats = field(default_factory=JoinStats)

    def __len__(self):
        return len(self.matches)


class GreedyPlanner:
    """Greedy smallest-pair-first ordering of a path's binary joins.

    The estimate for a join between fragments with frontier sizes ``l`` and
    ``r`` is ``min(l, r)`` — a structural join's surviving frontier cannot
    exceed either input, and the smaller side usually dominates the cost of
    re-probing.  Ties break left to right.
    """

    def order(self, sizes):
        """Return the sequence of edge indexes (0..n-2) to join."""
        remaining = list(range(len(sizes) - 1))
        current = list(sizes)
        order = []
        while remaining:
            best_edge = min(
                remaining,
                key=lambda e: min(current[e], current[e + 1]),
            )
            order.append(best_edge)
            # Joining shrinks both frontiers; model the survivors with the
            # smaller input (a frontier never exceeds either side).
            merged = min(current[best_edge], current[best_edge + 1])
            current[best_edge] = merged
            current[best_edge + 1] = merged
            remaining.remove(best_edge)
        return order


class LeftToRightPlanner:
    """The engine's default order, for comparison."""

    def order(self, sizes):
        return list(range(len(sizes) - 1))


class EstimatingPlanner:
    """Cardinality-estimate-driven join ordering.

    Instead of raw input sizes, each candidate edge is scored by the
    estimated surviving frontier (via
    :func:`repro.query.estimate.estimate_join` on a descendant sample); the
    smallest-survivor edge joins first, and the model sizes shrink by the
    estimated fractions for subsequent rounds.
    """

    def __init__(self, sample_size=128):
        self.sample_size = sample_size
        self.estimates = []  # (edge, JoinEstimate) in decision order

    def order_with_entries(self, frontiers, steps):
        from repro.query.estimate import estimate_join
        from repro.query.path import Axis

        sizes = [float(len(f)) for f in frontiers]
        edge_estimates = {}
        for edge in range(len(frontiers) - 1):
            edge_estimates[edge] = estimate_join(
                frontiers[edge], frontiers[edge + 1],
                sample_size=self.sample_size,
                parent_child=steps[edge + 1].axis is Axis.CHILD,
            )
        remaining = list(edge_estimates)
        order = []
        while remaining:
            def survivors(edge):
                estimate = edge_estimates[edge]
                left, right = estimate.survivors(sizes[edge],
                                                 sizes[edge + 1])
                return left + right

            best = min(remaining, key=survivors)
            order.append(best)
            self.estimates.append((best, edge_estimates[best]))
            estimate = edge_estimates[best]
            sizes[best] *= max(estimate.ancestor_fraction, 1e-6)
            sizes[best + 1] *= max(estimate.descendant_fraction, 1e-6)
            remaining.remove(best)
        return order


def execute_plan(document, path, planner=None, context=None):
    """Evaluate a linear ``path`` with a chosen join order.

    Fragments are per-step element lists; executing edge ``i`` joins the
    current frontier of step ``i`` (ancestor side) with that of step
    ``i + 1`` (descendant side) on the step's axis, and both frontiers keep
    only their matched elements.  After all edges, the last step's frontier
    is the answer.
    """
    from repro.core.api import StorageContext

    expression = parse_path(path) if isinstance(path, str) else path
    if any(step.predicates for step in expression.steps):
        raise ValueError("the planner handles linear paths; use "
                         "PathQueryEngine for predicates")
    if any(step.axis.is_reverse for step in expression.steps):
        raise ValueError("the planner handles forward axes only")
    context = context or StorageContext()
    steps = list(expression.steps)
    frontiers = []
    for index, step in enumerate(steps):
        entries = list(document.entries_for_tag(step.tag))
        if index == 0 and step.axis is Axis.CHILD:
            entries = [e for e in entries if e.level == 0]
        frontiers.append(entries)
    planner = planner or GreedyPlanner()
    if hasattr(planner, "order_with_entries"):
        order = planner.order_with_entries(frontiers, steps)
    else:
        order = planner.order([len(f) for f in frontiers])
    stats = JoinStats()
    result = PlanResult(str(expression), [], [])
    result.stats = stats
    if any(not frontier for frontier in frontiers):
        return result

    for edge in order:
        left, right = frontiers[edge], frontiers[edge + 1]
        if not left or not right:
            frontiers[edge] = []
            frontiers[edge + 1] = []
            continue
        axis = steps[edge + 1].axis
        survivors_left, survivors_right = _binary_semijoin(
            left, right, axis, stats, context
        )
        result.joins.append(PlannedJoin(
            steps[edge].tag, steps[edge + 1].tag, axis,
            len(left), len(right),
            len(survivors_left), len(survivors_right),
        ))
        result.order.append((steps[edge].tag, steps[edge + 1].tag))
        frontiers[edge] = survivors_left
        frontiers[edge + 1] = survivors_right

    # Out-of-order execution leaves each frontier as a superset of the true
    # bindings (each edge was checked once, against a possibly-unshrunk
    # neighbour); one left-to-right tightening pass closes the gap.
    for edge in range(len(steps) - 1):
        left, right = frontiers[edge], frontiers[edge + 1]
        if not left or not right:
            frontiers[-1] = []
            break
        _, survivors_right = _binary_semijoin(
            left, right, steps[edge + 1].axis, stats, context
        )
        frontiers[edge + 1] = survivors_right
    result.matches = frontiers[-1]
    return result


def _binary_semijoin(left, right, axis, stats, context):
    """Matched ancestors and matched descendants of one structural join."""
    a_tree = build_xr_tree(sorted(left, key=lambda e: e.start),
                           context.pool)
    d_tree = build_xr_tree(sorted(right, key=lambda e: e.start),
                           context.pool)
    pairs, _ = xr_stack_join(a_tree, d_tree,
                             parent_child=axis is Axis.CHILD, stats=stats)
    seen_a, seen_d = set(), set()
    survivors_left, survivors_right = [], []
    for ancestor, descendant in pairs:
        if ancestor.start not in seen_a:
            seen_a.add(ancestor.start)
            survivors_left.append(ancestor)
        if descendant.start not in seen_d:
            seen_d.add(descendant.start)
            survivors_right.append(descendant)
    survivors_left.sort(key=lambda e: e.start)
    survivors_right.sort(key=lambda e: e.start)
    return survivors_left, survivors_right
