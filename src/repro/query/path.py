"""Parsing of the XPath subset the engine evaluates.

Supported grammar (the structural core of XPath, Section 1's examples,
plus existential twig predicates)::

    path      := step+
    step      := ("/" | "//") tag predicate*
    predicate := "[" rel-path "]"
    rel-path  := tag (("/" | "//") tag)*      -- leading tag = child axis
    tag       := XML name or "*"

``/`` is the child axis, ``//`` the descendant(-or-self at the top) axis.
A path may also start with a bare tag, which is shorthand for ``//tag``
(the paper writes ``paragraph//section`` in this style).  A predicate keeps
only elements with at least one match for its relative path, e.g.
``//employee[email]/name`` selects names of employees that have an email
child — evaluated as structural semi-joins.
"""

import re
from dataclasses import dataclass, field
from enum import Enum


class PathSyntaxError(Exception):
    """Malformed path expression."""


class Axis(Enum):
    CHILD = "/"
    DESCENDANT = "//"
    PARENT = "/parent::"
    ANCESTOR = "/ancestor::"

    @property
    def is_reverse(self):
        return self in (Axis.PARENT, Axis.ANCESTOR)


@dataclass(frozen=True)
class AttributePredicate:
    """``[@name]`` (existence) or ``[@name=value]`` (equality) — the value
    search the paper's introduction pairs with structure search."""

    name: str
    value: object = None   # None = existence test

    def __str__(self):
        if self.value is None:
            return "@%s" % self.name
        return '@%s="%s"' % (self.name, self.value)


@dataclass(frozen=True)
class PathStep:
    axis: Axis
    tag: str
    predicates: tuple = field(default=())

    def __str__(self):
        return "%s%s%s" % (
            self.axis.value, self.tag,
            "".join("[%s]" % _render_predicate(p) for p in self.predicates),
        )


def render_predicate(predicate):
    """Render a predicate — relative path (child axis implicit) or @attr."""
    if isinstance(predicate, AttributePredicate):
        return str(predicate)
    text = str(predicate)
    return text[1:] if text.startswith("/") and not text.startswith("//") \
        else text


_render_predicate = render_predicate  # backwards-friendly alias


@dataclass(frozen=True)
class PathExpression:
    steps: tuple

    def __str__(self):
        return "".join(str(step) for step in self.steps)

    def __len__(self):
        return len(self.steps)


_TOKEN_RE = re.compile(
    r"(//|/)(?:(parent|ancestor|child|descendant)::)?"
    r"|([A-Za-z_][\w.\-]*|\*)"
)


def parse_path(text):
    """Parse ``text`` into a :class:`PathExpression`.

    >>> str(parse_path("paragraph//section"))
    '//paragraph//section'
    >>> [s.axis.name for s in parse_path("//a/b").steps]
    ['DESCENDANT', 'CHILD']
    >>> str(parse_path("//employee[email]/name"))
    '//employee[email]/name'
    """
    expression, pos = _parse_steps(text.strip(), 0, stop_at_bracket=False,
                                   default_first_axis=Axis.DESCENDANT)
    return expression


def _parse_steps(text, pos, stop_at_bracket, default_first_axis):
    if not text:
        raise PathSyntaxError("empty path expression")
    steps = []
    pending_axis = None
    while pos < len(text):
        char = text[pos]
        if char == "]":
            if not stop_at_bracket:
                raise PathSyntaxError("unbalanced ']' at %d" % pos)
            break
        if char == "[":
            if not steps or pending_axis is not None:
                raise PathSyntaxError("predicate without a step at %d" % pos)
            if pos + 1 < len(text) and text[pos + 1] == "@":
                predicate, pos = _parse_attribute_predicate(text, pos + 1)
            else:
                predicate, pos = _parse_steps(text, pos + 1,
                                              stop_at_bracket=True,
                                              default_first_axis=Axis.CHILD)
            if pos >= len(text) or text[pos] != "]":
                raise PathSyntaxError("unterminated predicate")
            pos += 1
            last = steps[-1]
            steps[-1] = PathStep(last.axis, last.tag,
                                 last.predicates + (predicate,))
            continue
        if not steps and pending_axis is None:
            # A relative path (inside a predicate) may lead with an
            # explicit axis: "[parent::emp]".
            leading = _LEADING_AXIS_RE.match(text, pos)
            if leading:
                pending_axis = {
                    "child": Axis.CHILD,
                    "descendant": Axis.DESCENDANT,
                    "parent": Axis.PARENT,
                    "ancestor": Axis.ANCESTOR,
                }[leading.group(1)]
                pos = leading.end()
                continue
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise PathSyntaxError(
                "unexpected character %r at offset %d" % (text[pos], pos)
            )
        separator, axis_name, name = match.groups()
        if separator:
            if pending_axis is not None:
                raise PathSyntaxError("two separators in a row at %d" % pos)
            if axis_name is not None:
                pending_axis = {
                    "child": Axis.CHILD,
                    "descendant": Axis.DESCENDANT,
                    "parent": Axis.PARENT,
                    "ancestor": Axis.ANCESTOR,
                }[axis_name]
            else:
                pending_axis = (Axis.CHILD if separator == "/"
                                else Axis.DESCENDANT)
        else:
            axis = pending_axis
            if axis is None:
                if steps:
                    raise PathSyntaxError(
                        "missing separator before %r at %d" % (name, pos)
                    )
                axis = default_first_axis
            steps.append(PathStep(axis, name))
            pending_axis = None
        pos = match.end()
    if pending_axis is not None:
        raise PathSyntaxError("path ends with a separator")
    if not steps:
        raise PathSyntaxError("path has no steps")
    return PathExpression(tuple(steps)), pos


_LEADING_AXIS_RE = re.compile(r"(parent|ancestor|child|descendant)::")

_ATTR_NAME_RE = re.compile(r"@([A-Za-z_][\w.\-]*)")


def _parse_attribute_predicate(text, pos):
    """Parse ``@name`` or ``@name=value`` starting at the ``@``."""
    match = _ATTR_NAME_RE.match(text, pos)
    if not match:
        raise PathSyntaxError("malformed attribute name at %d" % pos)
    name = match.group(1)
    pos = match.end()
    if pos < len(text) and text[pos] == "=":
        pos += 1
        if pos < len(text) and text[pos] in "\"'":
            quote = text[pos]
            end = text.find(quote, pos + 1)
            if end == -1:
                raise PathSyntaxError("unterminated attribute value at %d"
                                      % pos)
            value = text[pos + 1 : end]
            pos = end + 1
        else:
            end = pos
            while end < len(text) and text[end] not in "]":
                end += 1
            value = text[pos:end].strip()
            if not value:
                raise PathSyntaxError("empty attribute value at %d" % pos)
            pos = end
        return AttributePredicate(name, value), pos
    return AttributePredicate(name), pos
